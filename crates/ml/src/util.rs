//! Deterministic, key-addressed initialization.
//!
//! Parameter servers initialize values per key; for reproducible runs the
//! initial value must be a pure function of the key (and a model seed), no
//! matter which node seeds it.

/// SplitMix64: a tiny, high-quality mixer for turning (key, seed, index)
/// into pseudo-random bits.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f32 in `[-scale, scale)`, a pure function of its inputs.
#[inline]
pub fn init_uniform(key: u64, seed: u64, index: usize, scale: f32) -> f32 {
    let bits =
        splitmix64(key ^ seed.rotate_left(17) ^ (index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    // 24 mantissa-ish bits → [0, 1), then center.
    let u = (bits >> 40) as f32 / (1u64 << 24) as f32;
    (2.0 * u - 1.0) * scale
}

/// Fill `out[..dim]` with uniform noise and zero the remainder (optimizer
/// state starts at zero).
pub fn init_embedding(key: u64, seed: u64, dim: usize, scale: f32, out: &mut [f32]) {
    for (i, x) in out.iter_mut().enumerate() {
        *x = if i < dim { init_uniform(key, seed, i, scale) } else { 0.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let a = init_uniform(42, 7, 3, 0.1);
        let b = init_uniform(42, 7, 3, 0.1);
        assert_eq!(a, b);
        assert_ne!(init_uniform(43, 7, 3, 0.1), a);
        assert_ne!(init_uniform(42, 8, 3, 0.1), a);
        assert_ne!(init_uniform(42, 7, 4, 0.1), a);
    }

    #[test]
    fn values_bounded_and_centered() {
        let n = 10_000;
        let mut sum = 0.0f64;
        for k in 0..n {
            let v = init_uniform(k, 1, 0, 0.5);
            assert!((-0.5..0.5).contains(&v));
            sum += v as f64;
        }
        assert!((sum / n as f64).abs() < 0.02, "mean {}", sum / n as f64);
    }

    #[test]
    fn embedding_zeroes_optimizer_state() {
        let mut out = vec![9.0f32; 10];
        init_embedding(5, 1, 6, 0.1, &mut out);
        assert!(out[..6].iter().all(|&x| x != 9.0));
        assert!(out[6..].iter().all(|&x| x == 0.0));
    }
}
