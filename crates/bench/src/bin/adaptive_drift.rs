//! Static vs adaptive technique assignment on a drifting-hotspot workload
//! (a Figure 11-style comparison the paper could not run: its assignment
//! is fixed before training).
//!
//! Both variants start from the paper's untuned heuristic applied to
//! phase-0 statistics. The hot set then rotates each phase, so the static
//! assignment is wrong from phase 1 on, while the adaptive manager
//! promotes the new hot keys and demotes the stale ones at
//! synchronization rendezvous.
//!
//! Usage: cargo run --release -p nups-bench --bin adaptive_drift -- \
//!   [--scale tiny|small|medium] [--nodes 4] [--workers 2] \
//!   [--json PATH] [--check]
//!
//! `--json` writes the counters the CI `bench-regression` job gates on;
//! `--check` exits non-zero unless the adaptive variant beats the static
//! one on both total messages and virtual runtime.

use nups_bench::json::Json;
use nups_bench::report::{fmt_time, print_table};
use nups_bench::{Args, Scale};
use nups_core::adaptive::AdaptiveConfig;
use nups_core::system::run_epoch;
use nups_core::technique::heuristic_replicated_keys;
use nups_core::{NupsConfig, ParameterServer, PsWorker};
use nups_sim::metrics::MetricsSnapshot;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::Topology;
use nups_workloads::drift::{DriftConfig, DriftingHotspots};

const VALUE_LEN: usize = 8;

fn drift_for(scale: Scale) -> DriftingHotspots {
    let (n_keys, hot_keys, phases, batches_per_phase) = match scale {
        Scale::Tiny => (1024, 4, 3, 40),
        Scale::Small => (4096, 8, 3, 150),
        Scale::Medium => (16384, 16, 4, 300),
    };
    DriftingHotspots::new(DriftConfig {
        n_keys,
        hot_keys,
        hot_share: 0.9,
        phases,
        batches_per_phase,
        batch: 8,
        seed: 0xD81F7,
    })
}

struct DriftRun {
    time: SimTime,
    metrics: MetricsSnapshot,
}

fn run_variant(drift: &DriftingHotspots, topology: Topology, adaptive: bool) -> DriftRun {
    let cfg = drift.config();
    let freqs = drift.phase_frequencies(0, topology.total_workers());
    let initial = heuristic_replicated_keys(&freqs);
    // The sync period scales with the scaled-down workload the same way
    // the paper's 40 ms scales with hours-long epochs.
    let mut ps_cfg = NupsConfig::nups(topology, cfg.n_keys, VALUE_LEN)
        .with_replicated_keys(initial)
        .with_sync_period(SimDuration::from_micros(500));
    if adaptive {
        ps_cfg = ps_cfg.with_adaptive(AdaptiveConfig {
            adapt_every: 2,
            sketch_bits: 14,
            ..AdaptiveConfig::default()
        });
    }
    let ps = ParameterServer::new(ps_cfg, |k, v| v.fill((k % 97) as f32 * 0.01));
    let mut workers = ps.workers();
    let batch = cfg.batch;
    for phase in 0..cfg.phases {
        run_epoch(&mut workers, |i, w| {
            for keys in drift.worker_batches(phase, i) {
                let mut out = vec![0.0f32; keys.len() * VALUE_LEN];
                w.pull_many(&keys, &mut out);
                let deltas = vec![0.01f32; keys.len() * VALUE_LEN];
                w.push_many(&keys, &deltas);
                w.charge_compute(500 * batch as u64);
            }
        });
    }
    drop(workers);
    ps.flush_replicas();
    let run = DriftRun { time: ps.virtual_time(), metrics: ps.metrics() };
    ps.shutdown();
    run
}

fn variant_json(r: &DriftRun) -> Json {
    let m = &r.metrics;
    Json::obj()
        .set("msgs", m.msgs_sent + m.migration_msgs)
        .set("bytes", m.bytes_sent + m.migration_bytes)
        .set("remote_accesses", m.remote_pulls + m.remote_pushes)
        .set("relocations", m.relocations)
        .set("sync_rounds", m.sync_rounds)
        .set("promotions", m.promotions)
        .set("demotions", m.demotions)
        .set("virtual_time_us", r.time.as_nanos() / 1_000)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let topology = args.topology();
    let drift = drift_for(scale);

    eprintln!("[adaptive_drift] static assignment (phase-0 heuristic, frozen)");
    let stat = run_variant(&drift, topology, false);
    eprintln!("[adaptive_drift] adaptive assignment (online migration)");
    let adap = run_variant(&drift, topology, true);

    let row = |name: &str, r: &DriftRun| {
        let m = &r.metrics;
        vec![
            name.to_string(),
            fmt_time(r.time),
            format!("{}", m.msgs_sent + m.migration_msgs),
            format!("{}", m.remote_pulls + m.remote_pushes),
            format!("{}", m.relocations),
            format!("{}", m.sync_rounds),
            format!("{}/{}", m.promotions, m.demotions),
        ]
    };
    print_table(
        &format!(
            "Static vs adaptive technique assignment — drifting hot set ({} phases)",
            drift.config().phases
        ),
        &[
            "variant",
            "virtual time",
            "messages",
            "remote acc.",
            "relocations",
            "sync",
            "promo/demo",
        ],
        &[row("Static (NuPS heuristic)", &stat), row("Adaptive", &adap)],
    );
    let msgs_s = stat.metrics.msgs_sent + stat.metrics.migration_msgs;
    let msgs_a = adap.metrics.msgs_sent + adap.metrics.migration_msgs;
    let speedup = stat.time.as_nanos() as f64 / adap.time.as_nanos().max(1) as f64;
    println!(
        "\nadaptive vs static: {:.2}x runtime, {:.1}% of the messages",
        speedup,
        100.0 * msgs_a as f64 / msgs_s.max(1) as f64
    );

    if let Some(path) = args.get("json") {
        let report = Json::obj()
            .set("bench", "adaptive_drift")
            .set("scale", scale.name())
            .set("topology", format!("{}x{}", topology.n_nodes, topology.workers_per_node).as_str())
            .set("static", variant_json(&stat))
            .set("adaptive", variant_json(&adap));
        std::fs::write(path, report.render()).expect("write json report");
        eprintln!("[adaptive_drift] wrote {path}");
    }

    if args.get_flag("check") && (msgs_a >= msgs_s || adap.time >= stat.time) {
        eprintln!(
            "FAIL: adaptive did not beat static (messages {msgs_a} vs {msgs_s}, \
             time {} vs {})",
            fmt_time(adap.time),
            fmt_time(stat.time)
        );
        std::process::exit(1);
    }
}
