//! Table 2: tasks, models, datasets, and the share of direct vs sampling
//! parameter accesses.
//!
//! Usage: cargo run --release -p nups-bench --bin table2_workloads -- [--scale small]

use nups_bench::report::print_table;
use nups_bench::{build_task, Args, Scale, TaskKind};
use nups_sim::topology::Topology;

/// Per-task sampling access share, derived analytically from the task
/// definitions (matching how Table 2 reports it).
fn sampling_share(kind: TaskKind, scale: Scale) -> f64 {
    match kind {
        // Per triple: 3 direct keys vs 2·n_neg sampled keys.
        TaskKind::Kge => {
            let n_neg = match scale {
                Scale::Tiny => 2.0,
                Scale::Small => 4.0,
                Scale::Medium => 8.0,
            };
            2.0 * n_neg / (3.0 + 2.0 * n_neg)
        }
        // Per pair: 2 direct keys vs n_neg sampled keys.
        TaskKind::Wv => {
            let n_neg = match scale {
                Scale::Tiny => 2.0,
                Scale::Small | Scale::Medium => 3.0,
            };
            n_neg / (2.0 + n_neg)
        }
        TaskKind::Mf => 0.0,
    }
}

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let topo = Topology::new(1, 1);

    let mut rows = Vec::new();
    for kind in TaskKind::all() {
        let task = build_task(kind, scale, topo);
        let n_keys = task.n_keys();
        let values = n_keys * task.value_len() as u64;
        let sampling = sampling_share(kind, scale);
        let model = match kind {
            TaskKind::Kge => "ComplEx",
            TaskKind::Wv => "Word2Vec",
            TaskKind::Mf => "Latent Factors",
        };
        let dataset = match kind {
            TaskKind::Kge => "synthetic KG (Wikidata5M shape)",
            TaskKind::Wv => "synthetic corpus (1B-word shape)",
            TaskKind::Mf => "synthetic matrix, zipf 1.1",
        };
        rows.push(vec![
            task.name().to_string(),
            model.to_string(),
            dataset.to_string(),
            format!("{n_keys}"),
            format!("{values}"),
            format!("{:.1}", (values * 4) as f64 / 1e6),
            format!("{:.0}%", 100.0 * (1.0 - sampling)),
            format!("{:.0}%", 100.0 * sampling),
        ]);
    }
    print_table(
        "Table 2 — ML tasks, models, datasets, parameter access",
        &["task", "model", "dataset", "keys", "values", "MB", "direct", "sampling"],
        &rows,
    );
    println!("\n(Paper, full scale: KGE 69%/31%, WV 44%/56%, MF 100%/0% direct/sampling.)");
}
