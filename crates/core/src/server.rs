//! The per-node server loop.
//!
//! One server thread per node demultiplexes protocol messages: remote
//! pulls/pushes (forwarding them along the ownership chain when the key
//! moved), the three-message Lapse relocation protocol, and shutdown. The
//! server never blocks on a parameter: operations against in-flight keys
//! are parked on the store entry and answered when the transfer installs,
//! which keeps the loop live and the per-key operation order sequential.

use std::sync::Arc;

use nups_sim::codec::WireEncode;
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId};
use nups_sim::trace::actor;

use crate::adaptive::ADAPT_LEADER;
use crate::key::Key;
use crate::messages::{KeyUpdate, Msg};
use crate::node::{NodeState, Shared};
use crate::runtime::Port;
use crate::store::{PromoteTake, QueuedOp, ServerAccess, TakeOutcome};

/// Append `item` to `dst`'s group, keeping one group per destination in
/// first-appearance order (node counts are small; linear scan wins over a
/// map).
pub(crate) fn group_by_node<T>(groups: &mut Vec<(NodeId, Vec<T>)>, dst: NodeId, item: T) {
    match groups.iter_mut().find(|(n, _)| *n == dst) {
        Some((_, items)) => items.push(item),
        None => groups.push((dst, vec![item])),
    }
}

pub struct Server {
    shared: Arc<Shared>,
    state: Arc<NodeState>,
    endpoint: Box<dyn Port>,
}

impl Server {
    pub fn new(shared: Arc<Shared>, state: Arc<NodeState>, endpoint: Box<dyn Port>) -> Server {
        Server { shared, state, endpoint }
    }

    /// Run until a `Stop` message arrives or the network shuts down.
    pub fn run(mut self) {
        while let Some(frame) = self.endpoint.recv() {
            let mut payload = frame.payload;
            let msg = match Msg::decode(&mut payload) {
                Ok(m) => m,
                Err(e) => {
                    debug_assert!(false, "undecodable frame at {}: {e}", self.state.node);
                    continue;
                }
            };
            if !self.handle(msg, frame.sent_at) {
                break;
            }
        }
    }

    fn me(&self) -> NodeId {
        self.state.node
    }

    fn send(&mut self, dst: Addr, at: SimTime, msg: &Msg) {
        self.endpoint.send(dst, at, msg.to_bytes());
    }

    /// Journal one instant event in this node's server lane. `at` is the
    /// incoming frame's send stamp, so under the virtual backend the
    /// event timeline is a pure function of the workload.
    #[inline]
    fn journal(&self, at: SimTime, name: &'static str, a: u64, b: u64) {
        self.shared.obs.event(at, self.me().0, actor::SERVER, name, a, b);
    }

    /// Returns `false` on `Stop`.
    fn handle(&mut self, msg: Msg, at: SimTime) -> bool {
        match msg {
            Msg::PullReq { key, reply_to, hops } => self.handle_pull(key, reply_to, hops, at),
            Msg::PushReq { key, delta, reply_to, hops } => {
                self.handle_push(key, delta, reply_to, hops, at)
            }
            Msg::LocalizeReq { key, requester } => self.handle_localize(key, requester, at),
            Msg::ForwardLocalize { key, requester } => {
                self.handle_forward_localize(key, requester, at)
            }
            Msg::Transfer { key, value } => self.handle_transfer(key, value, at),
            Msg::PullBatchReq { keys, reply_to, hops } => {
                self.handle_pull_batch(keys, reply_to, hops, at)
            }
            Msg::PushBatchReq { updates, reply_to, hops } => {
                self.handle_push_batch(updates, reply_to, hops, at)
            }
            Msg::LocalizeBatchReq { keys, requester } => {
                for key in keys {
                    self.handle_localize(key, requester, at);
                }
            }
            Msg::ReplicaDeltas { from, epoch, updates } => {
                self.handle_replica_deltas(from, epoch, updates, at)
            }
            Msg::SyncFin { .. } => self.shared.note_sync_fin(),
            Msg::FinFence { .. } => self.shared.note_fin_fence(),
            Msg::SketchReport { from, total, row0, row1 } => {
                self.handle_sketch_report(from, total, &row0, &row1)
            }
            Msg::AdaptPlan { epoch, promotions, demotions } => {
                self.handle_adapt_plan(epoch, promotions, demotions, at)
            }
            Msg::Promote { key, epoch, slot, value } => {
                self.handle_promote(key, epoch, slot, value, at)
            }
            Msg::PlanAck { from, epoch } => self.handle_plan_ack(from, epoch, at),
            // The only pushes a server issues carry its own server port as
            // the reply address: demotion residues and stray sync deltas
            // folded at the home. Their acks land here.
            Msg::PushAck { .. } => self.handle_self_ack(at),
            Msg::Stop => return false,
            other => {
                debug_assert!(false, "unexpected message at relocation server: {other:?}");
            }
        }
        true
    }

    /// Resolve where an operation on `key` should go when we do not own
    /// it: follow a tombstone if we have one, otherwise re-route via home.
    fn chase(&self, key: Key, hint: Option<NodeId>) -> NodeId {
        hint.unwrap_or_else(|| self.shared.keyspace.home(key))
    }

    /// Serve a pull for a key that migrated to replication from the local
    /// replica set. `None` when the key has since been demoted again (the
    /// caller re-routes via the home directory).
    ///
    /// The slot lookup and the replica access are two acquisitions, which
    /// is safe because assignments only mutate during an adaptation round,
    /// and no pull/push can be in a server queue then: every pull/push is
    /// worker-synchronous, so an outstanding one implies a worker blocked
    /// on its reply — which would have prevented the rendezvous the round
    /// runs under.
    fn replica_pull(&self, key: Key) -> Option<Vec<f32>> {
        let slot = self.shared.technique.replica_slot(key)?;
        let mut value = vec![0.0; self.shared.value_len];
        if !self.state.replicas.pull(slot, key, &mut value) {
            // The slot is sealed or re-keyed: a demotion is mid-flight on
            // this very thread's message stream. The caller re-routes via
            // the home, which holds (or is about to hold) the key.
            return None;
        }
        self.shared.metrics.node(self.me()).inc(|m| &m.replica_pulls);
        Some(value)
    }

    /// Apply a late-chasing push for a migrated key to the local replica
    /// set (folded into the next synchronization — applied exactly once).
    fn replica_push(&self, key: Key, delta: &[f32]) -> bool {
        let Some(slot) = self.shared.technique.replica_slot(key) else { return false };
        if !self.state.replicas.push(slot, key, delta) {
            return false;
        }
        self.shared.metrics.node(self.me()).inc(|m| &m.replica_pushes);
        true
    }

    fn handle_pull(&mut self, key: Key, reply_to: Addr, hops: u8, at: SimTime) {
        // At the home node, consult the directory first: the request may
        // need forwarding to the current owner.
        if let Some(owner) = self.directory_detour(key) {
            let fwd = Msg::PullReq { key, reply_to, hops: hops.saturating_add(1) };
            self.send(Addr::server(owner), at, &fwd);
            return;
        }
        match self.state.store.server_pull(key, reply_to, hops) {
            ServerAccess::Served(Some(value)) => {
                let resp = Msg::PullResp { key, value, hops: hops.saturating_add(1) };
                self.send(reply_to, at, &resp);
            }
            ServerAccess::Served(None) => unreachable!("pull always returns a value"),
            ServerAccess::Queued => {} // answered at install time
            ServerAccess::Migrated => match self.replica_pull(key) {
                Some(value) => {
                    let resp = Msg::PullResp { key, value, hops: hops.saturating_add(1) };
                    self.send(reply_to, at, &resp);
                }
                None => {
                    let fwd = Msg::PullReq { key, reply_to, hops: hops.saturating_add(1) };
                    self.send(Addr::server(self.shared.keyspace.home(key)), at, &fwd);
                }
            },
            ServerAccess::NotHere(hint) => {
                let dst = self.chase(key, hint);
                let fwd = Msg::PullReq { key, reply_to, hops: hops.saturating_add(1) };
                self.send(Addr::server(dst), at, &fwd);
            }
        }
    }

    fn handle_push(&mut self, key: Key, delta: Vec<f32>, reply_to: Addr, hops: u8, at: SimTime) {
        if let Some(owner) = self.directory_detour(key) {
            let fwd = Msg::PushReq { key, delta, reply_to, hops: hops.saturating_add(1) };
            self.send(Addr::server(owner), at, &fwd);
            return;
        }
        // The store borrows the delta: the served fast path applies it in
        // place, and only the queued path copies. On the not-here path we
        // still own `delta` and move it into the forward.
        match self.state.store.server_push(key, &delta, reply_to, hops) {
            ServerAccess::Served(_) => {
                let ack = Msg::PushAck { key, hops: hops.saturating_add(1) };
                self.send(reply_to, at, &ack);
            }
            ServerAccess::Queued => {}
            ServerAccess::Migrated => {
                if self.replica_push(key, &delta) {
                    let ack = Msg::PushAck { key, hops: hops.saturating_add(1) };
                    self.send(reply_to, at, &ack);
                } else {
                    let home = self.shared.keyspace.home(key);
                    let fwd = Msg::PushReq { key, delta, reply_to, hops: hops.saturating_add(1) };
                    self.send(Addr::server(home), at, &fwd);
                }
            }
            ServerAccess::NotHere(hint) => {
                let dst = self.chase(key, hint);
                let fwd = Msg::PushReq { key, delta, reply_to, hops: hops.saturating_add(1) };
                self.send(Addr::server(dst), at, &fwd);
            }
        }
    }

    /// Batched pull: answer the locally-owned subset in one message, park
    /// in-flight entries (each answers individually at install), and
    /// forward the remainder grouped by next hop.
    fn handle_pull_batch(&mut self, keys: Vec<Key>, reply_to: Addr, hops: u8, at: SimTime) {
        let mut fwd: Vec<(NodeId, Vec<Key>)> = Vec::new();
        let mut local = Vec::with_capacity(keys.len());
        for key in keys {
            match self.directory_detour(key) {
                Some(owner) => group_by_node(&mut fwd, owner, key),
                None => local.push(key),
            }
        }
        let out = self.state.store.server_pull_batch(&local, reply_to, hops);
        for (key, hint) in out.not_here {
            group_by_node(&mut fwd, self.chase(key, hint), key);
        }
        let mut values = out.served;
        for key in out.migrated {
            match self.replica_pull(key) {
                Some(value) => values.push(KeyUpdate { key, delta: value }),
                None => group_by_node(&mut fwd, self.shared.keyspace.home(key), key),
            }
        }
        if !values.is_empty() {
            let resp = Msg::PullBatchResp { values, hops: hops.saturating_add(1) };
            self.send(reply_to, at, &resp);
        }
        for (dst, keys) in fwd {
            let m = Msg::PullBatchReq { keys, reply_to, hops: hops.saturating_add(1) };
            self.send(Addr::server(dst), at, &m);
        }
    }

    /// Batched push, mirroring [`Server::handle_pull_batch`].
    fn handle_push_batch(
        &mut self,
        updates: Vec<KeyUpdate>,
        reply_to: Addr,
        hops: u8,
        at: SimTime,
    ) {
        let mut fwd: Vec<(NodeId, Vec<KeyUpdate>)> = Vec::new();
        let mut local = Vec::with_capacity(updates.len());
        for update in updates {
            match self.directory_detour(update.key) {
                Some(owner) => group_by_node(&mut fwd, owner, update),
                None => local.push(update),
            }
        }
        let out = self.state.store.server_push_batch(local, reply_to, hops);
        for (update, hint) in out.not_here {
            let dst = self.chase(update.key, hint);
            group_by_node(&mut fwd, dst, update);
        }
        let mut acked = out.served;
        for update in out.migrated {
            if self.replica_push(update.key, &update.delta) {
                acked.push(update.key);
            } else {
                let home = self.shared.keyspace.home(update.key);
                group_by_node(&mut fwd, home, update);
            }
        }
        if !acked.is_empty() {
            let ack = Msg::PushBatchAck { keys: acked, hops: hops.saturating_add(1) };
            self.send(reply_to, at, &ack);
        }
        for (dst, updates) in fwd {
            let m = Msg::PushBatchReq { updates, reply_to, hops: hops.saturating_add(1) };
            self.send(Addr::server(dst), at, &m);
        }
    }

    /// At the home node, the location directory may say the key lives
    /// elsewhere even though no tombstone survives locally; such requests
    /// detour straight to the recorded owner.
    fn directory_detour(&self, key: Key) -> Option<NodeId> {
        if self.shared.keyspace.home(key) == self.me() {
            let owner = self.state.directory.owner(key);
            if owner != self.me() {
                return Some(owner);
            }
        }
        None
    }

    /// A peer's replica-synchronization broadcast (per-node deployments):
    /// fold its accumulated deltas into the local replica set. Each update
    /// carries the real parameter key; applying is additive and
    /// commutative, so no coordination with concurrent local pushes is
    /// needed beyond the slot lock.
    ///
    /// `epoch` is the sender's applied plan epoch at drain time, which
    /// identifies the replication *era* the deltas belong to (the plan
    /// that last promoted each key). See
    /// [`Server::dispatch_replica_delta`] for the conservation rules.
    fn handle_replica_deltas(
        &mut self,
        from: NodeId,
        epoch: u64,
        updates: Vec<KeyUpdate>,
        at: SimTime,
    ) {
        debug_assert_ne!(from, self.me(), "a node must not receive its own sync broadcast");
        for u in updates {
            self.dispatch_replica_delta(epoch, u.key, u.delta, at);
        }
        // Replica state advanced: wake evaluation reads parked on progress.
        self.shared.runtime.notify_progress();
    }

    /// Route one sync-broadcast delta so it lands in the final model
    /// exactly once, whatever migrations raced it in flight. `stamp` is
    /// the replication era the delta was drained under — the epoch of the
    /// plan that installed the sender's tenancy — read under the sender's
    /// slot lock, so it is exact:
    ///
    /// * **Same era, slot installed** — the common case — fold into the
    ///   local replica copy. [`ReplicaSet::apply_foreign`] re-checks the
    ///   era under the slot lock, so a racing migration turns the apply
    ///   into a clean miss rather than a cross-era write.
    /// * **Same era, install pending** (our promotion has not landed yet):
    ///   stash in `pending_deltas`; applied right after the install so our
    ///   base copy converges with the sender's.
    /// * **Future era** (the installing plan has not applied here yet):
    ///   hold in `early_deltas` and re-dispatch when the plan applies.
    ///   Dropping would lose the delta whenever we are the coordinator.
    /// * **Stale era** (the key's tenancy ended — and possibly restarted —
    ///   after the broadcast left the sender): the delta must not touch
    ///   the new era's replica; the demotion already sealed every copy it
    ///   was meant for. Every node received this same broadcast, so
    ///   exactly one of them — the **home** — folds it through the regular
    ///   push path: into its store, a mid-acquisition promotion value, or
    ///   (if the key is replicated again) its replica *accumulator*,
    ///   whence the next sync re-broadcasts it to everyone under the new
    ///   era. Every other node drops it.
    ///
    /// Home folds are self-addressed pushes counted in
    /// `acks_outstanding`, so finalize's drain barrier waits for them even
    /// when the fold chases a relocated key onto another node.
    fn dispatch_replica_delta(&mut self, stamp: u64, key: Key, delta: Vec<f32>, at: SimTime) {
        let shared = Arc::clone(&self.shared);
        if let Some(slot) = shared.technique.replica_slot(key) {
            if self.state.replicas.apply_foreign(slot, key, stamp, &delta) {
                return;
            }
            // Era or tenancy mismatch: resolved below like any other miss.
        }
        let Some(dist) = shared.dist_adaptive.as_ref() else {
            // Static technique map: one era, slots never move, so the
            // keyed apply can only miss if the broadcast itself is stale
            // nonsense — conserve it at the home like any stray push.
            if shared.keyspace.home(key) == self.me() {
                self.handle_push(key, delta, Addr::server(self.me()), 0, at);
            }
            return;
        };
        {
            let mut st = dist.state();
            if let Some(&(promote_epoch, _)) = st.pending_promote.get(&key) {
                if stamp >= promote_epoch {
                    debug_assert_eq!(
                        stamp, promote_epoch,
                        "a sender cannot be an era ahead of an unacked plan"
                    );
                    st.pending_deltas.entry(key).or_default().push(delta);
                    return;
                }
                // Stale era: fall through to home-or-drop.
            } else if stamp > st.applied_epoch {
                st.early_deltas.push((stamp, key, delta));
                return;
            }
        }
        if shared.keyspace.home(key) == self.me() {
            dist.state().acks_outstanding += 1;
            self.handle_push(key, delta, Addr::server(self.me()), 0, at);
        }
    }

    /// First message of the relocation protocol, handled at the home node:
    /// update the location directory and tell the current owner to hand
    /// the key over.
    fn handle_localize(&mut self, key: Key, requester: NodeId, at: SimTime) {
        debug_assert_eq!(self.shared.keyspace.home(key), self.me(), "localize not at home");
        // Replication-managed keys never relocate, and keys mid-promotion
        // must not start a relocation either: the promotion take would
        // race a transfer it cannot see, stranding the value. The dropped
        // request's in-flight mark at the requester is cleaned up by the
        // promotion sweep.
        if self.shared.technique.localize_blocked(key) {
            return;
        }
        let owner = self.state.directory.owner(key);
        if owner == requester {
            // A transfer to the requester is already under way; its
            // in-flight entry will resolve it.
            return;
        }
        self.state.directory.set_owner(key, requester);
        self.journal(at, "localize", key, requester.0 as u64);
        if owner == self.me() {
            self.handle_forward_localize(key, requester, at);
        } else {
            self.send(Addr::server(owner), at, &Msg::ForwardLocalize { key, requester });
        }
    }

    /// Second message: the (believed) owner relinquishes the key.
    fn handle_forward_localize(&mut self, key: Key, requester: NodeId, at: SimTime) {
        match self.state.store.take_for_transfer(key, requester) {
            TakeOutcome::Taken(value) => {
                self.send(Addr::server(requester), at, &Msg::Transfer { key, value });
            }
            TakeOutcome::Deferred => {} // handed over right after install
            // The key migrated to replication while this request chased
            // it; the relocation is void.
            TakeOutcome::Promoted => {}
            TakeOutcome::NotHere(hint) => {
                // The key moved on before this request caught up with it:
                // chase the tombstone chain.
                let dst = self.chase(key, hint);
                debug_assert_ne!(dst, self.me(), "forward-localize chase loop at {}", self.me());
                self.send(Addr::server(dst), at, &Msg::ForwardLocalize { key, requester });
            }
        }
    }

    /// Third message: the value arrives; serve everything that queued up.
    fn handle_transfer(&mut self, key: Key, value: Vec<f32>, at: SimTime) {
        // A transfer for a key that is (now) replication-managed must not
        // resurrect store ownership: the promotion protocol settles every
        // relocation chain before taking the value, so this transfer can
        // only be a stale duplicate whose payload the replicas supersede.
        if self.shared.technique.is_replicated(key) {
            return;
        }
        // Count before installing: install wakes workers blocked on the
        // key, and an observer must not see the wake before the count.
        self.shared.metrics.node(self.me()).inc(|m| &m.relocations);
        self.journal(at, "transfer_install", key, 0);
        let out = self.state.store.install(key, value);
        for (value, reply_to, hops) in out.pull_replies {
            let resp = Msg::PullResp { key, value, hops: hops.saturating_add(1) };
            self.send(reply_to, at, &resp);
        }
        for (reply_to, hops) in out.push_acks {
            let ack = Msg::PushAck { key, hops: hops.saturating_add(1) };
            self.send(reply_to, at, &ack);
        }
        if let Some((node, value)) = out.release {
            self.send(Addr::server(node), at, &Msg::Transfer { key, value });
        }
        // Wake control-plane waiters parked on cluster progress: an
        // evaluation read racing this relocation, or the adaptive manager
        // waiting for a chain to settle before a promotion.
        self.shared.runtime.notify_progress();
        // Distributed promotion acquisition: if this node is the key's
        // home and a plan is waiting on the key, this install may be the
        // hand-over the acquisition chased.
        self.maybe_complete_promotion(key, at);
    }

    // ------------------------------------------------------------------
    // Distributed adaptive technique management (see `crate::adaptive`).
    //
    // The leader broadcasts a versioned `AdaptPlan`; every node's server
    // thread applies plans in epoch order. Demotions execute immediately
    // (the replica slot is sealed, so late keyed accesses fail over to the
    // home). Promotions run through the regular relocation machinery: the
    // key's home fences it, acquires the value by chasing the ownership
    // chain, installs the replica, and broadcasts `Promote`; peers install
    // on receipt. A node acks the plan to the leader once nothing of it —
    // pending installs, buffered messages, unacknowledged residues — is
    // still in flight locally.
    // ------------------------------------------------------------------

    /// A peer's count-min sketch window, folded into the leader's sketch.
    fn handle_sketch_report(
        &mut self,
        from: NodeId,
        total: u64,
        row0: &[(u32, u64)],
        row1: &[(u32, u64)],
    ) {
        debug_assert_eq!(self.me(), ADAPT_LEADER, "sketch report at non-leader");
        debug_assert_ne!(from, self.me(), "the leader does not report to itself");
        let _ = from;
        if let Some(adaptive) = self.shared.adaptive.as_ref() {
            adaptive.sketch().merge([row0, row1], total);
        }
    }

    /// One adaptation round's migration plan. Runs on every node
    /// (including the leader, which posts the plan to itself so it
    /// serializes with the rest of its protocol traffic).
    fn handle_adapt_plan(
        &mut self,
        epoch: u64,
        promotions: Vec<(Key, u32)>,
        demotions: Vec<Key>,
        at: SimTime,
    ) {
        let shared = Arc::clone(&self.shared);
        let Some(dist) = shared.dist_adaptive.as_ref() else {
            debug_assert!(false, "adapt plan without distributed adaptive state");
            return;
        };
        self.journal(at, "adapt_plan_apply", epoch, (promotions.len() + demotions.len()) as u64);
        let mut demote_now = Vec::with_capacity(demotions.len());
        {
            let mut st = dist.state();
            debug_assert_eq!(epoch, st.applied_epoch + 1, "plans must apply in issue order");
            st.applied_epoch = epoch;
            for &key in &demotions {
                if st.pending_promote.contains_key(&key) {
                    // The key's promotion (from an earlier plan) has not
                    // landed here yet; the demotion applies when it does.
                    st.deferred_demotes.insert(key);
                } else {
                    demote_now.push(key);
                }
            }
            for &(key, slot) in &promotions {
                let prev = st.pending_promote.insert(key, (epoch, slot));
                debug_assert!(prev.is_none(), "key {key} promoted by two outstanding plans");
            }
        }
        for key in demote_now {
            self.apply_demotion(key, at);
        }
        for &(key, _) in &promotions {
            if self.shared.keyspace.home(key) == self.me() {
                self.initiate_promotion(key, at);
            }
        }
        // A peer's `Promote` broadcast can overtake the leader's plan on
        // the wire; admit any that were waiting for this plan.
        let ready = {
            let mut st = dist.state();
            let (ready, rest): (Vec<_>, Vec<_>) =
                std::mem::take(&mut st.buffered_promotes).into_iter().partition(|b| b.0 <= epoch);
            st.buffered_promotes = rest;
            ready
        };
        for (_, key, slot, value) in ready {
            self.admit_promote(key, slot, value, at);
        }
        // Likewise a peer's sync broadcast stamped with this (or an
        // earlier) epoch can overtake the plan; re-route the held deltas
        // now that the era they belong to is known here. The leader never
        // issues a plan before every node acked the previous one, so no
        // held delta can be stamped beyond the plan just applied — the
        // buffer always drains completely.
        let held = {
            let mut st = dist.state();
            debug_assert!(
                st.early_deltas.iter().all(|d| d.0 <= epoch),
                "sync delta stamped past the newest issued plan"
            );
            std::mem::take(&mut st.early_deltas)
        };
        for (stamp, key, delta) in held {
            self.dispatch_replica_delta(stamp, key, delta, at);
        }
        self.maybe_plan_ack(at);
        self.shared.runtime.notify_progress();
    }

    /// Demote one key replicated → relocated, as instructed by a plan (or
    /// deferred until the key's promotion landed). Seals the local replica
    /// slot, installs the authoritative value at the home, and ships any
    /// non-home residue accumulator there as an acknowledged push.
    fn apply_demotion(&mut self, key: Key, at: SimTime) {
        self.journal(at, "demote", key, 0);
        let shared = Arc::clone(&self.shared);
        let slot = shared.technique.replica_slot(key).expect("demoted key has a slot");
        let home = shared.keyspace.home(key);
        let Some((value, accum)) = self.state.replicas.seal_slot(slot, key) else {
            debug_assert!(false, "demotion of key {key} found slot {slot} not keyed to it");
            return;
        };
        if home == self.me() {
            // `push` writes the copy and the accumulator together, so the
            // sealed value already holds this node's unsynced deltas — the
            // accum must not be re-added. The peers' residues arrive as
            // acknowledged pushes below.
            let _ = accum;
            self.state.store.install_demoted(key, value, at);
            self.state.directory.set_owner(key, home);
            self.shared.technique.demote(key);
            self.shared.metrics.node(self.me()).inc(|m| &m.demotions);
        } else {
            self.state.store.redirect_for_demote(key, home);
            self.shared.technique.demote(key);
            if accum.iter().any(|&x| x != 0.0) {
                if let Some(dist) = shared.dist_adaptive.as_ref() {
                    dist.state().acks_outstanding += 1;
                }
                let residue =
                    Msg::PushReq { key, delta: accum, reply_to: Addr::server(self.me()), hops: 0 };
                self.send(Addr::server(home), at, &residue);
            }
        }
        self.shared.runtime.notify_progress();
    }

    /// Begin acquiring a key this node (the key's home) must promote:
    /// fence it against new relocations, then chase the ownership chain
    /// for the authoritative value.
    fn initiate_promotion(&mut self, key: Key, at: SimTime) {
        debug_assert_eq!(self.shared.keyspace.home(key), self.me(), "promotion runs at home");
        self.journal(at, "promote_start", key, 0);
        self.shared.technique.fence_key(key);
        let owner = self.state.directory.owner(key);
        if owner == self.me() {
            match self.state.store.begin_promote(key) {
                PromoteTake::Taken(value) => self.complete_promotion(key, value, at),
                // A transfer toward us is in flight; its install retries.
                PromoteTake::InFlight => {}
                PromoteTake::NotHere(hint) => self.chase_promotion(key, hint, at),
            }
        } else {
            // The fence blocks new localizes, so the directory is frozen:
            // point it here and request the hand-over directly (our own
            // localize path would drop the request at the fence).
            self.state.directory.set_owner(key, self.me());
            self.state.store.mark_inflight(key, at);
            self.send(Addr::server(owner), at, &Msg::ForwardLocalize { key, requester: self.me() });
        }
    }

    /// The directory pointed home but the value is elsewhere (a stale
    /// forward, or an install released it onward): follow the tombstones.
    fn chase_promotion(&mut self, key: Key, hint: Option<NodeId>, at: SimTime) {
        let dst = self.chase(key, hint);
        debug_assert_ne!(dst, self.me(), "promotion chase loop at {}", self.me());
        self.state.store.mark_inflight(key, at);
        self.send(Addr::server(dst), at, &Msg::ForwardLocalize { key, requester: self.me() });
    }

    /// After an install at the key's home: if a plan is waiting on the
    /// key, this may be the hand-over that completes its acquisition.
    fn maybe_complete_promotion(&mut self, key: Key, at: SimTime) {
        let shared = Arc::clone(&self.shared);
        let Some(dist) = shared.dist_adaptive.as_ref() else { return };
        if self.shared.keyspace.home(key) != self.me()
            || !dist.state().pending_promote.contains_key(&key)
        {
            return;
        }
        match self.state.store.begin_promote(key) {
            PromoteTake::Taken(value) => self.complete_promotion(key, value, at),
            PromoteTake::InFlight => {} // another chain link; the next install retries
            // The install released the value onward to a localize that
            // raced the plan: keep chasing it.
            PromoteTake::NotHere(hint) => self.chase_promotion(key, hint, at),
        }
    }

    /// The home holds the authoritative value: install the replica,
    /// publish the slot, broadcast the value to every peer, and apply a
    /// demotion a later plan deferred onto this promotion.
    fn complete_promotion(&mut self, key: Key, value: Vec<f32>, at: SimTime) {
        let shared = Arc::clone(&self.shared);
        let dist = shared.dist_adaptive.as_ref().expect("promotion completes under a plan");
        let (epoch, slot) = {
            let st = dist.state();
            *st.pending_promote.get(&key).expect("completed promotion was planned")
        };
        // Backing storage before the published assignment: a keyed access
        // that sees the new route is then guaranteed an installed slot.
        // The plan epoch becomes the slot's era: sync broadcasts of this
        // tenancy are stamped with it cluster-wide.
        self.state.replicas.install_slot(slot, key, value.clone(), epoch);
        self.shared.technique.promote_to_slot(key, slot);
        self.shared.technique.unfence_key(key);
        self.journal(at, "promote_install", key, epoch);
        let (deferred, stashed) = {
            let mut st = dist.state();
            st.pending_promote.remove(&key);
            (st.deferred_demotes.remove(&key), st.pending_deltas.remove(&key))
        };
        debug_assert!(stashed.is_none(), "the home folds stray deltas, never stashes them");
        self.shared.metrics.node(self.me()).inc(|m| &m.promotions);
        let msg = Msg::Promote { key, epoch, slot, value };
        for node in self.shared.topology.nodes() {
            if node != self.me() {
                self.send(Addr::server(node), at, &msg);
            }
        }
        if deferred {
            self.apply_demotion(key, at);
        }
        self.maybe_plan_ack(at);
        self.shared.runtime.notify_progress();
    }

    /// A peer's (or the home's) `Promote` broadcast: install the replica
    /// locally, or buffer it until its plan arrives.
    fn handle_promote(&mut self, key: Key, epoch: u64, slot: u32, value: Vec<f32>, at: SimTime) {
        let shared = Arc::clone(&self.shared);
        let Some(dist) = shared.dist_adaptive.as_ref() else {
            debug_assert!(false, "promote broadcast without distributed adaptive state");
            return;
        };
        {
            let mut st = dist.state();
            if epoch > st.applied_epoch {
                st.buffered_promotes.push((epoch, key, slot, value));
                return;
            }
        }
        self.admit_promote(key, slot, value, at);
        self.maybe_plan_ack(at);
    }

    /// Install an announced promotion whose plan has been applied here.
    fn admit_promote(&mut self, key: Key, slot: u32, value: Vec<f32>, at: SimTime) {
        let shared = Arc::clone(&self.shared);
        let dist = shared.dist_adaptive.as_ref().expect("admitted promote without dist state");
        let (plan_entry, deferred, stashed) = {
            let mut st = dist.state();
            (
                st.pending_promote.remove(&key),
                st.deferred_demotes.remove(&key),
                st.pending_deltas.remove(&key).unwrap_or_default(),
            )
        };
        let (plan_epoch, _) = plan_entry.expect("promote install for key without a plan entry");
        if deferred {
            // A later plan demoted this key before its promotion ever
            // landed here. The route never flipped locally, so no local
            // write targeted the replica: the residue is provably zero and
            // the home's sealed value is authoritative. Skip the install;
            // clean up relocation marks left by localize requests the
            // home's fence dropped, forwarding anything parked on them to
            // the home (whose directory the demotion reset).
            let home = self.shared.keyspace.home(key);
            let sweep = self.state.store.sweep_for_promote(key);
            for op in sweep.waiters {
                let fwd = match op {
                    QueuedOp::Push { delta, reply_to, hops } => {
                        Msg::PushReq { key, delta, reply_to, hops: hops.saturating_add(1) }
                    }
                    QueuedOp::Pull { reply_to, hops } => {
                        Msg::PullReq { key, reply_to, hops: hops.saturating_add(1) }
                    }
                };
                self.send(Addr::server(home), at, &fwd);
            }
            self.shared.runtime.notify_progress();
            return;
        }
        self.journal(at, "promote_admit", key, plan_epoch);
        self.state.replicas.install_slot(slot, key, value, plan_epoch);
        for delta in stashed {
            let ok = self.state.replicas.apply_foreign(slot, key, plan_epoch, &delta);
            debug_assert!(ok, "stashed sync delta must apply right after its install");
        }
        self.shared.technique.promote_to_slot(key, slot);
        // Sweep the stale in-flight mark of any localize the home's fence
        // dropped; parked operations are served from the fresh replica.
        let sweep = self.state.store.sweep_for_promote(key);
        for op in sweep.waiters {
            match op {
                QueuedOp::Push { delta, reply_to, hops } => {
                    let ok = self.state.replicas.push(slot, key, &delta);
                    debug_assert!(ok, "fresh replica slot rejects nothing");
                    self.shared.metrics.node(self.me()).inc(|m| &m.replica_pushes);
                    self.send(reply_to, at, &Msg::PushAck { key, hops: hops.saturating_add(1) });
                }
                QueuedOp::Pull { reply_to, hops } => {
                    let mut value = vec![0.0; self.shared.value_len];
                    let ok = self.state.replicas.pull(slot, key, &mut value);
                    debug_assert!(ok, "fresh replica slot rejects nothing");
                    self.shared.metrics.node(self.me()).inc(|m| &m.replica_pulls);
                    let resp = Msg::PullResp { key, value, hops: hops.saturating_add(1) };
                    self.send(reply_to, at, &resp);
                }
            }
        }
        self.shared.runtime.notify_progress();
    }

    /// Send the leader a `PlanAck` once every applied plan fully settled
    /// here (idempotent; called from every path that could finish one).
    fn maybe_plan_ack(&mut self, at: SimTime) {
        let shared = Arc::clone(&self.shared);
        let Some(dist) = shared.dist_adaptive.as_ref() else { return };
        let epoch = {
            let mut st = dist.state();
            if st.applied_epoch == 0 || st.applied_epoch <= st.last_acked || !st.settled() {
                return;
            }
            st.last_acked = st.applied_epoch;
            st.applied_epoch
        };
        if self.me() == ADAPT_LEADER {
            dist.note_ack(self.me(), epoch);
        } else {
            self.send(Addr::server(ADAPT_LEADER), at, &Msg::PlanAck { from: self.me(), epoch });
        }
        self.shared.runtime.notify_progress();
    }

    /// Leader: a peer finished a plan.
    fn handle_plan_ack(&mut self, from: NodeId, epoch: u64, at: SimTime) {
        debug_assert_eq!(self.me(), ADAPT_LEADER, "plan ack at non-leader");
        self.journal(at, "plan_ack", from.0 as u64, epoch);
        if let Some(dist) = self.shared.dist_adaptive.as_ref() {
            dist.note_ack(from, epoch);
            self.shared.runtime.notify_progress();
        }
    }

    /// A `PushAck` for a push this server itself issued (demotion residue
    /// or home-folded stray delta): one less outstanding acknowledgement.
    fn handle_self_ack(&mut self, at: SimTime) {
        let shared = Arc::clone(&self.shared);
        let Some(dist) = shared.dist_adaptive.as_ref() else {
            debug_assert!(false, "push ack at a server without distributed adaptive state");
            return;
        };
        {
            let mut st = dist.state();
            debug_assert!(st.acks_outstanding > 0, "unsolicited push ack at server port");
            st.acks_outstanding = st.acks_outstanding.saturating_sub(1);
        }
        self.maybe_plan_ack(at);
        self.shared.runtime.notify_progress();
    }
}
