//! Virtual time primitives.
//!
//! All "run time" reported by this repository is *virtual* time: actions are
//! priced by a [`crate::cost::CostModel`] and accumulated on per-worker
//! clocks. `SimTime` is an instant on that virtual timeline and
//! `SimDuration` a span; both are nanosecond-resolution unsigned integers so
//! arithmetic is exact and deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in nanoseconds since the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the origin.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a span from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Build a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Build a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Build a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a span from fractional seconds. Negative or non-finite inputs
    /// clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1e9) as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Nanoseconds in the span.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in the span, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 60_000_000_000 {
        let secs = ns as f64 / 1e9;
        write!(f, "{}m{:04.1}s", (secs / 60.0) as u64, secs % 60.0)
    } else if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_secs_f64(), 2.0);
        let later = t + SimDuration::from_millis(500);
        assert_eq!(later - t, SimDuration::from_millis(500));
        assert_eq!(t.saturating_since(later), SimDuration::ZERO);
        assert_eq!(later.saturating_since(t), SimDuration::from_millis(500));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(18));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30.0s");
    }
}
