//! Word vectors with different sampling conformity levels: the same
//! skip-gram training run with CONFORM (independent), BOUNDED (pooled
//! reuse) and NON-CONFORM (local) sampling — a miniature of the paper's
//! Figure 10b.
//!
//! Run with: cargo run --release --example word_vectors

use std::sync::Arc;

use nups::core::heuristic_replicated_keys;
use nups::core::system::run_epoch;
use nups::core::{NupsConfig, ParameterServer, ReuseParams, SamplingScheme};
use nups::ml::task::TrainTask;
use nups::ml::word2vec::{W2vConfig, W2vTask};
use nups::sim::topology::Topology;
use nups::workloads::corpus::{Corpus, CorpusConfig};

fn train(scheme_name: &str, scheme: SamplingScheme, corpus: &Arc<Corpus>) {
    let topology = Topology::new(4, 2);
    let task = W2vTask::new(
        Arc::clone(corpus),
        W2vConfig { dim: 16, n_neg: 3, ..W2vConfig::default() },
        topology.total_workers(),
    );
    let replicated = heuristic_replicated_keys(&task.direct_frequencies());
    let cfg = NupsConfig::nups(topology, task.n_keys(), task.value_len())
        .with_replicated_keys(replicated)
        .with_clip(task.clip_policy());
    let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));
    for d in task.distributions() {
        ps.register_distribution_with_scheme(d.base_key, d.n, d.kind, scheme);
    }

    let mut workers = ps.workers();
    for epoch in 0..2 {
        run_epoch(&mut workers, |i, w| {
            task.run_epoch(w, i, epoch);
        });
    }
    ps.flush_replicas();
    let coherence = task.evaluate(&ps.read_all());
    let m = ps.metrics();
    println!(
        "{scheme_name:<28} virtual time {:>12}  coherence {:>6.2}  samples {:>8}  remote samples {:>7}",
        ps.virtual_time(),
        coherence,
        m.samples_drawn,
        m.samples_remote,
    );
    drop(workers);
    ps.shutdown();
}

fn main() {
    let corpus = Arc::new(Corpus::generate(CorpusConfig {
        vocab_size: 2_000,
        n_sentences: 3_000,
        sentence_len: 10,
        n_topics: 20,
        zipf_alpha: 1.0,
        noise: 0.1,
        seed: 11,
    }));
    println!(
        "synthetic corpus: {} words, {} sentences, {} tokens\n",
        corpus.config.vocab_size,
        corpus.sentences.len(),
        corpus.n_tokens()
    );

    let reuse = ReuseParams { pool_size: 250, use_frequency: 16 };
    train("Independent (CONFORM)", SamplingScheme::Independent, &corpus);
    train("Sample reuse U=16 (BOUNDED)", SamplingScheme::Reuse(reuse), &corpus);
    train("Postponing U=16 (LONG-TERM)", SamplingScheme::ReuseWithPostponing(reuse), &corpus);
    train("Local sampling (NON-CONFORM)", SamplingScheme::Local, &corpus);
}
