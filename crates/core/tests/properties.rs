//! Property-based tests of the core data structures: the store is checked
//! against a reference model under arbitrary operation sequences, and the
//! key-space / technique / pooling invariants hold for arbitrary inputs.

use proptest::prelude::*;

use nups_core::key::KeySpace;
use nups_core::sampling::reuse::PoolSequence;
use nups_core::store::{LocalAccess, ServerAccess, Store, TakeOutcome};
use nups_core::technique::{heuristic_replicated_keys, top_k_by_frequency, TechniqueMap};
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Operations the store model exercises.
#[derive(Debug, Clone)]
enum Op {
    Seed(u8),
    LocalAdd(u8, i16),
    MarkInflight(u8),
    RemotePush(u8, i16),
    TakeForTransfer(u8, u8),
    Install(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::Seed),
        (0u8..8, -100i16..100).prop_map(|(k, d)| Op::LocalAdd(k, d)),
        (0u8..8).prop_map(Op::MarkInflight),
        (0u8..8, -100i16..100).prop_map(|(k, d)| Op::RemotePush(k, d)),
        (0u8..8, 0u8..4).prop_map(|(k, n)| Op::TakeForTransfer(k, n)),
        (0u8..8).prop_map(Op::Install),
    ]
}

/// Reference model of one key's lifecycle at a node.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ModelState {
    Absent,
    Local(f64),
    /// In flight: (queued remote deltas, pending release target).
    Inflight(f64, bool),
    Forwarded,
}

proptest! {
    /// The store agrees with a simple reference model under arbitrary
    /// sequences of the six operations, and no update is ever lost.
    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let store = Store::new(4);
        let mut model = [ModelState::Absent; 8];
        // Value carried by in-flight transfers, per key.
        let mut transit: Vec<Option<f64>> = vec![None; 8];

        for op in ops {
            match op {
                Op::Seed(k) => {
                    if model[k as usize] == ModelState::Absent {
                        store.seed(k as u64, vec![0.0]);
                        model[k as usize] = ModelState::Local(0.0);
                    }
                }
                Op::LocalAdd(k, d) => {
                    let r = store.with_local(k as u64, |v| v[0] += d as f32);
                    match (&mut model[k as usize], r) {
                        (ModelState::Local(x), LocalAccess::Done((), _)) => *x += d as f64,
                        (ModelState::Inflight(..), LocalAccess::InFlight(_)) => {}
                        (ModelState::Absent, LocalAccess::Remote(None)) => {}
                        (ModelState::Forwarded, LocalAccess::Remote(Some(_))) => {}
                        (m, _) => prop_assert!(false, "state mismatch for LocalAdd: {m:?}"),
                    }
                }
                Op::MarkInflight(k) => {
                    let marked = store.mark_inflight(k as u64, SimTime::ZERO);
                    match model[k as usize] {
                        ModelState::Absent | ModelState::Forwarded => {
                            prop_assert!(marked);
                            model[k as usize] = ModelState::Inflight(0.0, false);
                            transit[k as usize].get_or_insert(0.0);
                        }
                        ModelState::Local(_) | ModelState::Inflight(..) => {
                            prop_assert!(!marked);
                        }
                    }
                }
                Op::RemotePush(k, d) => {
                    let r = store.server_push(
                        k as u64,
                        &[d as f32],
                        Addr::server(NodeId(9)),
                        1,
                    );
                    match (&mut model[k as usize], r) {
                        (ModelState::Local(x), ServerAccess::Served(None)) => *x += d as f64,
                        (ModelState::Inflight(q, _), ServerAccess::Queued) => *q += d as f64,
                        (ModelState::Absent, ServerAccess::NotHere(None)) => {}
                        (ModelState::Forwarded, ServerAccess::NotHere(Some(_))) => {}
                        (m, _) => prop_assert!(false, "state mismatch for RemotePush: {m:?}"),
                    }
                }
                Op::TakeForTransfer(k, n) => {
                    // Protocol precondition (enforced by the home node's
                    // directory): at most one pending release per in-flight
                    // entry. The generator must respect it.
                    if matches!(model[k as usize], ModelState::Inflight(_, true)) {
                        continue;
                    }
                    let r = store.take_for_transfer(k as u64, NodeId(n as u16));
                    match (&mut model[k as usize], r) {
                        (ModelState::Local(x), TakeOutcome::Taken(v)) => {
                            prop_assert!((v[0] as f64 - *x).abs() < 1e-3);
                            transit[k as usize] = Some(*x);
                            model[k as usize] = ModelState::Forwarded;
                        }
                        (ModelState::Inflight(_, released), TakeOutcome::Deferred) => {
                            // The protocol guarantees one release at a time;
                            // mirror the store by only issuing when unset.
                            *released = true;
                        }
                        (ModelState::Absent, TakeOutcome::NotHere(None)) => {}
                        (ModelState::Forwarded, TakeOutcome::NotHere(Some(_))) => {}
                        (m, _) => prop_assert!(false, "state mismatch for Take: {m:?}"),
                    }
                }
                Op::Install(k) => {
                    // Only valid when in flight (the protocol only sends
                    // Transfer to a node that marked the entry).
                    if let ModelState::Inflight(q, released) = model[k as usize] {
                        let incoming = transit[k as usize].take().unwrap_or(0.0);
                        let out = store.install(k as u64, vec![incoming as f32]);
                        prop_assert_eq!(!out.push_acks.is_empty(), q != 0.0 || !out.push_acks.is_empty());
                        if released {
                            let (_, v) = out.release.expect("release queued but not returned");
                            transit[k as usize] = Some(v[0] as f64);
                            model[k as usize] = ModelState::Forwarded;
                        } else {
                            prop_assert!(out.release.is_none());
                            model[k as usize] = ModelState::Local(incoming + q);
                        }
                    }
                }
            }
        }

        // Final check: every Local key agrees with the model.
        for k in 0..8u64 {
            if let ModelState::Local(x) = model[k as usize] {
                let v = store.get(k).expect("model says local");
                prop_assert!((v[0] as f64 - x).abs() < 1e-2, "key {k}: store {} model {x}", v[0]);
            } else {
                prop_assert!(store.get(k).is_none(), "key {k} should not be local");
            }
        }
    }

    /// Every key has exactly one home and homes tile the key space, for
    /// arbitrary key counts and node counts.
    #[test]
    fn keyspace_partition_is_exact(n_keys in 1u64..5000, n_nodes in 1u16..32) {
        let ks = KeySpace::new(n_keys, n_nodes);
        let mut covered = 0u64;
        for n in 0..n_nodes {
            let r = ks.range_of(NodeId(n));
            prop_assert!(r.start <= r.end);
            covered += r.end - r.start;
            for k in r.clone().take(64) {
                prop_assert_eq!(ks.home(k), NodeId(n));
            }
        }
        prop_assert_eq!(covered, n_keys);
    }

    /// The technique map always produces dense, consistent replica slots.
    #[test]
    fn technique_map_slots_are_dense(
        n_keys in 1u64..2000,
        picks in proptest::collection::vec(0u64..2000, 0..50),
    ) {
        let picks: Vec<u64> = picks.into_iter().filter(|&k| k < n_keys).collect();
        let tm = TechniqueMap::from_replicated_keys(n_keys, &picks);
        let mut seen = vec![false; tm.n_replicated()];
        for k in tm.replicated_keys() {
            let slot = tm.replica_slot(k).unwrap() as usize;
            prop_assert!(!seen[slot], "slot {slot} assigned twice");
            seen[slot] = true;
            prop_assert!(tm.is_replicated(k));
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Keys not picked are relocated.
        let picked: std::collections::HashSet<u64> = picks.iter().copied().collect();
        for k in (0..n_keys).take(256) {
            prop_assert_eq!(tm.is_replicated(k), picked.contains(&k));
        }
    }

    /// top-k and the heuristic agree: the heuristic's keys are always a
    /// prefix of the frequency-sorted order.
    #[test]
    fn heuristic_is_prefix_of_topk(freqs in proptest::collection::vec(0u64..10_000, 1..300)) {
        let hot = heuristic_replicated_keys(&freqs);
        let top = top_k_by_frequency(&freqs, hot.len());
        // Same multiset (ordering may differ among equal frequencies).
        let mut a = hot.clone();
        let mut b = top.clone();
        a.sort_unstable();
        b.sort_unstable();
        let freq_of = |keys: &[u64]| -> Vec<u64> {
            let mut f: Vec<u64> = keys.iter().map(|&k| freqs[k as usize]).collect();
            f.sort_unstable();
            f
        };
        prop_assert_eq!(freq_of(&a), freq_of(&b));
    }

    /// Pooled reuse: for arbitrary pool size / use frequency, a full
    /// pool's worth of output uses each drawn key exactly U times.
    #[test]
    fn pool_reuse_exact_use_counts(g in 1usize..40, u in 1usize..12) {
        let mut seq = PoolSequence::new(g, u);
        let mut rng = StdRng::seed_from_u64(7);
        let mut next_key = 0u64;
        let out = seq.next_batch(g * u, &mut rng, |_| { next_key += 1; next_key - 1 }, |_| {});
        prop_assert_eq!(out.len(), g * u);
        let mut counts = std::collections::HashMap::new();
        for k in out {
            *counts.entry(k).or_insert(0usize) += 1;
        }
        prop_assert_eq!(counts.len(), g);
        prop_assert!(counts.values().all(|&c| c == u));
    }
}
