//! Cluster bootstrap: rendezvous, membership exchange, and the barrier.
//!
//! Every node starts knowing only its own id, the cluster size, and the
//! coordinator's rendezvous address (node 0). The handshake proceeds in
//! three phases, all over the versioned frame protocol (so a mismatched
//! binary is rejected at the first byte, not mid-run):
//!
//! 1. **Rendezvous** — each peer binds its own data listener on an
//!    ephemeral port, dials the coordinator, and sends `Hello{node,
//!    listen_addr}`. The coordinator waits for all `n - 1` peers, then
//!    answers each with `Membership{addrs}`: the full node-id → address
//!    table.
//! 2. **Mesh** — every node dials one data connection to every other node
//!    (its *outbound* link, used only for sending) and accepts `n - 1`
//!    inbound links, each opened by a `Hello{node}` frame. Two directed
//!    connections per pair keep the writer/reader threading trivially
//!    single-owner.
//! 3. **Barrier** — each node sends a `Barrier` control frame on every
//!    outbound link and waits until it has received one from every peer:
//!    when that holds, every directed link in the mesh has carried real
//!    bytes, so the cluster is fully connected before any protocol
//!    traffic is issued.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use nups_sim::metrics::ClusterMetrics;
use nups_sim::net::Frame;
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId, Topology};
use nups_sim::trace::{actor, Observability};

use crate::fabric::{TcpFabric, CTRL_PORT};
use crate::frame::{read_frame, write_frame, ReadError};

/// How one node joins (or forms) a TCP cluster.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// This process's node id.
    pub node: NodeId,
    /// The cluster shape every process must agree on.
    pub topology: Topology,
    /// The coordinator's rendezvous address (node 0 binds it, everyone
    /// else dials it).
    pub coordinator: SocketAddr,
    /// Local IP the data listener binds on (loopback by default).
    pub bind_ip: IpAddr,
    /// Deadline for the whole handshake.
    pub timeout: Duration,
}

impl ClusterOptions {
    pub fn new(node: NodeId, topology: Topology, coordinator: SocketAddr) -> ClusterOptions {
        ClusterOptions {
            node,
            topology,
            coordinator,
            bind_ip: IpAddr::V4(Ipv4Addr::LOCALHOST),
            timeout: Duration::from_secs(30),
        }
    }
}

/// Why a cluster handshake failed. Every failure mode is distinguishable
/// so a launcher can report "two processes were started with --node-id 3"
/// instead of a generic socket error.
#[derive(Debug)]
pub enum BootstrapError {
    /// Two processes introduced themselves with the same node id — a
    /// misconfigured launch, not a network fault.
    DuplicateNode(NodeId),
    /// A hello carried a node id outside the agreed topology.
    NodeOutOfRange { node: NodeId, n_nodes: u16 },
    /// The handshake deadline ([`ClusterOptions::timeout`]) passed.
    TimedOut { phase: &'static str },
    /// A peer spoke the frame protocol but sent a nonsensical handshake
    /// message (version skew or a foreign client on the rendezvous port).
    Protocol(String),
    /// Socket-level failure.
    Io(io::Error),
}

impl fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootstrapError::DuplicateNode(node) => {
                write!(f, "two processes joined as node {node} — check the launch configuration")
            }
            BootstrapError::NodeOutOfRange { node, n_nodes } => {
                write!(
                    f,
                    "a peer introduced itself as node {node}, outside the 0..{n_nodes} topology"
                )
            }
            BootstrapError::TimedOut { phase } => {
                write!(f, "bootstrap timed out: {phase}")
            }
            BootstrapError::Protocol(what) => write!(f, "bootstrap protocol violation: {what}"),
            BootstrapError::Io(e) => write!(f, "bootstrap I/O failure: {e}"),
        }
    }
}

impl std::error::Error for BootstrapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BootstrapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BootstrapError {
    fn from(e: io::Error) -> BootstrapError {
        if e.kind() == io::ErrorKind::TimedOut {
            BootstrapError::TimedOut { phase: "waiting on a handshake socket" }
        } else {
            BootstrapError::Io(e)
        }
    }
}

impl From<BootstrapError> for io::Error {
    fn from(e: BootstrapError) -> io::Error {
        match e {
            BootstrapError::Io(e) => e,
            BootstrapError::TimedOut { .. } => {
                io::Error::new(io::ErrorKind::TimedOut, e.to_string())
            }
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Bootstrap control messages (never seen outside this module).
enum Ctl {
    /// `node` introduces itself; at the rendezvous it also announces the
    /// data listener peers should dial.
    Hello { node: NodeId, listen: Option<SocketAddr> },
    /// Coordinator → peer: `addrs[i]` is node `i`'s data listener.
    Membership { addrs: Vec<SocketAddr> },
    /// Mesh link liveness acknowledgement.
    Barrier,
}

mod tag {
    pub const HELLO: u8 = 1;
    pub const MEMBERSHIP: u8 = 2;
    pub const BARRIER: u8 = 3;
}

impl Ctl {
    fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            Ctl::Hello { node, listen } => {
                out.push(tag::HELLO);
                out.extend_from_slice(&node.0.to_le_bytes());
                put_opt_addr(&mut out, listen);
            }
            Ctl::Membership { addrs } => {
                out.push(tag::MEMBERSHIP);
                out.extend_from_slice(&(addrs.len() as u16).to_le_bytes());
                for a in addrs {
                    put_opt_addr(&mut out, &Some(*a));
                }
            }
            Ctl::Barrier => out.push(tag::BARRIER),
        }
        Bytes::copy_from_slice(&out)
    }

    fn decode(payload: &[u8]) -> io::Result<Ctl> {
        let mut r = payload;
        match take_u8(&mut r)? {
            tag::HELLO => {
                let node = NodeId(take_u16(&mut r)?);
                let listen = take_opt_addr(&mut r)?;
                Ok(Ctl::Hello { node, listen })
            }
            tag::MEMBERSHIP => {
                let n = take_u16(&mut r)? as usize;
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    addrs.push(take_opt_addr(&mut r)?.ok_or_else(bad_ctl)?);
                }
                Ok(Ctl::Membership { addrs })
            }
            tag::BARRIER => Ok(Ctl::Barrier),
            _ => Err(bad_ctl()),
        }
    }
}

fn bad_ctl() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "malformed bootstrap control message")
}

fn put_opt_addr(out: &mut Vec<u8>, addr: &Option<SocketAddr>) {
    match addr {
        None => out.push(0),
        Some(a) => {
            let s = a.to_string();
            out.push(1);
            out.extend_from_slice(&(s.len() as u16).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn take_u8(r: &mut &[u8]) -> io::Result<u8> {
    let (&b, rest) = r.split_first().ok_or_else(bad_ctl)?;
    *r = rest;
    Ok(b)
}

fn take_u16(r: &mut &[u8]) -> io::Result<u16> {
    Ok(u16::from_le_bytes([take_u8(r)?, take_u8(r)?]))
}

fn take_opt_addr(r: &mut &[u8]) -> io::Result<Option<SocketAddr>> {
    if take_u8(r)? == 0 {
        return Ok(None);
    }
    let len = take_u16(r)? as usize;
    if r.len() < len {
        return Err(bad_ctl());
    }
    let (s, rest) = r.split_at(len);
    *r = rest;
    let s = std::str::from_utf8(s).map_err(|_| bad_ctl())?;
    s.parse().map(Some).map_err(|_| bad_ctl())
}

fn ctl_frame(src: NodeId, dst: NodeId, ctl: &Ctl) -> Frame {
    Frame {
        src: Addr { node: src, port: CTRL_PORT },
        dst: Addr { node: dst, port: CTRL_PORT },
        sent_at: SimTime::ZERO,
        payload: ctl.encode(),
    }
}

fn write_ctl(w: &mut impl Write, src: NodeId, dst: NodeId, ctl: &Ctl) -> io::Result<()> {
    write_frame(w, &ctl_frame(src, dst, ctl))?;
    w.flush()
}

fn read_ctl(r: &mut impl Read) -> io::Result<(NodeId, Ctl)> {
    let frame = read_frame(r).map_err(|e| match e {
        ReadError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    })?;
    Ok((frame.src.node, Ctl::decode(&frame.payload)?))
}

/// Exponentially growing retry pause: starts at 1 ms, doubles to a 50 ms
/// cap, and never sleeps past the deadline. Keeps loopback handshakes
/// snappy (first retries are immediate-ish) without hot-spinning when a
/// peer is genuinely slow to start.
struct Backoff {
    pause: Duration,
}

impl Backoff {
    const FLOOR: Duration = Duration::from_millis(1);
    const CAP: Duration = Duration::from_millis(50);

    fn new() -> Backoff {
        Backoff { pause: Backoff::FLOOR }
    }

    /// Sleep for the current pause (clamped to the deadline), then double
    /// it. `false` when the deadline has already passed.
    fn wait(&mut self, deadline: Instant) -> bool {
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        std::thread::sleep(self.pause.min(deadline - now));
        self.pause = (self.pause * 2).min(Backoff::CAP);
        true
    }
}

/// Read timeout covering the remaining handshake budget (never zero —
/// a zero read timeout means "no timeout" on most platforms).
fn remaining(deadline: Instant, phase: &'static str) -> Result<Duration, BootstrapError> {
    let now = Instant::now();
    if now >= deadline {
        return Err(BootstrapError::TimedOut { phase });
    }
    Ok((deadline - now).max(Duration::from_millis(1)))
}

/// Accept with a deadline (the listener is flipped to non-blocking).
fn accept_deadline(listener: &TcpListener, deadline: Instant) -> Result<TcpStream, BootstrapError> {
    listener.set_nonblocking(true)?;
    let mut backoff = Backoff::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !backoff.wait(deadline) {
                    return Err(BootstrapError::TimedOut {
                        phase: "waiting for an inbound connection",
                    });
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Dial with retries: the peer may not have bound its listener yet. Each
/// attempt's connect timeout is the remaining handshake budget (capped at
/// 2 s so a retry loop stays responsive), and the pauses between attempts
/// back off exponentially.
fn connect_retry(addr: SocketAddr, deadline: Instant) -> Result<TcpStream, BootstrapError> {
    let mut backoff = Backoff::new();
    loop {
        let attempt = remaining(deadline, "dialing a peer")
            .map_err(|_| BootstrapError::TimedOut { phase: "dialing a peer" })?
            .min(Duration::from_secs(2));
        match TcpStream::connect_timeout(&addr, attempt) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if !backoff.wait(deadline) {
                    return Err(BootstrapError::Io(io::Error::new(
                        e.kind(),
                        format!("bootstrap could not reach {addr} before the deadline: {e}"),
                    )));
                }
            }
        }
    }
}

/// Run the full handshake and return this node's connected fabric.
/// Blocks until every node of `opts.topology` has joined (or
/// [`ClusterOptions::timeout`] passes — every wait in the handshake is
/// derived from that one budget). A failure tears down everything this
/// node opened: dropping the listeners and streams closes them, so a
/// failed join never leaves half a mesh behind.
pub fn connect_cluster(
    opts: &ClusterOptions,
    metrics: Arc<ClusterMetrics>,
    obs: Arc<Observability>,
) -> Result<TcpFabric, BootstrapError> {
    let me = opts.node;
    let topo = opts.topology;
    let n = topo.n_nodes;
    assert!(me.0 < n, "node {me} outside the topology");
    let started = Instant::now();
    let deadline = started + opts.timeout;
    // Handshake phases are journaled with wall-clock offsets from the start
    // of the handshake (the virtual backend never bootstraps over TCP, so
    // these stamps are outside the deterministic-trace contract).
    let mark = |name: &'static str, a: u64| {
        obs.event(SimTime(started.elapsed().as_nanos() as u64), me.0, actor::FABRIC, name, a, 0);
    };
    mark("bootstrap_start", n as u64);

    if n == 1 {
        // A cluster of one has no peers to shake hands with.
        mark("bootstrap_done", 0);
        return Ok(TcpFabric::assemble(
            me,
            topo,
            metrics,
            obs,
            Vec::new(),
            Vec::new(),
            opts.timeout,
        )?);
    }

    let data_listener = TcpListener::bind(SocketAddr::new(opts.bind_ip, 0))?;
    let my_data_addr = data_listener.local_addr()?;

    // Phase 1: rendezvous — learn every node's data listener address.
    let membership: Vec<SocketAddr> = if me == NodeId(0) {
        let rendezvous = TcpListener::bind(opts.coordinator)?;
        let mut addrs: Vec<Option<SocketAddr>> = vec![None; n as usize];
        addrs[0] = Some(my_data_addr);
        let mut waiting = Vec::with_capacity(n as usize - 1);
        while waiting.len() < n as usize - 1 {
            let mut stream = accept_deadline(&rendezvous, deadline)?;
            stream.set_read_timeout(Some(remaining(deadline, "reading a rendezvous hello")?))?;
            match read_ctl(&mut stream)? {
                (_, Ctl::Hello { node, listen: Some(listen) }) => {
                    if node.0 >= n {
                        return Err(BootstrapError::NodeOutOfRange { node, n_nodes: n });
                    }
                    if addrs[node.index()].replace(listen).is_some() {
                        return Err(BootstrapError::DuplicateNode(node));
                    }
                    waiting.push(stream);
                }
                _ => return Err(BootstrapError::Protocol("expected a rendezvous hello".into())),
            }
        }
        let addrs: Vec<SocketAddr> = addrs
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| BootstrapError::Protocol("membership table left incomplete".into()))?;
        for mut stream in waiting {
            write_ctl(&mut stream, me, me, &Ctl::Membership { addrs: addrs.clone() })?;
        }
        addrs
    } else {
        let mut stream = connect_retry(opts.coordinator, deadline)?;
        stream.set_read_timeout(Some(remaining(deadline, "awaiting the membership table")?))?;
        write_ctl(
            &mut stream,
            me,
            NodeId(0),
            &Ctl::Hello { node: me, listen: Some(my_data_addr) },
        )?;
        match read_ctl(&mut stream)? {
            (_, Ctl::Membership { addrs }) if addrs.len() == n as usize => addrs,
            (_, Ctl::Membership { addrs }) => {
                return Err(BootstrapError::Protocol(format!(
                    "membership table lists {} nodes, expected {n}",
                    addrs.len()
                )));
            }
            _ => return Err(BootstrapError::Protocol("expected the membership table".into())),
        }
    };
    mark("bootstrap_membership", n as u64);

    // Phase 2: mesh — dial every peer (outbound links), accept every peer
    // (inbound links), each link introduced by a Hello.
    let mut outbound = Vec::with_capacity(n as usize - 1);
    for peer in topo.nodes().filter(|p| *p != me) {
        let mut stream = connect_retry(membership[peer.index()], deadline)?;
        stream.set_nodelay(true)?;
        write_ctl(&mut stream, me, peer, &Ctl::Hello { node: me, listen: None })?;
        outbound.push((peer, stream));
    }
    let mut inbound = Vec::with_capacity(n as usize - 1);
    let mut seen = vec![false; n as usize];
    while inbound.len() < n as usize - 1 {
        let mut stream = accept_deadline(&data_listener, deadline)?;
        stream.set_read_timeout(Some(remaining(deadline, "reading a mesh hello")?))?;
        match read_ctl(&mut stream)? {
            (_, Ctl::Hello { node, .. }) => {
                if node.0 >= n {
                    return Err(BootstrapError::NodeOutOfRange { node, n_nodes: n });
                }
                if node == me {
                    return Err(BootstrapError::Protocol(format!(
                        "a mesh peer introduced itself with this node's own id {me}"
                    )));
                }
                if std::mem::replace(&mut seen[node.index()], true) {
                    return Err(BootstrapError::DuplicateNode(node));
                }
                stream.set_read_timeout(None)?;
                stream.set_nodelay(true)?;
                inbound.push(stream);
            }
            _ => return Err(BootstrapError::Protocol("expected a mesh hello".into())),
        }
    }
    mark("bootstrap_mesh", (outbound.len() + inbound.len()) as u64);

    // Phase 3: barrier — every directed link carries one control frame
    // before any protocol traffic flows.
    // The shutdown drain grace reuses the cluster's one timeout budget: a
    // writer wedged on a dead peer is cut off after `opts.timeout`, the
    // same bound every bootstrap phase already honors.
    let fabric =
        TcpFabric::assemble(me, topo, metrics, Arc::clone(&obs), outbound, inbound, opts.timeout)?;
    for peer in topo.nodes().filter(|p| *p != me) {
        fabric.post(ctl_frame(me, peer, &Ctl::Barrier));
    }
    if !fabric.wait_barrier(n as u32 - 1, deadline) {
        // Tear the half-connected fabric down before reporting: its writer
        // and reader threads must not outlive the failed handshake.
        fabric.close();
        return Err(BootstrapError::TimedOut { phase: "waiting for the connection barrier" });
    }
    mark("bootstrap_done", n as u64 - 1);
    Ok(fabric)
}

// `post` comes from the Fabric trait.
use nups_core::runtime::Fabric;
