//! The matrix-factorization task (paper Section 5.1, Table 2 row 3).
//!
//! SGD on revealed cells of a synthetic zipf-1.1 matrix with L2
//! regularization and the bold-driver learning-rate heuristic (whose step
//! pattern is visible in the paper's Figure 6c). There is **no sampling
//! access** in this task — its performance differences come entirely from
//! parameter management.
//!
//! Key layout: row factor `i` → key `i`; column factor `j` → key
//! `n_rows + j`. Cells are partitioned to nodes by row (row keys stay on
//! their home node) and to workers within a node by column; each worker
//! visits its cells column by column in random order, creating the column
//! locality that relocation exploits.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use nups_core::api::PsWorker;
use nups_core::key::{Key, KeySpace};
use nups_workloads::matrix::{Cell, MatrixData};
use nups_workloads::partition::column_visit_order;

use crate::optimizer::BoldDriver;
use crate::task::{DistSpec, QualityDirection, TrainTask};
use crate::util::init_embedding;

/// MF task configuration.
#[derive(Debug, Clone)]
pub struct MfConfig {
    /// Factorization rank (paper: 1000).
    pub rank: usize,
    /// Initial SGD learning rate (adapted by bold driver).
    pub lr0: f32,
    /// L2 regularization.
    pub lambda: f32,
    pub init_scale: f32,
    /// Cells to look ahead for column localization.
    pub prefetch: usize,
    pub seed: u64,
}

impl Default for MfConfig {
    fn default() -> MfConfig {
        MfConfig { rank: 8, lr0: 0.1, lambda: 0.01, init_scale: 0.2, prefetch: 96, seed: 41 }
    }
}

/// The task, pre-partitioned for `n_nodes × workers_per_node` workers.
pub struct MfTask {
    data: Arc<MatrixData>,
    cfg: MfConfig,
    partitions: Vec<Vec<Cell>>,
    /// Current learning rate (bold driver), as f32 bits.
    lr_bits: AtomicU32,
    driver: Mutex<BoldDriver>,
}

impl MfTask {
    /// Partitioning needs the cluster shape: rows are assigned to the node
    /// that is *home* to their key (so row factors never relocate), and a
    /// node's cells are split over its workers by column.
    pub fn new(
        data: Arc<MatrixData>,
        cfg: MfConfig,
        n_nodes: u16,
        workers_per_node: u16,
    ) -> MfTask {
        let n_rows = data.config.n_rows as u64;
        let n_keys = n_rows + data.config.n_cols as u64;
        let keyspace = KeySpace::new(n_keys, n_nodes);
        let wpn = workers_per_node as usize;
        let mut partitions: Vec<Vec<Cell>> = vec![Vec::new(); n_nodes as usize * wpn];
        for cell in &data.train {
            let node = keyspace.home(cell.row as Key).index();
            let worker = cell.col as usize % wpn;
            partitions[node * wpn + worker].push(*cell);
        }
        // Column-major visiting with per-worker random column order.
        for (i, p) in partitions.iter_mut().enumerate() {
            *p = column_visit_order(p, |c| c.col, cfg.seed ^ (i as u64) << 8);
        }
        let driver = Mutex::new(BoldDriver::new(cfg.lr0));
        let lr_bits = AtomicU32::new(cfg.lr0.to_bits());
        MfTask { data, cfg, partitions, lr_bits, driver }
    }

    #[inline]
    fn n_rows(&self) -> u64 {
        self.data.config.n_rows as u64
    }

    #[inline]
    fn col_key(&self, col: u32) -> Key {
        self.n_rows() + col as Key
    }

    pub fn current_lr(&self) -> f32 {
        f32::from_bits(self.lr_bits.load(Ordering::Relaxed))
    }
}

impl TrainTask for MfTask {
    fn name(&self) -> &'static str {
        "mf"
    }

    fn n_keys(&self) -> u64 {
        self.n_rows() + self.data.config.n_cols as u64
    }

    fn value_len(&self) -> usize {
        self.cfg.rank
    }

    fn init_value(&self, key: Key, out: &mut [f32]) {
        init_embedding(key, self.cfg.seed, self.cfg.rank, self.cfg.init_scale, out);
    }

    fn distributions(&self) -> Vec<DistSpec> {
        Vec::new() // no sampling access in MF (Table 2)
    }

    fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn run_epoch(&self, worker: &mut dyn PsWorker, part: usize, _epoch: usize) -> f64 {
        let cells = &self.partitions[part];
        let k = self.cfg.rank;
        let lr = self.current_lr();
        let lambda = self.cfg.lambda;

        // Row and column factors travel together through the batched API:
        // one pull and one push per cell instead of two of each.
        let mut uv = vec![0.0f32; 2 * k];
        let mut dudv = vec![0.0f32; 2 * k];
        let mut loss = 0.0f64;

        for (i, cell) in cells.iter().enumerate() {
            // Localize the upcoming column factor before we reach it.
            if let Some(ahead) = cells.get(i + self.cfg.prefetch) {
                if ahead.col != cell.col {
                    worker.localize(&[self.col_key(ahead.col)]);
                }
            }
            let keys = [cell.row as Key, self.col_key(cell.col)];
            worker.pull_many(&keys, &mut uv);
            let (u, v) = uv.split_at(k);
            let pred: f32 = u.iter().zip(v).map(|(a, b)| a * b).sum();
            let e = pred - cell.value;
            loss += (e as f64).powi(2);
            let (du, dv) = dudv.split_at_mut(k);
            for d in 0..k {
                du[d] = -lr * (e * v[d] + lambda * u[d]);
                dv[d] = -lr * (e * u[d] + lambda * v[d]);
            }
            worker.push_many(&keys, &dudv);
            worker.charge_compute((8 * k) as u64);
            worker.advance_clock();
        }
        loss
    }

    fn evaluate(&self, model: &[Vec<f32>]) -> f64 {
        crate::eval::rmse(self.data.test.iter().map(|c| {
            let u = &model[c.row as usize];
            let v = &model[self.col_key(c.col) as usize];
            let pred: f32 = u.iter().zip(v).map(|(a, b)| a * b).sum();
            (pred, c.value)
        }))
    }

    fn quality_direction(&self) -> QualityDirection {
        QualityDirection::LowerIsBetter
    }

    fn direct_frequencies(&self) -> Vec<u64> {
        let mut f = self.data.row_frequencies();
        f.extend(self.data.col_frequencies());
        f
    }

    fn end_of_epoch(&self, _epoch: usize, total_loss: f64) {
        let lr = self.driver.lock().observe(total_loss);
        self.lr_bits.store(lr.to_bits(), Ordering::Relaxed);
    }

    fn clip_policy(&self) -> nups_core::value::ClipPolicy {
        nups_core::value::ClipPolicy::AverageNorm { factor: 2.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nups_core::config::NupsConfig;
    use nups_core::system::{run_epoch, ParameterServer};
    use nups_sim::cost::CostModel;
    use nups_workloads::matrix::MatrixConfig;

    fn tiny_task(n_nodes: u16, wpn: u16) -> MfTask {
        let data = Arc::new(MatrixData::generate(MatrixConfig {
            n_rows: 300,
            n_cols: 60,
            n_train: 15_000,
            n_test: 1_000,
            rank_gt: 3,
            zipf_alpha: 1.1,
            noise_std: 0.05,
            seed: 19,
        }));
        MfTask::new(data, MfConfig { rank: 4, ..MfConfig::default() }, n_nodes, wpn)
    }

    #[test]
    fn partitions_respect_row_homes_and_cover_data() {
        let t = tiny_task(2, 2);
        assert_eq!(t.n_partitions(), 4);
        let total: usize = t.partitions.iter().map(|p| p.len()).sum();
        assert_eq!(total, 15_000);
        let keyspace = KeySpace::new(t.n_keys(), 2);
        for (p, cells) in t.partitions.iter().enumerate() {
            let node = p / 2;
            for c in cells {
                assert_eq!(keyspace.home(c.row as Key).index(), node);
                assert_eq!(c.col as usize % 2, p % 2);
            }
        }
    }

    #[test]
    fn single_node_training_reduces_rmse() {
        let task = tiny_task(1, 2);
        let cfg = NupsConfig::single_node(2, task.n_keys(), task.value_len())
            .with_cost(CostModel::zero());
        let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));
        let mut workers = ps.workers();
        let before = task.evaluate(&ps.read_all());
        for epoch in 0..5 {
            let losses = Mutex::new(0.0f64);
            run_epoch(&mut workers, |i, w| {
                let l = task.run_epoch(w, i, epoch);
                *losses.lock() += l;
            });
            task.end_of_epoch(epoch, *losses.lock());
        }
        let after = task.evaluate(&ps.read_all());
        assert!(after < before * 0.8, "RMSE did not fall: {before:.4} → {after:.4}");
        // With a noise floor of 0.05, training should approach it.
        assert!(after < 0.4, "final RMSE {after:.4} too high");
        ps.shutdown();
    }

    #[test]
    fn bold_driver_reacts_to_loss() {
        let t = tiny_task(1, 1);
        let lr0 = t.current_lr();
        t.end_of_epoch(0, 100.0);
        t.end_of_epoch(1, 90.0); // improvement → grow
        assert!(t.current_lr() > lr0);
        let grown = t.current_lr();
        t.end_of_epoch(2, 120.0); // regression → halve
        assert!(t.current_lr() < grown * 0.6);
    }
}
