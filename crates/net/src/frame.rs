//! The on-wire frame format.
//!
//! Every message crossing a TCP connection is one *frame*: a fixed 32-byte
//! header followed by the payload bytes the [`nups_core::messages::Msg`]
//! codec produced. The header is versioned and checksummed so a desynced,
//! truncated or corrupted stream is rejected with a typed error instead of
//! feeding garbage into the message decoder:
//!
//! ```text
//! offset size field
//! 0      4    magic "NUPS" (little-endian u32)
//! 4      2    protocol version (currently 1)
//! 6      2    reserved, must be zero
//! 8      2    src node    ─┐
//! 10     2    src port     │ the simulator's Addr pair, verbatim
//! 12     2    dst node     │
//! 14     2    dst port    ─┘
//! 16     8    sent_at (nanoseconds, sender's timeline)
//! 24     4    payload length
//! 28     4    CRC-32 (IEEE) of the payload
//! ```
//!
//! The header is exactly [`WIRE_HEADER_BYTES`] long — the framing overhead
//! the cost model has charged per message all along — so the byte counters
//! of a simulated run and the bytes a TCP run actually puts on loopback
//! sockets agree by construction.

use std::io::{self, Read, Write};

use bytes::Bytes;
use nups_sim::net::Frame;
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId};

/// `b"NUPS"` as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"NUPS");

/// Current protocol version. Bumped on any incompatible frame or message
/// change; the handshake rejects mismatched peers at connect time.
pub const PROTOCOL_VERSION: u16 = 1;

/// Size of the fixed frame header. Kept equal to the cost model's
/// modelled framing overhead (asserted in the tests below).
pub const HEADER_BYTES: usize = 32;

/// Upper bound on a frame payload. Far above anything the protocol emits
/// (the largest messages are batched value transfers); primarily a guard
/// against a corrupt length field committing us to a huge allocation.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// A malformed frame header or corrupted payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not the protocol magic: the stream is
    /// desynchronized or the peer is not a NuPS node.
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    UnsupportedVersion(u16),
    /// Reserved header bits were set (sent by a future version?).
    ReservedBitsSet(u16),
    /// The length field exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge { len: u32, max: u32 },
    /// The payload did not hash to the header's checksum.
    ChecksumMismatch { expected: u32, actual: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::ReservedBitsSet(r) => write!(f, "reserved header bits set: {r:#06x}"),
            FrameError::PayloadTooLarge { len, max } => {
                write!(f, "payload length {len} exceeds maximum {max}")
            }
            FrameError::ChecksumMismatch { expected, actual } => {
                write!(f, "payload checksum {actual:#010x} != header {expected:#010x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Why reading the next frame off a stream failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The socket failed (or closed mid-frame).
    Io(io::Error),
    /// The bytes arrived but did not form a valid frame.
    Frame(FrameError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::Io(e) => write!(f, "socket error: {e}"),
            ReadError::Frame(e) => write!(f, "bad frame: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// The decoded fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub src: Addr,
    pub dst: Addr,
    pub sent_at: SimTime,
    pub payload_len: u32,
    pub checksum: u32,
}

impl FrameHeader {
    /// The header describing `frame`.
    pub fn of(frame: &Frame) -> FrameHeader {
        FrameHeader {
            src: frame.src,
            dst: frame.dst,
            sent_at: frame.sent_at,
            payload_len: frame.payload.len() as u32,
            checksum: crc32(&frame.payload),
        }
    }

    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        b[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        // b[6..8] reserved, zero.
        b[8..10].copy_from_slice(&self.src.node.0.to_le_bytes());
        b[10..12].copy_from_slice(&self.src.port.to_le_bytes());
        b[12..14].copy_from_slice(&self.dst.node.0.to_le_bytes());
        b[14..16].copy_from_slice(&self.dst.port.to_le_bytes());
        b[16..24].copy_from_slice(&self.sent_at.as_nanos().to_le_bytes());
        b[24..28].copy_from_slice(&self.payload_len.to_le_bytes());
        b[28..32].copy_from_slice(&self.checksum.to_le_bytes());
        b
    }

    /// Parse and validate a header. The payload checksum is verified later
    /// (by [`read_frame`], once the payload bytes are in).
    pub fn decode(b: &[u8; HEADER_BYTES]) -> Result<FrameHeader, FrameError> {
        let u16_at = |i: usize| u16::from_le_bytes([b[i], b[i + 1]]);
        let u32_at = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let magic = u32_at(0);
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let version = u16_at(4);
        if version != PROTOCOL_VERSION {
            return Err(FrameError::UnsupportedVersion(version));
        }
        let reserved = u16_at(6);
        if reserved != 0 {
            return Err(FrameError::ReservedBitsSet(reserved));
        }
        let payload_len = u32_at(24);
        if payload_len > MAX_PAYLOAD {
            return Err(FrameError::PayloadTooLarge { len: payload_len, max: MAX_PAYLOAD });
        }
        Ok(FrameHeader {
            src: Addr { node: NodeId(u16_at(8)), port: u16_at(10) },
            dst: Addr { node: NodeId(u16_at(12)), port: u16_at(14) },
            sent_at: SimTime(u64::from_le_bytes(b[16..24].try_into().expect("8 bytes"))),
            payload_len,
            checksum: u32_at(28),
        })
    }
}

/// Encode a frame into one contiguous buffer (header + payload), ready for
/// a single `write_all`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + frame.payload.len());
    out.extend_from_slice(&FrameHeader::of(frame).encode());
    out.extend_from_slice(&frame.payload);
    out
}

/// Write one frame to `w` (no flush; callers batch or flush as they like).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Read exactly `buf.len()` bytes, reporting a clean EOF *before the first
/// byte* as `Ok(false)`. An EOF mid-buffer is an error: the peer died in
/// the middle of a frame.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, ReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(ReadError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(true)
}

/// Read the next frame off `r`, however the bytes are chunked: short reads
/// and partial writes reassemble here. Returns [`ReadError::Eof`] on a
/// clean close at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ReadError> {
    let mut header_bytes = [0u8; HEADER_BYTES];
    if !read_exact_or_eof(r, &mut header_bytes)? {
        return Err(ReadError::Eof);
    }
    let header = FrameHeader::decode(&header_bytes).map_err(ReadError::Frame)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    if !payload.is_empty() && !read_exact_or_eof(r, &mut payload)? {
        return Err(ReadError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the payload",
        )));
    }
    let actual = crc32(&payload);
    if actual != header.checksum {
        return Err(ReadError::Frame(FrameError::ChecksumMismatch {
            expected: header.checksum,
            actual,
        }));
    }
    Ok(Frame {
        src: header.src,
        dst: header.dst,
        sent_at: header.sent_at,
        payload: Bytes::from(payload),
    })
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;
    use nups_sim::cost::WIRE_HEADER_BYTES;
    use proptest::prelude::*;

    fn frame(src: Addr, dst: Addr, sent_at: u64, payload: &[u8]) -> Frame {
        Frame { src, dst, sent_at: SimTime(sent_at), payload: Bytes::copy_from_slice(payload) }
    }

    #[test]
    fn header_matches_the_cost_models_framing_overhead() {
        assert_eq!(HEADER_BYTES, WIRE_HEADER_BYTES, "byte accounting must stay exact");
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_through_a_buffer() {
        let f = frame(Addr::server(NodeId(2)), Addr::worker(NodeId(0), 3), 42, b"payload");
        let bytes = encode_frame(&f);
        assert_eq!(bytes.len(), HEADER_BYTES + 7);
        let back = read_frame(&mut &bytes[..]).expect("valid frame");
        assert_eq!(back.src, f.src);
        assert_eq!(back.dst, f.dst);
        assert_eq!(back.sent_at, f.sent_at);
        assert_eq!(&back.payload[..], &f.payload[..]);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"");
        let bytes = encode_frame(&f);
        assert_eq!(bytes.len(), HEADER_BYTES);
        let back = read_frame(&mut &bytes[..]).expect("valid frame");
        assert!(back.payload.is_empty());
    }

    #[test]
    fn clean_eof_between_frames() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut &empty[..]), Err(ReadError::Eof)));
    }

    #[test]
    fn eof_mid_header_is_an_io_error() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"xyz");
        let bytes = encode_frame(&f);
        let truncated = &bytes[..HEADER_BYTES / 2];
        assert!(matches!(read_frame(&mut &truncated[..]), Err(ReadError::Io(_))));
        let no_payload = &bytes[..HEADER_BYTES + 1];
        assert!(matches!(read_frame(&mut &no_payload[..]), Err(ReadError::Io(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"x");
        let mut bytes = encode_frame(&f);
        bytes[0] ^= 0xFF;
        match read_frame(&mut &bytes[..]) {
            Err(ReadError::Frame(FrameError::BadMagic(_))) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"x");
        let mut bytes = encode_frame(&f);
        bytes[4] = 99;
        match read_frame(&mut &bytes[..]) {
            Err(ReadError::Frame(FrameError::UnsupportedVersion(99))) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn reserved_bits_rejected() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"x");
        let mut bytes = encode_frame(&f);
        bytes[6] = 1;
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ReadError::Frame(FrameError::ReservedBitsSet(1)))
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"x");
        let mut bytes = encode_frame(&f);
        bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ReadError::Frame(FrameError::PayloadTooLarge { .. }))
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"payload");
        let mut bytes = encode_frame(&f);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ReadError::Frame(FrameError::ChecksumMismatch { .. }))
        ));
    }

    proptest! {
        #[test]
        fn header_roundtrip_prop(
            src_node in any::<u16>(), src_port in any::<u16>(),
            dst_node in any::<u16>(), dst_port in any::<u16>(),
            sent_at in any::<u64>(),
            payload_len in 0u32..MAX_PAYLOAD,
            checksum in any::<u32>(),
        ) {
            let h = FrameHeader {
                src: Addr { node: NodeId(src_node), port: src_port },
                dst: Addr { node: NodeId(dst_node), port: dst_port },
                sent_at: SimTime(sent_at),
                payload_len,
                checksum,
            };
            let back = FrameHeader::decode(&h.encode()).expect("valid header");
            prop_assert_eq!(back, h);
        }

        #[test]
        fn frame_roundtrip_prop(
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            sent_at in any::<u64>(),
        ) {
            let f = frame(Addr::server(NodeId(1)), Addr::worker(NodeId(0), 2), sent_at, &payload);
            let bytes = encode_frame(&f);
            let back = read_frame(&mut &bytes[..]).expect("valid frame");
            prop_assert_eq!(&back.payload[..], &payload[..]);
            prop_assert_eq!(back.sent_at, SimTime(sent_at));
        }

        #[test]
        fn arbitrary_header_bytes_never_panic(b in proptest::collection::vec(any::<u8>(), HEADER_BYTES..=HEADER_BYTES)) {
            let arr: [u8; HEADER_BYTES] = b.try_into().unwrap();
            let _ = FrameHeader::decode(&arr); // must not panic
        }
    }
}
