//! Dense parameter values and the vector math used on the hot paths.
//!
//! All parameters of one server instance share a fixed value length (e.g.
//! `2 * dim` for a ComplEx embedding, or `dim + dim` when a task stores
//! AdaGrad accumulators inline with the weights, as the paper's tasks do).
//! Updates are *additive deltas*, which is what makes replication sound:
//! deltas from different nodes commute under addition.

/// Add `delta` into `target` element-wise.
#[inline]
pub fn add_assign(target: &mut [f32], delta: &[f32]) {
    debug_assert_eq!(target.len(), delta.len());
    for (t, d) in target.iter_mut().zip(delta) {
        *t += d;
    }
}

/// `target += alpha * delta`.
#[inline]
pub fn axpy(target: &mut [f32], alpha: f32, delta: &[f32]) {
    debug_assert_eq!(target.len(), delta.len());
    for (t, d) in target.iter_mut().zip(delta) {
        *t += alpha * d;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Scale `v` in place.
#[inline]
pub fn scale(v: &mut [f32], s: f32) {
    for x in v {
        *x *= s;
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Gradient-norm clipping as used by the paper for replicated parameters in
/// the WV and MF tasks (Section 5.1): an update whose norm exceeds
/// `factor ×` the running average update norm is scaled down to that bound.
/// Returns the (possibly reduced) scale that was applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClipPolicy {
    /// No clipping (the KGE task relies on AdaGrad instead).
    None,
    /// Clip updates exceeding `factor ×` the running average norm.
    AverageNorm { factor: f32 },
}

/// Running state for [`ClipPolicy::AverageNorm`]. One instance per node;
/// callers serialize access (it lives under the replica latch).
#[derive(Debug, Clone)]
pub struct ClipState {
    mean_norm: f32,
    observations: u64,
}

impl ClipState {
    pub fn new() -> ClipState {
        ClipState { mean_norm: 0.0, observations: 0 }
    }

    /// Observe an update and return the scale to apply to it
    /// (`1.0` = unclipped).
    pub fn observe(&mut self, policy: ClipPolicy, update_norm: f32) -> f32 {
        let ClipPolicy::AverageNorm { factor } = policy else {
            return 1.0;
        };
        if !update_norm.is_finite() || update_norm <= 0.0 {
            return 1.0;
        }
        // Decide against the mean of *past* updates, then fold the clipped
        // norm into the mean: an outlier must not poison the average that
        // is supposed to bound it.
        self.observations += 1;
        let scale = if self.observations <= 10 {
            1.0 // warm-up establishes the scale without clipping
        } else {
            let bound = factor * self.mean_norm;
            if update_norm > bound {
                bound / update_norm
            } else {
                1.0
            }
        };
        let n = (self.observations as f32).min(1000.0);
        self.mean_norm += (update_norm * scale - self.mean_norm) / n;
        scale
    }
}

impl Default for ClipState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_math() {
        let mut t = vec![1.0, 2.0, 3.0];
        add_assign(&mut t, &[0.5, 0.5, 0.5]);
        assert_eq!(t, vec![1.5, 2.5, 3.5]);
        axpy(&mut t, 2.0, &[1.0, 0.0, -1.0]);
        assert_eq!(t, vec![3.5, 2.5, 1.5]);
        scale(&mut t, 2.0);
        assert_eq!(t, vec![7.0, 5.0, 3.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clip_none_never_scales() {
        let mut s = ClipState::new();
        for _ in 0..100 {
            assert_eq!(s.observe(ClipPolicy::None, 1e9), 1.0);
        }
    }

    #[test]
    fn clip_average_norm_caps_outliers() {
        let policy = ClipPolicy::AverageNorm { factor: 2.0 };
        let mut s = ClipState::new();
        // Establish a mean norm of ~1.0.
        for _ in 0..100 {
            assert_eq!(s.observe(policy, 1.0), 1.0);
        }
        // A 10x outlier must be scaled down to roughly the 2x bound.
        let scale = s.observe(policy, 10.0);
        assert!(scale < 0.3, "outlier not clipped: scale={scale}");
        let effective = 10.0 * scale;
        assert!((effective - 2.0).abs() < 0.5, "clipped to {effective}, want ~2.0");
    }

    #[test]
    fn clip_ignores_degenerate_norms() {
        let policy = ClipPolicy::AverageNorm { factor: 2.0 };
        let mut s = ClipState::new();
        assert_eq!(s.observe(policy, f32::NAN), 1.0);
        assert_eq!(s.observe(policy, 0.0), 1.0);
        assert_eq!(s.observe(policy, f32::INFINITY), 1.0);
    }
}
