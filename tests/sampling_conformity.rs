//! Statistical tests of the sampling manager's conformity guarantees
//! (paper Section 4): first-order inclusion probabilities, dependency
//! bounds, postponement behaviour, and the locality of local sampling —
//! plus chi-squared goodness-of-fit of the alias-table sampler against
//! the Zipf targets the workloads actually use.

use nups::core::sampling::alias::AliasTable;
use nups::core::{
    ConformityLevel, DistributionKind, NupsConfig, ParameterServer, PsWorker, ReuseParams,
    SamplingScheme,
};
use nups::sim::cost::CostModel;
use nups::sim::topology::{NodeId, Topology, WorkerId};
use nups::workloads::{zipf_weights, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::FxHashMap;

fn ps_with_scheme(
    topo: Topology,
    n_keys: u64,
    kind: DistributionKind,
    scheme: SamplingScheme,
) -> (ParameterServer, nups::core::DistId) {
    let cfg = NupsConfig::nups(topo, n_keys, 1).with_cost(CostModel::zero());
    let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
    let dist = ps.register_distribution_with_scheme(0, n_keys, kind, scheme);
    (ps, dist)
}

fn draw_n(w: &mut dyn PsWorker, dist: nups::core::DistId, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 0 {
        let batch = remaining.min(200);
        let mut h = w.prepare_sample(dist, batch);
        for (k, _) in w.pull_sample(&mut h, batch) {
            out.push(k);
        }
        remaining -= batch;
    }
    out
}

/// Chi-square-style check that empirical frequencies match the target.
fn frequencies_match(samples: &[u64], weights: &[f64]) -> bool {
    let total_w: f64 = weights.iter().sum();
    let n = samples.len() as f64;
    let mut counts = vec![0u64; weights.len()];
    for &s in samples {
        counts[s as usize] += 1;
    }
    let mut chi2 = 0.0;
    let mut dof = 0;
    for (c, w) in counts.iter().zip(weights) {
        let expect = w / total_w * n;
        if expect >= 5.0 {
            chi2 += (*c as f64 - expect).powi(2) / expect;
            dof += 1;
        }
    }
    chi2 < 2.0 * dof as f64 + 30.0
}

/// L1 (CONFORM): independent sampling matches the target distribution.
#[test]
fn conform_first_order_inclusion_matches_target() {
    let weights: Vec<f64> = (1..=50).map(|i| 1.0 / i as f64).collect();
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        50,
        DistributionKind::Weighted(weights.clone()),
        SamplingScheme::Independent,
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 60_000);
    assert!(frequencies_match(&samples, &weights), "CONFORM frequencies off");
    drop(w);
    ps.shutdown();
}

/// L2 (BOUNDED): pooled reuse still matches first-order inclusion
/// probabilities, every pool key is used exactly U times, and the
/// dependency window stays within U·G.
#[test]
fn bounded_reuse_matches_target_and_bounds_dependencies() {
    let weights: Vec<f64> = (1..=50).map(|i| 1.0 / i as f64).collect();
    let params = ReuseParams { pool_size: 20, use_frequency: 4 };
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        50,
        DistributionKind::Weighted(weights.clone()),
        SamplingScheme::Reuse(params),
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 60_000);
    // First-order inclusion matches π, but samples are *clustered*: each
    // iid pool draw is emitted exactly U times, which inflates count
    // variance by U and would fail a naive chi-square. Test the
    // de-clustered draws instead (counts / U are the iid pool draws).
    let mut draw_counts = vec![0u64; 50];
    for &s in &samples {
        draw_counts[s as usize] += 1;
    }
    let pool_draws: Vec<u64> = draw_counts
        .iter()
        .enumerate()
        .flat_map(|(k, &c)| {
            assert_eq!(
                c % params.use_frequency as u64,
                0,
                "key {k} used {c} times, not a multiple of U"
            );
            std::iter::repeat_n(k as u64, (c / params.use_frequency as u64) as usize)
        })
        .collect();
    assert!(frequencies_match(&pool_draws, &weights), "BOUNDED first-order inclusion off");

    drop(w);
    ps.shutdown();

    // Dependency window, tested where key collisions inside a pool are
    // negligible (uniform π over many keys): any window of U·G
    // consecutive samples holds at most ~2·U occurrences of one key (a
    // key can straddle one pool boundary; rare collisions allow a third).
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        10_000,
        DistributionKind::Uniform,
        SamplingScheme::Reuse(params),
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 40_000);
    let bound = params.pool_size * params.use_frequency;
    for window in samples.chunks(bound) {
        let mut counts: FxHashMap<u64, usize> = FxHashMap::default();
        for &k in window {
            *counts.entry(k).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(
            max <= 3 * params.use_frequency,
            "key used {max} times inside one dependency window"
        );
    }
    drop(w);
    ps.shutdown();
}

/// L3 (LONG-TERM): postponing postpones each sample at most once, never
/// loses samples, and long-run frequencies still match the target.
#[test]
fn longterm_postponing_loses_no_samples() {
    let n_keys = 200u64;
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        n_keys,
        DistributionKind::Uniform,
        SamplingScheme::ReuseWithPostponing(ReuseParams { pool_size: 25, use_frequency: 4 }),
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let mut total = 0usize;
    for _ in 0..100 {
        let mut h = w.prepare_sample(dist, 40);
        // Partial pulls so postponing has room to reorder.
        for _ in 0..4 {
            total += w.pull_sample(&mut h, 10).len();
        }
        assert_eq!(h.remaining(), 0, "samples lost in handle");
    }
    assert_eq!(total, 4000, "postponing must deliver every requested sample");
    drop(w);
    let m = ps.metrics();
    assert_eq!(m.samples_drawn, 4000);
    ps.shutdown();
}

/// L4 (NON-CONFORM): local sampling never touches the network.
#[test]
fn local_sampling_is_free_of_network_traffic() {
    let (ps, dist) =
        ps_with_scheme(Topology::new(4, 1), 1000, DistributionKind::Uniform, SamplingScheme::Local);
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 5000);
    assert_eq!(samples.len(), 5000);
    drop(w);
    let m = ps.metrics();
    assert_eq!(m.samples_remote, 0, "local sampling reached the network");
    assert_eq!(m.remote_pulls, 0);
    // With a static allocation (no relocation happened), node 0 only ever
    // sees its own partition: the NON-CONFORM bias the paper warns about
    // (Figure 10c's "local sampling with static allocation").
    let max_key = samples.iter().max().copied().unwrap();
    assert!(max_key < 250, "node 0 sampled key {max_key} outside its partition");
    ps.shutdown();
}

/// Pearson chi-squared statistic of observed counts against expected
/// probabilities, pooling outcomes with expectation < 5 into one cell (the
/// standard validity condition for the chi-squared approximation).
fn chi_squared(counts: &[u64], weights: &[f64], draws: usize) -> (f64, usize) {
    let total_w: f64 = weights.iter().sum();
    let mut chi2 = 0.0;
    let mut cells = 0usize;
    let (mut tail_c, mut tail_e) = (0.0f64, 0.0f64);
    for (&c, &w) in counts.iter().zip(weights) {
        let expect = w / total_w * draws as f64;
        if expect >= 5.0 {
            chi2 += (c as f64 - expect).powi(2) / expect;
            cells += 1;
        } else {
            tail_c += c as f64;
            tail_e += expect;
        }
    }
    if tail_e > 0.0 {
        chi2 += (tail_c - tail_e).powi(2) / tail_e;
        cells += 1;
    }
    (chi2, cells.saturating_sub(1)) // dof = cells - 1
}

/// Upper bound that a correct sampler stays below with overwhelming
/// probability: the ~99.99% chi-squared quantile via the Wilson–Hilferty
/// normal approximation (z = 3.7).
fn chi2_bound(dof: usize) -> f64 {
    let d = dof as f64;
    let z = 3.7;
    d * (1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt()).powi(3)
}

/// Chi-squared goodness-of-fit of alias-table draws against the Zipf
/// targets the paper's workloads use (alpha = 1.1 for the synthetic
/// matrix; alpha = 1.0 word frequencies; alpha = 0 uniform corner).
#[test]
fn alias_table_draws_conform_to_zipf_targets() {
    for (alpha, n, draws, seed) in
        [(1.1, 64, 256_000, 11u64), (1.0, 200, 400_000, 12), (0.0, 50, 250_000, 13)]
    {
        let weights = zipf_weights(n, alpha);
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let (chi2, dof) = chi_squared(&counts, &weights, draws);
        assert!(
            chi2 < chi2_bound(dof),
            "alias draws diverge from Zipf({alpha}) over {n}: chi2={chi2:.1}, dof={dof}, \
             bound={:.1}",
            chi2_bound(dof)
        );
    }
}

/// The alias table and the inverse-CDF Zipf sampler are two
/// implementations of the same distribution: their empirical frequencies
/// must agree with each other, not just with the analytic target.
#[test]
fn alias_and_inverse_cdf_samplers_agree() {
    let n = 64;
    let weights = zipf_weights(n, 1.1);
    let table = AliasTable::new(&weights);
    let z = Zipf::from_weights(weights.clone());
    let draws = 200_000;
    let mut rng_a = StdRng::seed_from_u64(21);
    let mut rng_b = StdRng::seed_from_u64(22);
    let mut counts_a = vec![0u64; n];
    let mut counts_b = vec![0u64; n];
    for _ in 0..draws {
        counts_a[table.sample(&mut rng_a)] += 1;
        counts_b[z.sample(&mut rng_b)] += 1;
    }
    // Two-sample chi-squared: test A's counts against B's empirical
    // frequencies (B's counts as "weights").
    let b_freq: Vec<f64> = counts_b.iter().map(|&c| c as f64).collect();
    let (chi2, dof) = chi_squared(&counts_a, &b_freq, draws);
    // Both samples fluctuate, doubling the variance of the discrepancy.
    assert!(
        chi2 < 2.0 * chi2_bound(dof),
        "alias and inverse-CDF disagree: chi2={chi2:.1}, dof={dof}"
    );
}

/// The end-to-end path (registered weighted distribution → PrepareSample →
/// PullSample) preserves Zipf conformity, not just the raw table.
#[test]
fn registered_zipf_distribution_conforms_end_to_end() {
    let n = 64u64;
    let weights = zipf_weights(n as usize, 1.1);
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        n,
        DistributionKind::Weighted(weights.clone()),
        SamplingScheme::Independent,
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 120_000);
    let mut counts = vec![0u64; n as usize];
    for &s in &samples {
        counts[s as usize] += 1;
    }
    let (chi2, dof) = chi_squared(&counts, &weights, samples.len());
    assert!(chi2 < chi2_bound(dof), "end-to-end Zipf sampling diverges: chi2={chi2:.1}, dof={dof}");
    drop(w);
    ps.shutdown();
}

/// The hierarchy: the manager never selects a scheme weaker than the
/// requested level.
#[test]
fn manager_scheme_selection_respects_hierarchy() {
    for level in [
        ConformityLevel::Conform,
        ConformityLevel::Bounded,
        ConformityLevel::LongTerm,
        ConformityLevel::NonConform,
    ] {
        let cfg = NupsConfig::nups(Topology::new(1, 1), 10, 1).with_cost(CostModel::zero());
        let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
        let _ = ps.register_distribution(0, 10, DistributionKind::Uniform, level);
        let scheme = SamplingScheme::for_level(level, ReuseParams::default());
        assert!(scheme.provides().satisfies(level));
        ps.shutdown();
    }
}
