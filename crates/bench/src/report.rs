//! Speedup computation and table printing — the paper's *Measures*
//! (Section 5.1): raw speedup (epoch-time ratio) and effective speedup
//! (time to 90% of the best single-node quality) — plus the JSON shape
//! latency histograms take in bench reports.

use nups_ml::task::QualityDirection;
use nups_sim::hist::OpHistsSnapshot;
use nups_sim::time::{SimDuration, SimTime};

use crate::json::Json;
use crate::runner::RunResult;

/// Render an [`OpHistsSnapshot`] as a JSON object: one entry per non-empty
/// histogram with count, mean, p50/p99 and max (microseconds). Empty
/// histograms are omitted so in-process reports don't carry all-zero
/// fabric lanes. These land in the artifact reports, never the gated one —
/// latencies swing too wide between quiet and contended hosts for a
/// symmetric regression band.
pub fn hists_json(hists: &OpHistsSnapshot) -> Json {
    let mut j = Json::obj();
    for (name, h) in hists.entries() {
        if h.is_empty() {
            continue;
        }
        j = j.set(
            name,
            Json::obj()
                .set("count", h.count)
                .set("mean_us", h.mean() / 1_000.0)
                .set("p50_us", h.percentile(50.0) / 1_000)
                .set("p99_us", h.percentile(99.0) / 1_000)
                .set("max_us", h.max() / 1_000),
        );
    }
    j
}

/// Raw speedup of `variant` over `baseline` w.r.t. epoch run time.
pub fn raw_speedup(baseline: &RunResult, variant: &RunResult) -> f64 {
    let b = baseline.epoch_time().as_nanos() as f64;
    let v = variant.epoch_time().as_nanos() as f64;
    if v == 0.0 {
        return f64::NAN;
    }
    b / v
}

/// The effective-speedup threshold: 90% of the best quality the
/// single-node baseline reached.
pub fn effective_threshold(single: &RunResult, dir: QualityDirection) -> Option<f64> {
    single.best_quality(dir).map(|b| dir.effective_threshold(b))
}

/// Effective speedup of `variant` over `single`: ratio of times to reach
/// the 90% threshold. `None` when either run never reached it (the paper
/// then reports raw speedups, footnote 7).
pub fn effective_speedup(
    single: &RunResult,
    variant: &RunResult,
    dir: QualityDirection,
) -> Option<f64> {
    let threshold = effective_threshold(single, dir)?;
    let t_single = single.time_to_quality(threshold, dir)?;
    let t_variant = variant.time_to_quality(threshold, dir)?;
    if t_variant.as_nanos() == 0 {
        return None;
    }
    Some(t_single.as_nanos() as f64 / t_variant.as_nanos() as f64)
}

pub fn fmt_duration(d: SimDuration) -> String {
    d.to_string()
}

pub fn fmt_time(t: SimTime) -> String {
    t.to_string()
}

pub fn fmt_speedup(s: Option<f64>) -> String {
    match s {
        Some(x) if x.is_finite() => format!("{x:.2}x"),
        _ => "—".to_string(),
    }
}

pub fn fmt_quality(q: Option<f64>) -> String {
    match q {
        Some(x) => format!("{x:.4}"),
        None => "—".to_string(),
    }
}

/// Print a fixed-width table; first column left-aligned, the rest right.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}  ", cell, w = widths[0]));
            } else {
                line.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Print a quality-over-time series (one line per evaluated epoch), the
/// textual equivalent of the paper's convergence plots.
pub fn print_series(result: &RunResult) {
    println!("\n--- {} ---", result.variant);
    println!("{:>6} {:>14} {:>12} {:>14}", "epoch", "virtual time", "quality", "train loss");
    for r in &result.records {
        println!(
            "{:>6} {:>14} {:>12} {:>14.1}",
            r.epoch + 1,
            fmt_time(r.time),
            fmt_quality(r.quality),
            r.train_loss
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EpochRecord;
    use nups_sim::metrics::MetricsSnapshot;

    fn result(name: &str, epoch_ns: u64, qualities: &[f64]) -> RunResult {
        RunResult {
            variant: name.to_string(),
            records: qualities
                .iter()
                .enumerate()
                .map(|(i, &q)| EpochRecord {
                    epoch: i,
                    time: SimTime(epoch_ns * (i as u64 + 1)),
                    quality: Some(q),
                    train_loss: 0.0,
                })
                .collect(),
            metrics: MetricsSnapshot::default(),
            sync_frequency: None,
            replicated_keys: 0,
        }
    }

    #[test]
    fn raw_speedup_is_epoch_time_ratio() {
        let slow = result("slow", 1000, &[0.1, 0.2]);
        let fast = result("fast", 250, &[0.1, 0.2]);
        assert!((raw_speedup(&slow, &fast) - 4.0).abs() < 1e-9);
        assert!((raw_speedup(&slow, &slow) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn effective_speedup_uses_90pct_threshold() {
        let dir = QualityDirection::HigherIsBetter;
        // Single node: best 0.2 → threshold 0.18, reached at epoch 4
        // (t = 4000).
        let single = result("single", 1000, &[0.05, 0.10, 0.15, 0.19, 0.20]);
        // Variant reaches 0.18 at its second epoch (t = 500×2 = 1000).
        let variant = result("v", 500, &[0.10, 0.19, 0.20]);
        let s = effective_speedup(&single, &variant, dir).unwrap();
        assert!((s - 4.0).abs() < 1e-9, "effective speedup {s}");
    }

    #[test]
    fn effective_speedup_none_when_threshold_unreached() {
        let dir = QualityDirection::HigherIsBetter;
        let single = result("single", 1000, &[0.1, 0.2]);
        let never = result("never", 100, &[0.01, 0.02]);
        assert!(effective_speedup(&single, &never, dir).is_none());
    }

    #[test]
    fn lower_is_better_thresholds() {
        let dir = QualityDirection::LowerIsBetter;
        let single = result("single", 1000, &[2.0, 1.0, 0.9]);
        let t = effective_threshold(&single, dir).unwrap();
        assert!(t > 0.9 && t < 1.01);
        let v = result("v", 100, &[1.5, 0.95]);
        let s = effective_speedup(&single, &v, dir).unwrap();
        // Threshold = 0.9/0.9 = 1.0: single reaches ≤1.0 at epoch 2
        // (t=2000); the variant at its epoch 2 (t=200).
        assert!((s - 10.0).abs() < 1e-9, "{s}");
    }
}
