//! # nups-net — the TCP message fabric
//!
//! Real sockets under the NuPS parameter server: this crate implements
//! the [`nups_core::runtime::Fabric`]/[`nups_core::runtime::Port`] traits
//! over `std::net::TcpStream`, so the exact same worker/server protocol
//! code that runs on the in-process channel fabric (and, with the virtual
//! runtime, inside the deterministic simulator) runs across OS processes
//! connected by length-prefixed, checksummed, versioned frames.
//!
//! * [`frame`] — the on-wire format: a fixed 32-byte header (magic,
//!   protocol version, src/dst address, send timestamp, payload length,
//!   CRC-32) followed by the `Msg` codec bytes. Malformed input yields
//!   typed [`frame::FrameError`]s, never panics.
//! * [`fabric`] — [`TcpFabric`]: per-peer writer threads behind bounded
//!   outbound queues, a reader thread per inbound connection demuxing
//!   into per-(node, port) inboxes, and total teardown on shutdown. The
//!   hot path is built for throughput: each writer wakeup drains its
//!   whole queue and flushes it as one coalesced (vectored where large)
//!   write, scratch buffers come from a shared [`pool::BufferPool`]
//!   instead of per-frame allocations, and every link runs with
//!   `TCP_NODELAY` so batching is the fabric's decision, not Nagle's.
//! * [`pool`] — [`pool::BufferPool`]: the small free-list of reusable
//!   byte buffers behind both sides of that hot path.
//! * [`bootstrap`] — [`connect_cluster`]: rendezvous on a coordinator
//!   address, membership exchange, full-mesh dialing, and a barrier that
//!   proves every directed link live before protocol traffic flows.
//!
//! Deployment entry point: each OS process builds the same
//! [`nups_core::NupsConfig`], calls [`connect_cluster`] with its node id,
//! and hands the fabric to
//! [`nups_core::ParameterServer::deploy`] with
//! [`nups_core::Deployment::SingleNode`]. The `nups-node` binary in
//! `nups-bench` wraps exactly that.

pub mod bootstrap;
pub mod fabric;
pub mod frame;
pub mod pool;

pub use bootstrap::{connect_cluster, BootstrapError, ClusterOptions};
pub use fabric::{TcpFabric, TcpPort};
pub use frame::{FrameError, FrameHeader, ReadError, HEADER_BYTES, MAX_PAYLOAD, PROTOCOL_VERSION};
pub use pool::BufferPool;
