//! The experiment runner: builds a system variant, drives a task for a
//! number of epochs or a virtual-time budget, and records
//! quality-over-time series plus the counters every figure reports.

use parking_lot::Mutex;
use std::sync::Arc;

use nups_core::api::PsWorker;
use nups_core::config::NupsConfig;
use nups_core::ssp::{SspConfig, SspPs};
use nups_core::system::{run_epoch, ParameterServer};
use nups_core::technique::{heuristic_replicated_keys, top_k_by_frequency};
use nups_core::value::ClipPolicy;
use nups_ml::task::TrainTask;
use nups_sim::cost::CostModel;
use nups_sim::metrics::MetricsSnapshot;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::Topology;

use crate::variant::{NupsVariant, VariantKind, VariantSpec};

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub topology: Topology,
    pub cost: CostModel,
    pub max_epochs: usize,
    /// Stop after the first epoch that ends beyond this virtual time
    /// (the paper's 6 h budget, scaled).
    pub time_budget: Option<SimDuration>,
    /// Evaluate quality every `eval_every` epochs (always after the last).
    pub eval_every: usize,
}

impl RunConfig {
    pub fn new(topology: Topology, max_epochs: usize) -> RunConfig {
        RunConfig {
            topology,
            cost: CostModel::cluster_default(),
            max_epochs,
            time_budget: None,
            eval_every: 1,
        }
    }
}

/// One evaluated point of a run.
#[derive(Debug, Clone, Copy)]
pub struct EpochRecord {
    pub epoch: usize,
    /// Virtual time at the end of the epoch.
    pub time: SimTime,
    /// Task quality (MRR / coherence / RMSE) if evaluated this epoch.
    pub quality: Option<f64>,
    pub train_loss: f64,
}

/// Everything a figure needs from one (task, variant) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub variant: String,
    pub records: Vec<EpochRecord>,
    pub metrics: MetricsSnapshot,
    /// Achieved replica synchronizations per virtual second (NuPS only).
    pub sync_frequency: Option<f64>,
    /// Number of replicated keys (NuPS only).
    pub replicated_keys: usize,
}

impl RunResult {
    /// Average virtual epoch duration.
    pub fn epoch_time(&self) -> SimDuration {
        match self.records.last() {
            Some(last) => SimDuration(last.time.as_nanos() / self.records.len() as u64),
            None => SimDuration::ZERO,
        }
    }

    /// Final evaluated quality.
    pub fn final_quality(&self) -> Option<f64> {
        self.records.iter().rev().find_map(|r| r.quality)
    }

    /// Best evaluated quality under `dir`.
    pub fn best_quality(&self, dir: nups_ml::task::QualityDirection) -> Option<f64> {
        let mut best: Option<f64> = None;
        for q in self.records.iter().filter_map(|r| r.quality) {
            best = Some(match best {
                None => q,
                Some(b) if dir.at_least_as_good(q, b) => q,
                Some(b) => b,
            });
        }
        best
    }

    /// First virtual time at which quality met `threshold`.
    pub fn time_to_quality(
        &self,
        threshold: f64,
        dir: nups_ml::task::QualityDirection,
    ) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| r.quality.is_some_and(|q| dir.meets(q, threshold)))
            .map(|r| r.time)
    }
}

/// Decide the replicated key set for a NuPS variant from task statistics
/// (the untuned heuristic of Section 5.1, scaled by the sweep factor).
pub fn replicated_keys_for(task: &dyn TrainTask, v: &NupsVariant) -> Vec<u64> {
    if v.replication_factor <= 0.0 && v.replicated_count.is_none() {
        return Vec::new();
    }
    let freqs = task.direct_frequencies();
    let count = match v.replicated_count {
        Some(c) => c,
        None => {
            let base = heuristic_replicated_keys(&freqs).len();
            ((base as f64 * v.replication_factor).round() as usize).min(freqs.len())
        }
    };
    top_k_by_frequency(&freqs, count)
}

/// A task builder keyed by topology: different variants run different
/// cluster shapes (the single-node baseline has fewer workers than the
/// cluster), and data must be partitioned for the shape it runs on —
/// exactly as the paper re-partitions per system.
pub type TaskFactory<'a> = &'a dyn Fn(Topology) -> Arc<dyn TrainTask>;

/// Run one (task, variant) experiment.
pub fn run(factory: TaskFactory, spec: &VariantSpec, cfg: &RunConfig) -> RunResult {
    match &spec.kind {
        VariantKind::Nups(v) => run_nups(factory, spec, v, cfg),
        VariantKind::Ssp { protocol, staleness } => {
            run_ssp(factory, spec, *protocol, *staleness, cfg)
        }
    }
}

fn drive_epochs<W: PsWorker>(
    task: &dyn TrainTask,
    workers: &mut [W],
    cfg: &RunConfig,
    virtual_time: impl Fn() -> SimTime,
    flush: impl Fn(),
    read_all: impl Fn() -> Vec<Vec<f32>>,
) -> Vec<EpochRecord> {
    assert_eq!(
        task.n_partitions(),
        workers.len(),
        "task must be partitioned for the experiment topology"
    );
    let mut records = Vec::new();
    for epoch in 0..cfg.max_epochs {
        let loss_total = Mutex::new(0.0f64);
        run_epoch(workers, |i, w| {
            let l = task.run_epoch(w, i, epoch);
            *loss_total.lock() += l;
        });
        let loss = *loss_total.lock();
        task.end_of_epoch(epoch, loss);
        flush();
        let t = virtual_time();
        let out_of_budget = cfg.time_budget.is_some_and(|b| t >= SimTime::ZERO + b);
        let last = epoch + 1 == cfg.max_epochs || out_of_budget;
        let quality = if epoch % cfg.eval_every.max(1) == 0 || last {
            Some(task.evaluate(&read_all()))
        } else {
            None
        };
        records.push(EpochRecord { epoch, time: t, quality, train_loss: loss });
        if out_of_budget {
            break;
        }
    }
    records
}

fn run_nups(
    factory: TaskFactory,
    spec: &VariantSpec,
    v: &NupsVariant,
    cfg: &RunConfig,
) -> RunResult {
    let topology = if v.force_single_node {
        Topology::single_node(cfg.topology.workers_per_node)
    } else {
        cfg.topology
    };
    let task = factory(topology);
    let task = task.as_ref();
    let replicated = replicated_keys_for(task, v);
    let clip = if v.clip && !replicated.is_empty() { task.clip_policy() } else { ClipPolicy::None };
    let ps_cfg = NupsConfig {
        topology,
        n_keys: task.n_keys(),
        value_len: task.value_len(),
        cost: cfg.cost,
        replicated_keys: replicated.clone(),
        relocation_enabled: v.relocation,
        sync_period: v.sync.period(),
        clip,
        reuse: Default::default(),
        store_shards: 64,
        seed: 0xBE7C4,
        adaptive: v.adaptive.clone(),
        backend: Default::default(),
    };
    let ps = ParameterServer::new(ps_cfg, |k, out| task.init_value(k, out));
    for d in task.distributions() {
        match v.scheme {
            Some(s) => {
                ps.register_distribution_with_scheme(d.base_key, d.n, d.kind, s);
            }
            None => {
                ps.register_distribution(d.base_key, d.n, d.kind, d.level);
            }
        }
    }
    let mut workers = ps.workers();
    let records = drive_epochs(
        task,
        &mut workers,
        cfg,
        || ps.virtual_time(),
        || ps.flush_replicas(),
        || ps.read_all(),
    );
    drop(workers);
    let elapsed = ps.virtual_time().saturating_since(SimTime::ZERO);
    let stats = ps.sync_stats();
    let sync_frequency = (!replicated.is_empty() && !elapsed.is_zero())
        .then(|| stats.syncs_done as f64 / elapsed.as_secs_f64());
    let metrics = ps.metrics();
    ps.shutdown();
    RunResult {
        variant: spec.name.clone(),
        records,
        metrics,
        sync_frequency,
        replicated_keys: replicated.len(),
    }
}

fn run_ssp(
    factory: TaskFactory,
    spec: &VariantSpec,
    protocol: nups_core::ssp::SspProtocol,
    staleness: u64,
    cfg: &RunConfig,
) -> RunResult {
    let task = factory(cfg.topology);
    let task = task.as_ref();
    let mut ssp_cfg =
        SspConfig::new(cfg.topology, task.n_keys(), task.value_len(), protocol).with_cost(cfg.cost);
    ssp_cfg.staleness = staleness;
    let ps = SspPs::new(ssp_cfg, |k, out| task.init_value(k, out));
    for d in task.distributions() {
        ps.register_distribution(d.base_key, d.n, d.kind, d.level);
    }
    let mut workers = ps.workers();
    let ps_ref = &ps;
    let records = drive_epochs(
        task,
        &mut workers,
        cfg,
        || ps_ref.virtual_time(),
        || {
            // SSP flushes at clock advances; give async applies a moment
            // to drain before evaluation reads the stores.
            std::thread::sleep(std::time::Duration::from_millis(5));
        },
        || ps_ref.read_all(),
    );
    drop(workers);
    let metrics = ps.metrics();
    ps.shutdown();
    RunResult {
        variant: spec.name.clone(),
        records,
        metrics,
        sync_frequency: None,
        replicated_keys: 0,
    }
}

/// Convenience: run a list of variants against one task factory.
pub fn run_all(factory: TaskFactory, variants: &[VariantSpec], cfg: &RunConfig) -> Vec<RunResult> {
    variants.iter().map(|v| run(factory, v, cfg)).collect()
}
