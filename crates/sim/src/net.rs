//! The simulated network: per-(node, port) inboxes connected by unbounded
//! channels, with exact byte accounting.
//!
//! The network moves *encoded* frames ([`bytes::Bytes`] payloads produced by
//! the [`crate::codec`] machinery). It does not price anything — virtual
//! time is charged at the call sites that know the semantics (a worker
//! blocking on a round trip charges its own clock; the sync coordinator
//! prices an all-reduce round) — but it counts every message and every byte
//! on the sender's node, which is what the experiments report.

pub use crossbeam::channel::RecvTimeoutError;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

use crate::cost::WIRE_HEADER_BYTES;
use crate::metrics::ClusterMetrics;
use crate::time::SimTime;
use crate::topology::{Addr, Topology};

/// One message in flight: source/destination addressing, the sender's
/// virtual send time (receivers may use it to model arrival), and the
/// encoded payload.
#[derive(Debug, Clone)]
pub struct Frame {
    pub src: Addr,
    pub dst: Addr,
    /// Virtual time at which the sender issued the message.
    pub sent_at: SimTime,
    pub payload: bytes::Bytes,
}

impl Frame {
    /// Bytes this frame occupies on the wire (payload + framing overhead).
    #[inline]
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + WIRE_HEADER_BYTES
    }
}

struct Mailbox {
    sender: Sender<Frame>,
    receiver: Mutex<Option<Receiver<Frame>>>,
}

/// The cluster-wide fabric. Create once, then [`bind`](Network::bind) one
/// endpoint per (node, port) and hand endpoints to the threads that own
/// them.
pub struct Network {
    topology: Topology,
    mailboxes: Vec<Mailbox>,
    metrics: Arc<ClusterMetrics>,
}

impl Network {
    pub fn new(topology: Topology, metrics: Arc<ClusterMetrics>) -> Arc<Network> {
        let n = topology.n_nodes as usize * topology.ports_per_node() as usize;
        let mailboxes = (0..n)
            .map(|_| {
                let (tx, rx) = unbounded();
                Mailbox { sender: tx, receiver: Mutex::new(Some(rx)) }
            })
            .collect();
        Arc::new(Network { topology, mailboxes, metrics })
    }

    #[inline]
    fn slot(&self, addr: Addr) -> usize {
        debug_assert!(addr.port < self.topology.ports_per_node());
        addr.node.index() * self.topology.ports_per_node() as usize + addr.port as usize
    }

    /// Take ownership of the receiving side of `addr`. Panics if the address
    /// was already bound: each inbox has exactly one owner.
    pub fn bind(self: &Arc<Network>, addr: Addr) -> Endpoint {
        let rx = self.mailboxes[self.slot(addr)]
            .receiver
            .lock()
            .take()
            .unwrap_or_else(|| panic!("address {addr} bound twice"));
        Endpoint { net: Arc::clone(self), addr, rx }
    }

    /// Send a frame. Accounted to the sending node unless source and
    /// destination share a node (intra-node traffic is shared memory in
    /// NuPS and is not network traffic — the paper co-locates servers and
    /// workers in one process).
    pub fn send(&self, frame: Frame) {
        if frame.src.node != frame.dst.node {
            let m = self.metrics.node(frame.src.node);
            m.inc(|m| &m.msgs_sent);
            m.add(|m| &m.bytes_sent, frame.wire_bytes() as u64);
        }
        // A send can only fail if the receiver was dropped, which happens
        // during shutdown; losing the frame is then intended.
        let _ = self.mailboxes[self.slot(frame.dst)].sender.send(frame);
    }

    pub fn topology(&self) -> Topology {
        self.topology
    }

    pub fn metrics(&self) -> &Arc<ClusterMetrics> {
        &self.metrics
    }
}

/// The receiving half of one (node, port) plus the ability to send.
pub struct Endpoint {
    net: Arc<Network>,
    addr: Addr,
    rx: Receiver<Frame>,
}

impl Endpoint {
    #[inline]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Send `payload` from this endpoint.
    pub fn send(&self, dst: Addr, sent_at: SimTime, payload: bytes::Bytes) {
        self.net.send(Frame { src: self.addr, dst, sent_at, payload });
    }

    /// Block until a frame arrives. Returns `None` when every sender is
    /// gone (cluster shutdown).
    pub fn recv(&self) -> Option<Frame> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Frame> {
        match self.rx.try_recv() {
            Ok(f) => Some(f),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Receive with a real-time timeout (used by background loops so they
    /// can observe shutdown flags even when idle).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Frame, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;
    use bytes::Bytes;

    fn small_net() -> (Arc<Network>, Arc<ClusterMetrics>) {
        let topo = Topology::new(2, 1);
        let metrics = Arc::new(ClusterMetrics::new(2));
        (Network::new(topo, Arc::clone(&metrics)), metrics)
    }

    #[test]
    fn send_and_receive_across_nodes() {
        let (net, metrics) = small_net();
        let a = net.bind(Addr::server(NodeId(0)));
        let b = net.bind(Addr::server(NodeId(1)));
        a.send(b.addr(), SimTime(123), Bytes::from_static(b"hello"));
        let f = b.recv().unwrap();
        assert_eq!(&f.payload[..], b"hello");
        assert_eq!(f.src, a.addr());
        assert_eq!(f.sent_at, SimTime(123));
        let t = metrics.total();
        assert_eq!(t.msgs_sent, 1);
        assert_eq!(t.bytes_sent, (5 + WIRE_HEADER_BYTES) as u64);
    }

    #[test]
    fn intra_node_traffic_is_not_network_traffic() {
        let topo = Topology::new(1, 2);
        let metrics = Arc::new(ClusterMetrics::new(1));
        let net = Network::new(topo, Arc::clone(&metrics));
        let server = net.bind(Addr::server(NodeId(0)));
        let w0 = net.bind(Addr::worker(NodeId(0), 0));
        w0.send(server.addr(), SimTime::ZERO, Bytes::from_static(b"local"));
        assert!(server.recv().is_some());
        assert_eq!(metrics.total().msgs_sent, 0);
        assert_eq!(metrics.total().bytes_sent, 0);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let (net, _) = small_net();
        let _a = net.bind(Addr::server(NodeId(0)));
        let _b = net.bind(Addr::server(NodeId(0)));
    }

    #[test]
    fn try_recv_and_threaded_delivery() {
        let (net, _) = small_net();
        let a = net.bind(Addr::server(NodeId(0)));
        let b = net.bind(Addr::server(NodeId(1)));
        assert!(b.try_recv().is_none());
        let dst = b.addr();
        let t = std::thread::spawn(move || {
            for i in 0..100u8 {
                a.send(dst, SimTime::ZERO, Bytes::copy_from_slice(&[i]));
            }
        });
        let mut seen = 0;
        while seen < 100 {
            if let Some(f) = b.recv() {
                assert_eq!(f.payload[0], seen);
                seen += 1;
            }
        }
        t.join().unwrap();
    }
}
