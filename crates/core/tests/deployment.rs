//! Per-node deployments, fabric-agnostic: several `SingleNode` parameter
//! servers — the shape one OS process hosts in a multi-process cluster —
//! wired over one in-process channel fabric. Exercises the distributed
//! replica sync (`ReplicaDeltas` really crosses the fabric), the
//! quiescence barrier, and the model-assembly protocol, independent of
//! TCP (the socket transport has its own suite in `nups-net`).

use std::sync::Arc;
use std::time::Duration;

use nups_core::adaptive::AdaptiveConfig;
use nups_core::runtime::{Backend, Fabric, SimFabric};
use nups_core::system::{run_epoch, FinalizeOutcome};
use nups_core::{Deployment, NupsConfig, ParameterServer, PsWorker};
use nups_sim::metrics::ClusterMetrics;
use nups_sim::net::Network;
use nups_sim::time::SimDuration;
use nups_sim::topology::{NodeId, Topology};
use nups_sim::trace::Observability;

const N_KEYS: u64 = 48;
const VALUE_LEN: usize = 2;

fn cfg(topology: Topology) -> NupsConfig {
    NupsConfig::nups(topology, N_KEYS, VALUE_LEN)
        .with_replicated_keys(vec![0])
        .with_sync_period(SimDuration::from_millis(1))
}

/// An aggressive adaptive configuration: adapt at every merge with low
/// thresholds, so promotions and demotions happen constantly during the
/// short test workload.
fn adaptive_cfg(topology: Topology) -> NupsConfig {
    cfg(topology).with_adaptive(AdaptiveConfig {
        adapt_every: 1,
        promote_factor: 3.0,
        demote_factor: 1.0,
        max_replicated: 8,
        max_migrations_per_round: 4,
        sketch_bits: 10,
        decay: true,
    })
}

fn init(key: u64, v: &mut [f32]) {
    v.fill((key % 7) as f32);
}

fn drive(w: &mut impl PsWorker, global: u64) {
    for round in 0..30 {
        w.push(0, &[1.0; VALUE_LEN]);
        let k = 1 + (global * 5 + round) % (N_KEYS - 1);
        if round % 7 == 3 {
            w.localize(&[k]);
        }
        let mut out = vec![0.0f32; VALUE_LEN];
        w.pull(k, &mut out);
        w.push(k, &[1.0; VALUE_LEN]);
        w.charge_compute(50);
    }
}

/// A workload built to race the adaptive protocol: the hot pair rotates,
/// so every phase change triggers promotions of keys that localize
/// traffic is simultaneously relocating, plus batched pushes that can
/// chase a key mid-migration.
fn drive_adaptive(w: &mut impl PsWorker, global: u64) {
    let mut out = vec![0.0f32; VALUE_LEN];
    let mut batch_out = vec![0.0f32; 2 * VALUE_LEN];
    let batch_delta = vec![1.0f32; 2 * VALUE_LEN];
    for round in 0..60 {
        let phase = round / 15;
        let hot = 1 + (phase * 2) % (N_KEYS - 1);
        w.pull(hot, &mut out);
        w.push(hot, &[1.0; VALUE_LEN]);
        w.pull(hot + 1, &mut out);
        w.push(hot + 1, &[1.0; VALUE_LEN]);
        // Relocate the *next* phase's hot key: when its promotion comes,
        // the ownership transfer is often still in flight.
        if round % 15 == 10 {
            w.localize(&[1 + ((phase + 1) * 2) % (N_KEYS - 1)]);
        }
        // Batched accesses mixing a hot key with the long tail.
        let keys = [hot, 1 + (global * 7 + round) % (N_KEYS - 1)];
        w.pull_many(&keys, &mut batch_out);
        w.push_many(&keys, &batch_delta);
        w.charge_compute(50);
    }
}

fn drive_dispatch(w: &mut impl PsWorker, global: u64, adaptive: bool) {
    if adaptive {
        drive_adaptive(w, global);
    } else {
        drive(w, global);
    }
}

/// One shared channel fabric, one `SingleNode` server per node — the
/// multi-process topology inside one test process.
fn run_per_node_with(
    topology: Topology,
    cfg_for: fn(Topology) -> NupsConfig,
    adaptive: bool,
) -> Vec<Vec<u32>> {
    let metrics = Arc::new(ClusterMetrics::new(topology.n_nodes as usize));
    let network = Network::new(topology, Arc::clone(&metrics));
    let fabric: Arc<dyn Fabric> = Arc::new(SimFabric::new(network));

    let mut handles = Vec::new();
    for node in topology.nodes() {
        let fabric = Arc::clone(&fabric);
        let metrics = Arc::clone(&metrics);
        handles.push(std::thread::spawn(move || {
            let ps = ParameterServer::deploy(
                cfg_for(topology).with_backend(Backend::WallClock),
                fabric,
                metrics,
                Arc::new(Observability::new()),
                Deployment::SingleNode(node),
                init,
            );
            // Only the local node's workers exist in this "process".
            let mut workers = ps.workers();
            assert_eq!(workers.len(), topology.workers_per_node as usize);
            assert!(workers.iter().all(|w| w.id().node == node));
            run_epoch(&mut workers, |_, w| {
                let global = topology.worker_index(w.id()) as u64;
                drive_dispatch(w, global, adaptive);
            });
            drop(workers);
            let outcome = ps.finalize_distributed(Duration::from_secs(30));
            ps.shutdown();
            (node, outcome)
        }));
    }
    let mut model = None;
    for h in handles {
        let (node, outcome) = h.join().expect("node thread");
        match outcome {
            FinalizeOutcome::Model(m) => {
                assert_eq!(node, NodeId(0));
                model = Some(m);
            }
            FinalizeOutcome::Released => assert_ne!(node, NodeId(0)),
            FinalizeOutcome::TimedOut => panic!("node {node} timed out"),
        }
    }
    model
        .expect("coordinator model")
        .into_iter()
        .map(|v| v.into_iter().map(f32::to_bits).collect())
        .collect()
}

fn run_per_node(topology: Topology) -> Vec<Vec<u32>> {
    run_per_node_with(topology, cfg, false)
}

fn run_in_process_with(
    topology: Topology,
    cfg_for: fn(Topology) -> NupsConfig,
    adaptive: bool,
) -> Vec<Vec<u32>> {
    let ps = ParameterServer::new(cfg_for(topology), init);
    let mut workers = ps.workers();
    run_epoch(&mut workers, |i, w| drive_dispatch(w, i as u64, adaptive));
    drop(workers);
    ps.flush_replicas();
    let model =
        ps.read_all().into_iter().map(|v| v.into_iter().map(f32::to_bits).collect()).collect();
    ps.shutdown();
    model
}

fn run_in_process(topology: Topology) -> Vec<Vec<u32>> {
    run_in_process_with(topology, cfg, false)
}

#[test]
fn per_node_deployment_matches_in_process_bit_for_bit() {
    for topology in [Topology::new(2, 2), Topology::new(3, 1)] {
        let expected = run_in_process(topology);
        let got = run_per_node(topology);
        assert_eq!(got.len(), expected.len());
        let diverged = expected.iter().zip(&got).filter(|(a, b)| a != b).count();
        assert_eq!(diverged, 0, "per-node deployment diverged on {topology:?}");
    }
}

#[test]
fn adaptive_per_node_deployment_matches_in_process_bit_for_bit() {
    // The leader-driven epoch protocol and the in-process rendezvous path
    // make *different* adaptation decisions (wall-clock merge timing vs
    // deterministic gating), but both conserve every delta — so the final
    // models must still agree bit for bit.
    for topology in [Topology::new(2, 2), Topology::new(3, 2)] {
        let expected = run_in_process_with(topology, adaptive_cfg, true);
        let got = run_per_node_with(topology, adaptive_cfg, true);
        assert_eq!(got.len(), expected.len());
        let diverged = expected.iter().zip(&got).filter(|(a, b)| a != b).count();
        assert_eq!(diverged, 0, "adaptive per-node deployment diverged on {topology:?}");
    }
}

/// Even more migration churn than [`adaptive_cfg`]: demotions fire almost
/// as eagerly as promotions and the replica capacity is tight, so keys
/// cycle replicated → relocated → replicated while sync broadcasts for
/// their *previous* tenancy are still in flight.
fn churn_cfg(topology: Topology) -> NupsConfig {
    cfg(topology).with_adaptive(AdaptiveConfig {
        adapt_every: 1,
        promote_factor: 2.0,
        demote_factor: 1.5,
        max_replicated: 4,
        max_migrations_per_round: 8,
        sketch_bits: 10,
        decay: true,
    })
}

#[test]
fn adaptive_per_node_survives_migration_churn() {
    // Regression for two delta-conservation races: (1) a sync broadcast
    // drained under one replication era arriving after its key was
    // demoted — and possibly re-promoted — at the receiver (the era tag
    // must keep it out of the new tenancy's replica and conserve it once
    // at the home), and (2) a late pre-demotion broadcast racing a home's
    // finalize snapshot (the fence/drained-fin phase must order every
    // fold before the release). Both are timing-dependent, so run the
    // churn-heavy workload several times.
    let topology = Topology::new(3, 2);
    let expected = run_in_process_with(topology, churn_cfg, true);
    for round in 0..4 {
        let got = run_per_node_with(topology, churn_cfg, true);
        assert_eq!(got.len(), expected.len());
        let diverged = expected.iter().zip(&got).filter(|(a, b)| a != b).count();
        assert_eq!(diverged, 0, "round {round}: migration churn diverged on {topology:?}");
    }
}

#[test]
fn per_node_deployment_requires_wall_clock() {
    let topology = Topology::new(2, 1);
    let metrics = Arc::new(ClusterMetrics::new(2));
    let network = Network::new(topology, Arc::clone(&metrics));
    let fabric: Arc<dyn Fabric> = Arc::new(SimFabric::new(network));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Virtual backend: per-process virtual clocks cannot agree across
        // address spaces, so this must be rejected at construction.
        ParameterServer::deploy(
            cfg(topology),
            fabric,
            metrics,
            Arc::new(Observability::new()),
            Deployment::SingleNode(NodeId(0)),
            init,
        )
    }));
    assert!(err.is_err(), "virtual backend must be rejected for per-node deployments");
}

#[test]
fn single_node_cluster_finalizes_alone() {
    // Degenerate but legal: a "cluster" of one process. The coordinator
    // has no peers to wait for and assembles its own model.
    let topology = Topology::new(1, 2);
    let got = run_per_node(topology);
    let expected = run_in_process(topology);
    assert_eq!(got, expected);
}
