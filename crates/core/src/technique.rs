//! Per-key management-technique assignment (Section 3.2), now
//! epoch-versioned and adaptive.
//!
//! NuPS manages each key with one of two techniques: *replication* for hot
//! spots, *relocation* for the long tail. The paper decides the assignment
//! before training from dataset access statistics and keeps it immutable at
//! run time. This implementation keeps that mode (construct and never
//! mutate) but additionally supports **live migration**: the adaptive
//! technique manager ([`crate::adaptive`]) promotes keys to replication and
//! demotes them back while the system runs. Mutations happen only at
//! synchronization rendezvous points — every worker is parked at the gate —
//! so the hot-path read is an uncontended `RwLock` read (one reader-count
//! atomic per access via [`TechniqueMap::route`]; a deliberate, measured
//! step down from the old plain array read, paid even by static servers,
//! in exchange for safe live mutation) and each mutation batch bumps a
//! single `epoch` counter that observers can use to detect assignment
//! changes.
//!
//! Replica slots are allocated from a free list so a demoted key's slot is
//! reused by a later promotion instead of growing the replica sets without
//! bound.

use parking_lot::{Mutex, RwLock};
use rustc_hash::FxHashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::key::Key;

/// The management technique for one key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Technique {
    /// Lapse-style dynamic allocation: one owner at a time, asynchronous
    /// relocation, per-key sequential consistency.
    Relocated = 0,
    /// Eager replication on every node with time-based staleness bounds.
    Replicated = 1,
}

/// One key's routing decision, resolved under a single lock acquisition
/// ([`TechniqueMap::route`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyRoute {
    /// Serve from the node's replica set at this slot.
    Replicated(u32),
    /// Relocation-managed: resolve through the store.
    Relocated,
}

/// The mutable assignment state, guarded by the map's `RwLock`.
#[derive(Debug)]
struct TechInner {
    techniques: Vec<u8>,
    /// Replica slot of each key (`u32::MAX` when not replicated).
    replica_slot: Vec<u32>,
    /// Key held by each slot (`None` = free).
    slot_keys: Vec<Option<Key>>,
    /// Slots released by demotions, reused by later promotions (LIFO for
    /// determinism).
    free_slots: Vec<u32>,
}

/// Epoch-versioned key → technique table, plus a dense index for
/// replicated keys.
pub struct TechniqueMap {
    inner: RwLock<TechInner>,
    /// Bumped once per adaptation round that changed any assignment.
    epoch: AtomicU64,
    /// Keys mid-promotion: the home server must not start new relocations
    /// for them (a relocation racing the promotion take would strand the
    /// parameter value in a `Transfer` nobody installs).
    migrating: Mutex<FxHashSet<Key>>,
}

impl TechniqueMap {
    /// All keys relocated (a pure relocation PS; with relocation disabled at
    /// the server, a classic PS).
    pub fn all_relocated(n_keys: u64) -> TechniqueMap {
        Self::from_replicated_keys(n_keys, &[])
    }

    /// All keys replicated (a pure replication PS).
    pub fn all_replicated(n_keys: u64) -> TechniqueMap {
        let keys: Vec<Key> = (0..n_keys).collect();
        Self::from_replicated_keys(n_keys, &keys)
    }

    /// Replicate exactly `replicated` (deduplicated), relocate the rest.
    pub fn from_replicated_keys(n_keys: u64, replicated: &[Key]) -> TechniqueMap {
        let mut techniques = vec![Technique::Relocated as u8; n_keys as usize];
        let mut replica_slot = vec![u32::MAX; n_keys as usize];
        let mut slot_keys = Vec::with_capacity(replicated.len());
        for &k in replicated {
            assert!(k < n_keys, "replicated key {k} outside key space");
            if replica_slot[k as usize] == u32::MAX {
                replica_slot[k as usize] = slot_keys.len() as u32;
                techniques[k as usize] = Technique::Replicated as u8;
                slot_keys.push(Some(k));
            }
        }
        TechniqueMap {
            inner: RwLock::new(TechInner {
                techniques,
                replica_slot,
                slot_keys,
                free_slots: Vec::new(),
            }),
            epoch: AtomicU64::new(0),
            migrating: Mutex::new(FxHashSet::default()),
        }
    }

    #[inline]
    pub fn technique(&self, key: Key) -> Technique {
        if self.inner.read().techniques[key as usize] == Technique::Replicated as u8 {
            Technique::Replicated
        } else {
            Technique::Relocated
        }
    }

    /// The technique check and (for replicated keys) the replica-slot
    /// lookup under a single lock acquisition — the worker hot path uses
    /// this so one key access costs one atomic, not two (the paper's
    /// "one latch acquisition" point, Section 3.2).
    #[inline]
    pub fn route(&self, key: Key) -> KeyRoute {
        let inner = self.inner.read();
        if inner.techniques[key as usize] == Technique::Replicated as u8 {
            KeyRoute::Replicated(inner.replica_slot[key as usize])
        } else {
            KeyRoute::Relocated
        }
    }

    /// Dense replica slot of a replicated key.
    #[inline]
    pub fn replica_slot(&self, key: Key) -> Option<u32> {
        let s = self.inner.read().replica_slot[key as usize];
        (s != u32::MAX).then_some(s)
    }

    #[inline]
    pub fn is_replicated(&self, key: Key) -> bool {
        self.inner.read().techniques[key as usize] == Technique::Replicated as u8
    }

    /// Per-key replication flags under one lock acquisition (the
    /// adaptation scan reads every key; per-key `is_replicated` calls
    /// would take the lock `n_keys` times).
    pub fn replicated_flags(&self) -> Vec<bool> {
        self.inner.read().techniques.iter().map(|&t| t == Technique::Replicated as u8).collect()
    }

    /// Currently replicated keys, in slot order (freed slots skipped).
    pub fn replicated_keys(&self) -> Vec<Key> {
        self.inner.read().slot_keys.iter().filter_map(|k| *k).collect()
    }

    /// `(slot, key)` pairs of all live replica slots, in slot order.
    pub fn slot_entries(&self) -> Vec<(u32, Key)> {
        self.inner
            .read()
            .slot_keys
            .iter()
            .enumerate()
            .filter_map(|(s, k)| k.map(|k| (s as u32, k)))
            .collect()
    }

    pub fn n_replicated(&self) -> usize {
        self.inner.read().slot_keys.iter().filter(|k| k.is_some()).count()
    }

    pub fn n_keys(&self) -> u64 {
        self.inner.read().techniques.len() as u64
    }

    /// The assignment epoch: bumped once per adaptation round that migrated
    /// at least one key. A stable epoch across two reads guarantees no
    /// assignment changed in between.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub(crate) fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The slot the next [`TechniqueMap::promote`] will assign (topmost
    /// freed slot, else one past the end). Only the single-threaded
    /// migration coordinator allocates, so peek-then-promote is stable;
    /// it lets the caller install the replica value *before* publishing
    /// the slot, so no reader can ever observe a published slot that is
    /// not yet backed by storage.
    pub(crate) fn next_slot(&self) -> u32 {
        let inner = self.inner.read();
        match inner.free_slots.last() {
            Some(&s) => s,
            None => inner.slot_keys.len() as u32,
        }
    }

    /// Flip `key` to replication, allocating a replica slot (reusing a
    /// freed one when available). Returns the slot. Caller must install
    /// the key's value into every node's replica set *before* calling
    /// this (see [`TechniqueMap::next_slot`]).
    pub(crate) fn promote(&self, key: Key) -> u32 {
        let mut inner = self.inner.write();
        assert_eq!(
            inner.techniques[key as usize],
            Technique::Relocated as u8,
            "promote of already-replicated key {key}"
        );
        let slot = match inner.free_slots.pop() {
            Some(s) => s,
            None => {
                inner.slot_keys.push(None);
                (inner.slot_keys.len() - 1) as u32
            }
        };
        inner.slot_keys[slot as usize] = Some(key);
        inner.replica_slot[key as usize] = slot;
        inner.techniques[key as usize] = Technique::Replicated as u8;
        slot
    }

    /// Flip `key` to replication in the *leader-assigned* slot (per-node
    /// deployments, where every node installs the slot a
    /// [`crate::messages::Msg::AdaptPlan`] dictates instead of allocating
    /// locally). Removes the slot from the free list if it is there, or
    /// grows the slot table — with free holes — up to it; promotions of one
    /// plan can complete out of order, so the slot is not necessarily this
    /// node's own `next_slot`.
    pub(crate) fn promote_to_slot(&self, key: Key, slot: u32) {
        let mut inner = self.inner.write();
        assert_eq!(
            inner.techniques[key as usize],
            Technique::Relocated as u8,
            "promote of already-replicated key {key}"
        );
        let i = slot as usize;
        if i >= inner.slot_keys.len() {
            for hole in inner.slot_keys.len() as u32..slot {
                inner.free_slots.push(hole);
            }
            inner.slot_keys.resize(i + 1, None);
        } else if let Some(pos) = inner.free_slots.iter().rposition(|&s| s == slot) {
            inner.free_slots.remove(pos);
        }
        debug_assert_eq!(inner.slot_keys[i], None, "leader assigned an occupied slot {slot}");
        inner.slot_keys[i] = Some(key);
        inner.replica_slot[key as usize] = slot;
        inner.techniques[key as usize] = Technique::Replicated as u8;
    }

    /// Simulate the slot assignment the leader's plan dictates: demotions
    /// free their slots in plan order (LIFO, exactly like
    /// [`TechniqueMap::demote`]), then each promotion pops a free slot or
    /// appends. Read-only — the actual flips happen when the plan applies.
    pub(crate) fn plan_slots(&self, demotions: &[Key], promotions: &[Key]) -> Vec<(Key, u32)> {
        let inner = self.inner.read();
        let mut free = inner.free_slots.clone();
        for &k in demotions {
            let slot = inner.replica_slot[k as usize];
            debug_assert_ne!(slot, u32::MAX, "planned demotion of non-replicated key {k}");
            free.push(slot);
        }
        let mut len = inner.slot_keys.len() as u32;
        promotions
            .iter()
            .map(|&k| {
                let slot = free.pop().unwrap_or_else(|| {
                    let s = len;
                    len += 1;
                    s
                });
                (k, slot)
            })
            .collect()
    }

    /// Flip `key` back to relocation, freeing its replica slot. Returns the
    /// freed slot. Caller must have collapsed the replicas into a single
    /// owned store entry first.
    pub(crate) fn demote(&self, key: Key) -> u32 {
        let mut inner = self.inner.write();
        let slot = inner.replica_slot[key as usize];
        assert_ne!(slot, u32::MAX, "demote of non-replicated key {key}");
        inner.replica_slot[key as usize] = u32::MAX;
        inner.techniques[key as usize] = Technique::Relocated as u8;
        inner.slot_keys[slot as usize] = None;
        inner.free_slots.push(slot);
        slot
    }

    /// Mark `keys` as mid-promotion (blocks new relocations at the home
    /// server until [`TechniqueMap::end_migrations`]).
    pub(crate) fn begin_migrations(&self, keys: &[Key]) {
        self.migrating.lock().extend(keys.iter().copied());
    }

    pub(crate) fn end_migrations(&self) {
        self.migrating.lock().clear();
    }

    /// Per-key migration fence (per-node deployments, where promotions
    /// complete asynchronously and one at a time rather than under a
    /// single rendezvous): block new relocations of `key` until
    /// [`TechniqueMap::unfence_key`].
    pub(crate) fn fence_key(&self, key: Key) {
        self.migrating.lock().insert(key);
    }

    pub(crate) fn unfence_key(&self, key: Key) {
        self.migrating.lock().remove(&key);
    }

    /// True when the home server must drop a localize request for `key`:
    /// the key is replication-managed, or a promotion is in progress and a
    /// new relocation would race the promotion take.
    pub fn localize_blocked(&self, key: Key) -> bool {
        self.is_replicated(key) || self.migrating.lock().contains(&key)
    }
}

/// Decide which keys to replicate from access-frequency statistics.
///
/// The paper's *untuned heuristic* (Section 5.1): replicate a key if its
/// access frequency exceeds `100 ×` the mean access frequency. The
/// experiments of Section 5.6 additionally sweep the *number* of replicated
/// keys by factors of the heuristic's choice, implemented here as
/// [`top_k_by_frequency`].
pub fn heuristic_replicated_keys(frequencies: &[u64]) -> Vec<Key> {
    let n = frequencies.len();
    if n == 0 {
        return Vec::new();
    }
    let total: u128 = frequencies.iter().map(|&f| f as u128).sum();
    let threshold = 100.0 * (total as f64 / n as f64);
    let mut keys: Vec<Key> = frequencies
        .iter()
        .enumerate()
        .filter(|(_, &f)| f as f64 > threshold)
        .map(|(k, _)| k as Key)
        .collect();
    // Deterministic order: hottest first.
    keys.sort_by_key(|&k| std::cmp::Reverse(frequencies[k as usize]));
    keys
}

/// The `k` most frequently accessed keys (hottest first). Ties break by key
/// for determinism.
pub fn top_k_by_frequency(frequencies: &[u64], k: usize) -> Vec<Key> {
    let mut keys: Vec<Key> = (0..frequencies.len() as u64).collect();
    keys.sort_by_key(|&key| (std::cmp::Reverse(frequencies[key as usize]), key));
    keys.truncate(k);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_replicated_keys_builds_dense_slots() {
        let tm = TechniqueMap::from_replicated_keys(10, &[7, 2, 7]);
        assert_eq!(tm.n_replicated(), 2);
        assert_eq!(tm.technique(7), Technique::Replicated);
        assert_eq!(tm.technique(2), Technique::Replicated);
        assert_eq!(tm.technique(0), Technique::Relocated);
        assert_eq!(tm.replica_slot(7), Some(0));
        assert_eq!(tm.replica_slot(2), Some(1));
        assert_eq!(tm.replica_slot(0), None);
        assert_eq!(tm.replicated_keys(), vec![7, 2]);
        assert_eq!(tm.slot_entries(), vec![(0, 7), (1, 2)]);
    }

    #[test]
    fn all_relocated_and_all_replicated() {
        let a = TechniqueMap::all_relocated(5);
        assert_eq!(a.n_replicated(), 0);
        let b = TechniqueMap::all_replicated(5);
        assert_eq!(b.n_replicated(), 5);
        assert!(b.is_replicated(4));
    }

    #[test]
    fn promote_and_demote_flip_assignment_and_reuse_slots() {
        let tm = TechniqueMap::from_replicated_keys(10, &[3, 4]);
        assert_eq!(tm.epoch(), 0);
        let s = tm.promote(7);
        assert_eq!(s, 2, "fresh slot appended");
        assert!(tm.is_replicated(7));
        assert_eq!(tm.replica_slot(7), Some(2));

        // Demote 3: slot 0 freed, key relocated again.
        assert_eq!(tm.demote(3), 0);
        assert!(!tm.is_replicated(3));
        assert_eq!(tm.replica_slot(3), None);
        assert_eq!(tm.n_replicated(), 2);
        assert_eq!(tm.replicated_keys(), vec![4, 7], "slot order, hole skipped");

        // Next promotion reuses the freed slot.
        assert_eq!(tm.promote(9), 0);
        assert_eq!(tm.slot_entries(), vec![(0, 9), (1, 4), (2, 7)]);
        tm.bump_epoch();
        assert_eq!(tm.epoch(), 1);
    }

    #[test]
    fn migration_guard_blocks_localize() {
        let tm = TechniqueMap::from_replicated_keys(10, &[1]);
        assert!(tm.localize_blocked(1), "replicated keys never relocate");
        assert!(!tm.localize_blocked(5));
        tm.begin_migrations(&[5, 6]);
        assert!(tm.localize_blocked(5));
        assert!(tm.localize_blocked(6));
        assert!(!tm.localize_blocked(7));
        tm.end_migrations();
        assert!(!tm.localize_blocked(5));
    }

    #[test]
    fn promote_to_slot_honors_leader_assignment() {
        let tm = TechniqueMap::from_replicated_keys(10, &[3, 4]);
        // Free slot 0 by demoting, then install a key into it by plan.
        tm.demote(3);
        tm.promote_to_slot(7, 0);
        assert_eq!(tm.replica_slot(7), Some(0));
        // An out-of-order completion may target a slot past the end: the
        // skipped slots become free holes a later completion fills.
        tm.promote_to_slot(8, 4);
        assert_eq!(tm.replica_slot(8), Some(4));
        assert_eq!(tm.next_slot(), 3, "hole slots are free for reuse");
        tm.promote_to_slot(9, 3);
        tm.promote_to_slot(5, 2);
        assert_eq!(tm.slot_entries(), vec![(0, 7), (1, 4), (2, 5), (3, 9), (4, 8)]);
    }

    #[test]
    fn plan_slots_mirrors_demote_then_promote() {
        let tm = TechniqueMap::from_replicated_keys(10, &[3, 4, 5]);
        let plan = tm.plan_slots(&[4, 3], &[7, 8, 9]);
        // Demotions free 1 then 0 (LIFO pop order 0, 1); third promotion
        // appends past the end.
        assert_eq!(plan, vec![(7, 0), (8, 1), (9, 3)]);
        // Applying the same operations step by step agrees.
        tm.demote(4);
        tm.demote(3);
        for (k, s) in plan {
            tm.promote_to_slot(k, s);
            assert_eq!(tm.replica_slot(k), Some(s));
        }
    }

    #[test]
    fn per_key_fence_blocks_localize() {
        let tm = TechniqueMap::from_replicated_keys(10, &[]);
        tm.fence_key(5);
        assert!(tm.localize_blocked(5));
        assert!(!tm.localize_blocked(6));
        tm.unfence_key(5);
        assert!(!tm.localize_blocked(5));
    }

    #[test]
    #[should_panic(expected = "promote of already-replicated")]
    fn double_promote_panics() {
        let tm = TechniqueMap::from_replicated_keys(4, &[1]);
        tm.promote(1);
    }

    #[test]
    fn heuristic_picks_hot_spots_only() {
        // 1000 cold keys at frequency 1, two hot keys far above 100x mean.
        let mut freqs = vec![1u64; 1000];
        freqs[3] = 100_000;
        freqs[500] = 50_000;
        // Mean ~ 151; threshold ~ 15_100.
        let hot = heuristic_replicated_keys(&freqs);
        assert_eq!(hot, vec![3, 500]);
    }

    #[test]
    fn heuristic_no_hot_spots_on_uniform_access() {
        let freqs = vec![10u64; 100];
        assert!(heuristic_replicated_keys(&freqs).is_empty());
    }

    #[test]
    fn top_k_orders_by_frequency_then_key() {
        let freqs = vec![5, 9, 9, 1, 7];
        assert_eq!(top_k_by_frequency(&freqs, 3), vec![1, 2, 4]);
        assert_eq!(top_k_by_frequency(&freqs, 0), Vec::<Key>::new());
        assert_eq!(top_k_by_frequency(&freqs, 99).len(), 5);
    }

    #[test]
    fn heuristic_empty_input() {
        assert!(heuristic_replicated_keys(&[]).is_empty());
    }
}
