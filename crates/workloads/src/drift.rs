//! A drifting-hotspot access workload.
//!
//! The paper chooses each key's management technique statically from
//! pre-training statistics. This workload is built to break that
//! assumption: accesses are heavily skewed toward a small hot set, but the
//! hot set *rotates* between phases, so a static assignment measured on
//! phase 0 is maximally wrong from phase 1 on. Hot sets of different
//! phases are disjoint, and hot keys are spread across the whole key range
//! (hence across every node's home range under range partitioning).
//!
//! Generation is fully deterministic: worker streams derive from
//! `seed`, the phase, and the worker index only.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`DriftingHotspots`] workload.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Key universe `[0, n_keys)`.
    pub n_keys: u64,
    /// Hot keys per phase.
    pub hot_keys: usize,
    /// Probability that an access goes to the current hot set.
    pub hot_share: f64,
    /// Number of phases (the hot set rotates at each phase boundary).
    pub phases: usize,
    /// Minibatches per worker per phase.
    pub batches_per_phase: usize,
    /// Keys per minibatch.
    pub batch: usize,
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            n_keys: 4096,
            hot_keys: 8,
            hot_share: 0.9,
            phases: 3,
            batches_per_phase: 200,
            batch: 8,
            seed: 0xD81F7,
        }
    }
}

/// Deterministic drifting-hotspot access-stream generator.
#[derive(Debug, Clone, Copy)]
pub struct DriftingHotspots {
    cfg: DriftConfig,
}

impl DriftingHotspots {
    pub fn new(cfg: DriftConfig) -> DriftingHotspots {
        assert!(cfg.n_keys >= (cfg.hot_keys * cfg.phases) as u64, "hot sets must fit disjointly");
        assert!(cfg.hot_keys > 0 && cfg.batch > 0 && cfg.phases > 0);
        assert!((0.0..=1.0).contains(&cfg.hot_share));
        DriftingHotspots { cfg }
    }

    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// The hot set of `phase`: disjoint across phases, striped over the
    /// whole key range so every node's home range holds hot keys.
    pub fn hot_set(&self, phase: usize) -> Vec<u64> {
        let total_hot = (self.cfg.hot_keys * self.cfg.phases) as u64;
        let stride = (self.cfg.n_keys / total_hot).max(1);
        (0..self.cfg.hot_keys as u64)
            .map(|j| ((j * self.cfg.phases as u64 + phase as u64) * stride) % self.cfg.n_keys)
            .collect()
    }

    /// Per-key access frequencies of one phase as seen cluster-wide (for
    /// static technique assignment from "pre-training statistics" — the
    /// expected counts, which is exactly what a profiling pass measures).
    pub fn phase_frequencies(&self, phase: usize, n_workers: usize) -> Vec<u64> {
        let mut freqs = vec![0u64; self.cfg.n_keys as usize];
        let accesses = (self.cfg.batches_per_phase * self.cfg.batch * n_workers) as f64;
        let hot = self.hot_set(phase);
        let per_hot = accesses * self.cfg.hot_share / hot.len() as f64;
        for &k in &hot {
            freqs[k as usize] += per_hot.round() as u64;
        }
        let cold = accesses * (1.0 - self.cfg.hot_share) / self.cfg.n_keys as f64;
        for f in freqs.iter_mut() {
            *f += cold.round().max(1.0) as u64;
        }
        freqs
    }

    /// The minibatch streams of one worker for one phase.
    pub fn worker_batches(&self, phase: usize, worker: usize) -> Vec<Vec<u64>> {
        let hot = self.hot_set(phase);
        let mut rng = SmallRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((phase as u64) << 32)
                .wrapping_add(worker as u64),
        );
        (0..self.cfg.batches_per_phase)
            .map(|_| {
                (0..self.cfg.batch)
                    .map(|_| {
                        if rng.gen_range(0.0..1.0) < self.cfg.hot_share {
                            hot[rng.gen_range(0..hot.len())]
                        } else {
                            rng.gen_range(0..self.cfg.n_keys)
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> DriftingHotspots {
        DriftingHotspots::new(DriftConfig::default())
    }

    #[test]
    fn hot_sets_are_disjoint_across_phases() {
        let g = gen();
        let mut all = std::collections::HashSet::new();
        for p in 0..g.config().phases {
            let hot = g.hot_set(p);
            assert_eq!(hot.len(), g.config().hot_keys);
            for k in hot {
                assert!(k < g.config().n_keys);
                assert!(all.insert(k), "key {k} hot in two phases (phase {p})");
            }
        }
    }

    #[test]
    fn hot_sets_spread_over_the_key_range() {
        let g = gen();
        let n = g.config().n_keys;
        for p in 0..g.config().phases {
            let hot = g.hot_set(p);
            assert!(hot.iter().any(|&k| k < n / 2), "no hot key in the lower half (phase {p})");
            assert!(hot.iter().any(|&k| k >= n / 2), "no hot key in the upper half (phase {p})");
        }
    }

    #[test]
    fn streams_are_deterministic_and_skewed() {
        let g = gen();
        let a = g.worker_batches(1, 0);
        let b = g.worker_batches(1, 0);
        assert_eq!(a, b, "same (phase, worker) must replay identically");
        assert_ne!(a, g.worker_batches(1, 1), "workers draw different streams");
        assert_ne!(a, g.worker_batches(2, 0), "phases draw different streams");

        let hot: std::collections::HashSet<u64> = g.hot_set(1).into_iter().collect();
        let total: usize = a.iter().map(|b| b.len()).sum();
        let hot_hits: usize = a.iter().flat_map(|b| b.iter()).filter(|k| hot.contains(k)).count();
        let share = hot_hits as f64 / total as f64;
        assert!(share > 0.8, "hot share {share} too low for hot_share=0.9");
    }

    #[test]
    fn phase_frequencies_rank_hot_keys_first() {
        let g = gen();
        let freqs = g.phase_frequencies(0, 4);
        let hot = g.hot_set(0);
        let max_cold = freqs
            .iter()
            .enumerate()
            .filter(|(k, _)| !hot.contains(&(*k as u64)))
            .map(|(_, &f)| f)
            .max()
            .unwrap();
        for &k in &hot {
            assert!(freqs[k as usize] > 10 * max_cold, "hot key {k} not dominant");
        }
    }
}
