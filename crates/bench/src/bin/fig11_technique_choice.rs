//! Figure 11 + Table 3: the choice of management technique. Sweeps the
//! number of replicated keys by factors 0, 1/64 … 256 of the untuned
//! heuristic's choice and reports epoch run time, model quality after one
//! epoch, the achieved synchronization frequency (which collapses when
//! replica volume outgrows the network), and Table 3's share columns.
//!
//! Usage: cargo run --release -p nups-bench --bin fig11_technique_choice -- \
//!   [--task kge|wv|mf] [--nodes 4] [--workers 2] [--scale small]

use nups_bench::report::{fmt_duration, fmt_quality, print_table};
use nups_bench::runner::replicated_keys_for;
use nups_bench::variant::VariantKind;
use nups_bench::{build_task, run, Args, RunConfig, VariantSpec};

const FACTORS: [f64; 9] = [0.0, 1.0 / 64.0, 1.0 / 16.0, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0];

fn main() {
    let args = Args::parse();
    let topology = args.topology();
    let epochs = args.epochs(1); // Figure 11 measures one epoch

    for kind in args.tasks() {
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);
        let task = factory(topology);
        let cfg = RunConfig::new(topology, epochs);

        println!("\n##### Figure 11 / Table 3 — technique choice on {} #####", kind.name());
        let mut rows = Vec::new();
        let mut quality_no_replication = None;
        for factor in FACTORS {
            let spec = VariantSpec::nups_replication_factor(factor);
            let VariantKind::Nups(v) = &spec.kind else { unreachable!() };
            let planned = replicated_keys_for(task.as_ref(), v).len();
            eprintln!("[fig11] {} / factor {factor} ({planned} keys)", kind.name());
            let r = run(&factory, &spec, &cfg);
            let q = r.final_quality();
            if factor == 0.0 {
                quality_no_replication = q;
            }
            // Table 3 columns.
            let key_share = 100.0 * r.replicated_keys as f64 / task.n_keys() as f64;
            let replica_mb = r.replicated_keys as f64 * task.value_len() as f64 * 4.0 / 1e6;
            let total_accesses = r.metrics.local_pulls
                + r.metrics.remote_pulls
                + r.metrics.local_pushes
                + r.metrics.remote_pushes;
            let replica_accesses = r.metrics.replica_pulls + r.metrics.replica_pushes;
            let access_share = if total_accesses > 0 {
                100.0 * replica_accesses as f64 / total_accesses as f64
            } else {
                0.0
            };
            // Mark runs whose quality is not within 10% of the
            // no-replication quality (the paper's red cells).
            let degraded = match (q, quality_no_replication) {
                (Some(q), Some(q0)) => {
                    let within_10pct = match task.quality_direction() {
                        nups_ml::task::QualityDirection::HigherIsBetter => q >= 0.9 * q0,
                        nups_ml::task::QualityDirection::LowerIsBetter => q <= 1.1 * q0,
                    };
                    !within_10pct
                }
                _ => false,
            };
            rows.push(vec![
                format!("{factor}x ({} keys)", r.replicated_keys),
                fmt_duration(r.epoch_time()),
                format!("{}{}", fmt_quality(q), if degraded { " !" } else { "" }),
                r.sync_frequency.map(|f| format!("{f:.2}/s")).unwrap_or_else(|| "—".into()),
                format!("{key_share:.4}%"),
                format!("{replica_mb:.2}"),
                format!("{access_share:.0}%"),
            ]);
        }
        print_table(
            &format!(
                "Figure 11 / Table 3 — {} ('!' = quality not within 10% of no-replication)",
                kind.name()
            ),
            &[
                "replication",
                "epoch time",
                "quality",
                "achieved sync",
                "keys repl.",
                "replica MB",
                "repl. access",
            ],
            &rows,
        );
    }
}
