//! Quickstart: a 2-node NuPS cluster with one replicated hot key, direct
//! access through pull/push, asynchronous relocation via localize, and the
//! sampling API.
//!
//! Run with: cargo run --release --example quickstart

use nups::core::{ConformityLevel, DistributionKind, NupsConfig, ParameterServer, PsWorker};
use nups::sim::topology::{NodeId, Topology, WorkerId};

fn main() {
    // A simulated cluster: 2 nodes × 2 workers, 1000 parameters of
    // dimension 8. Key 0 is a hot spot → manage it by replication;
    // everything else is relocated on demand.
    let config = NupsConfig::nups(Topology::new(2, 2), 1000, 8).with_replicated_keys(vec![0]);
    let ps = ParameterServer::new(config, |key, value| {
        value.fill(key as f32 * 0.01); // deterministic initialization
    });

    // Register a sampling distribution over keys [500, 1000) at the
    // BOUNDED conformity level; the sampling manager picks pooled sample
    // reuse (U=16) for it.
    let dist =
        ps.register_distribution(500, 500, DistributionKind::Uniform, ConformityLevel::Bounded);

    // One worker handle per worker thread; here we drive a single worker
    // inline for brevity (see kge_training.rs for the threaded pattern).
    let mut worker = ps.worker(WorkerId { node: NodeId(0), local: 0 });

    // Direct access: pull a value, push an additive delta.
    let mut value = vec![0.0f32; 8];
    worker.pull(42, &mut value);
    println!("key 42 before: {:?}", &value[..3]);
    worker.push(42, &[1.0; 8]);
    worker.pull(42, &mut value);
    println!("key 42 after:  {:?}", &value[..3]);

    // Relocation: tell the PS we are about to work on keys 700..710; the
    // transfers happen asynchronously and subsequent accesses are local.
    let keys: Vec<u64> = (700..710).collect();
    worker.localize(&keys);
    for &k in &keys {
        worker.pull(k, &mut value);
    }

    // Sampling access: PrepareSample / PullSample with partial pulls.
    let mut handle = worker.prepare_sample(dist, 8);
    let first = worker.pull_sample(&mut handle, 3);
    let rest = worker.pull_sample(&mut handle, 5);
    println!(
        "sampled keys: {:?} then {:?}",
        first.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        rest.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );

    // The hot key is replicated: reads on the other node see pushed
    // updates after a replica synchronization.
    worker.push(0, &[5.0; 8]);
    ps.flush_replicas();
    let mut other = ps.worker(WorkerId { node: NodeId(1), local: 0 });
    other.pull(0, &mut value);
    println!("replicated key 0 on node 1: {:?}", &value[..3]);

    // Virtual-time and traffic accounting for everything we just did.
    println!("virtual time: {}", ps.virtual_time());
    let m = ps.metrics();
    println!(
        "local pulls: {}, remote pulls: {}, relocations: {}, bytes sent: {}",
        m.local_pulls, m.remote_pulls, m.relocations, m.bytes_sent
    );

    drop((worker, other));
    ps.shutdown();
}
