//! The NuPS worker: multi-technique access paths plus the sampling manager
//! front-end.
//!
//! A worker resolves each access with one technique check (a lock-free
//! array read) followed by a single latch acquisition (Section 3.2):
//!
//! * replicated key → the node's replica set, through shared memory;
//! * relocated key, owned locally → the store, through shared memory;
//! * relocated key, in flight to this node → block until the transfer
//!   installs (a *relocation conflict*, priced as the residual transfer
//!   wait);
//! * relocated key, elsewhere → a synchronous remote round trip.
//!
//! Multi-key access is *batched*: `pull_many`/`push_many` resolve the
//! shared-memory subset per key and coalesce the remote remainder into one
//! request per destination node ([`Msg::PullBatchReq`]/
//! [`Msg::PushBatchReq`]), so a skewed minibatch pays one round trip per
//! node instead of one per key, and per-message framing amortizes across
//! the batch entries. `localize` likewise coalesces its relocation intents
//! into one [`Msg::LocalizeBatchReq`] per home node.
//!
//! All remote waiting is charged to the worker's runtime clock through the
//! [`crate::runtime::Pricing`] hooks, scaled by the congestion multiplier
//! when replica synchronization is saturating the network (Section 5.6).
//! On the virtual backend the charge *is* the wait; on the wall-clock
//! backend pricing is free and the blocking receive itself takes the real
//! time.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use nups_sim::codec::WireEncode;
use nups_sim::metrics::Metrics;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::{Addr, NodeId, WorkerId};

use crate::api::PsWorker;
use crate::key::Key;
use crate::messages::{KeyUpdate, Msg};
use crate::node::{NodeState, Shared};
use crate::runtime::{Port, Pricing, RuntimeClock};
use crate::sampling::reuse::PoolSequence;
use crate::sampling::scheme::SamplingScheme;
use crate::sampling::{DistId, Distribution, SampleHandle};
use crate::server::group_by_node;
use crate::store::LocalAccess;
use crate::technique::{KeyRoute, Technique};
use crate::value::add_assign;

/// Per-distribution sampler state held by one worker.
enum SamplerState {
    Independent,
    Pool(PoolSequence),
    Local,
}

pub struct NupsWorker {
    id: WorkerId,
    shared: Arc<Shared>,
    node: Arc<NodeState>,
    endpoint: Box<dyn Port>,
    clock: Box<dyn RuntimeClock>,
    rng: SmallRng,
    dists: Vec<Arc<(Distribution, SamplingScheme)>>,
    samplers: Vec<SamplerState>,
}

impl NupsWorker {
    pub(crate) fn new(
        id: WorkerId,
        shared: Arc<Shared>,
        endpoint: Box<dyn Port>,
        clock: Box<dyn RuntimeClock>,
        seed: u64,
    ) -> NupsWorker {
        let node = Arc::clone(&shared.nodes[id.node.index()]);
        let dists: Vec<_> = shared.dists.lock().clone();
        let samplers = dists
            .iter()
            .map(|d| match d.1 {
                SamplingScheme::Independent | SamplingScheme::Manual => SamplerState::Independent,
                SamplingScheme::Reuse(p) | SamplingScheme::ReuseWithPostponing(p) => {
                    SamplerState::Pool(PoolSequence::new(p.pool_size, p.use_frequency))
                }
                SamplingScheme::Local => SamplerState::Local,
            })
            .collect();
        NupsWorker {
            id,
            shared,
            node,
            endpoint,
            clock,
            rng: SmallRng::seed_from_u64(seed),
            dists,
            samplers,
        }
    }

    pub fn id(&self) -> WorkerId {
        self.id
    }

    #[inline]
    fn metrics(&self) -> &Metrics {
        self.shared.metrics.node(self.id.node)
    }

    /// The runtime's pricing hooks: the cost model on the virtual backend,
    /// free of charge on the wall-clock backend.
    #[inline]
    fn pricing(&self) -> &dyn Pricing {
        self.shared.runtime.pricing()
    }

    /// Congestion multiplier on remote traffic: relocation messages compete
    /// with replica synchronization for the network (Section 5.6).
    #[inline]
    fn congestion(&self) -> f64 {
        1.0 + self.shared.gate.busy_fraction()
    }

    #[inline]
    fn charge_shared_memory(&mut self) {
        let c = self.pricing().shared_memory_access(4 * self.shared.value_len);
        self.clock.advance(c);
    }

    fn charge_remote(&mut self, request_bytes: usize, response_bytes: usize, hops: u8) {
        // `hops` counts all messages in the chain including the response;
        // intermediate forwards carry the request payload.
        let hops = hops.max(2) as u64;
        let cost = self.pricing().message(request_bytes) * (hops - 1)
            + self.pricing().message(response_bytes);
        self.clock.advance(cost * self.congestion());
    }

    /// Price the tail of a remote chain whose request was already charged
    /// at send time: the response message plus any intermediate forwards
    /// its hop count records (`hops` counts every message in the chain,
    /// request and response included). The requester never saw the
    /// intermediates, so they are priced as a request carrying exactly the
    /// answered subset — the closest reconstruction available (an actual
    /// forward may have carried more entries before splitting further).
    fn charge_chain_tail(
        &mut self,
        forwarded_request_bytes: usize,
        response_bytes: usize,
        hops: u8,
    ) {
        let intermediates = (hops.max(2) - 2) as u64;
        let cost = self.pricing().message(forwarded_request_bytes) * intermediates
            + self.pricing().message(response_bytes);
        self.clock.advance(cost * self.congestion());
    }

    /// Charge the residual wait for a value that arrived by relocation:
    /// advance to its virtual availability, with each access's wait capped
    /// at one full relocation on our own timeline (the stamp comes from
    /// the *initiator's* clock, which may be far ahead). An access that
    /// waited is counted as a relocation conflict — the *virtual* notion
    /// (the access happened before the transfer's virtual completion),
    /// which is identical on both sides of the real-time install race and
    /// therefore reproducible.
    fn charge_install_wait(&mut self, available_at: SimTime) {
        if available_at > self.clock.now() {
            let cap = self.relocation_estimate();
            self.clock.advance_to(available_at.min(cap));
            self.metrics().inc(|m| &m.relocation_conflicts);
        }
    }

    /// Estimated completion of a relocation initiated now: the 3-message
    /// Lapse protocol, two small messages plus the value transfer.
    fn relocation_estimate(&self) -> SimTime {
        let c = self.pricing();
        let d = c.message(16) + c.message(16) + c.message(self.shared.value_bytes());
        self.clock.now() + d * self.congestion()
    }

    /// Send a request and block for its reply, pricing the round trip.
    fn remote_roundtrip(&mut self, dst: NodeId, msg: &Msg) -> Msg {
        let request_bytes = msg.encoded_len();
        self.endpoint.send(Addr::server(dst), self.clock.now(), msg.to_bytes());
        let frame = self.endpoint.recv().expect("server disappeared during round trip");
        // Price the encoded payload; `CostModel::message` adds the framing
        // overhead itself.
        let response_bytes = frame.payload.len();
        let mut payload = frame.payload;
        let resp = Msg::decode(&mut payload).expect("undecodable reply");
        let hops = match &resp {
            Msg::PullResp { hops, .. } | Msg::PushAck { hops, .. } => *hops,
            other => panic!("unexpected reply to worker: {other:?}"),
        };
        self.charge_remote(request_bytes, response_bytes, hops);
        resp
    }

    /// Serve one replicated-key pull from the node's replica set (the
    /// slot comes from the same [`KeyRoute`] lookup as the technique
    /// check — one lock acquisition per access). `false` when the slot no
    /// longer holds `key`: a distributed demotion sealed it between the
    /// route lookup and the access, and the route flip lands as soon as
    /// the server finishes the same plan step — the caller re-routes.
    fn pull_replicated(&mut self, slot: u32, key: Key, out: &mut [f32]) -> bool {
        if !self.node.replicas.pull(slot, key, out) {
            return false;
        }
        let m = self.metrics();
        m.inc(|m| &m.replica_pulls);
        m.inc(|m| &m.local_pulls);
        self.charge_shared_memory();
        true
    }

    /// Absorb one replicated-key push into the node's replica set; same
    /// tenancy contract as [`NupsWorker::pull_replicated`].
    fn push_replicated(&mut self, slot: u32, key: Key, delta: &[f32]) -> bool {
        if !self.node.replicas.push(slot, key, delta) {
            return false;
        }
        let m = self.metrics();
        m.inc(|m| &m.replica_pushes);
        m.inc(|m| &m.local_pushes);
        self.charge_shared_memory();
        true
    }

    /// One relocated-key access through shared memory: run `apply` on the
    /// value if the key is (or, after blocking on an in-flight transfer,
    /// becomes) local — charging the install wait plus the shared-memory
    /// copy and counting `counter` — or return the destination a remote
    /// request should go to. When the access blocked, the charge uses the
    /// *installed* entry's stamp, not the one seen before blocking: the
    /// key may have been re-relocated while this worker waited. Both the
    /// single-key and the batched paths price local access through here.
    fn relocated_local_or_dst(
        &mut self,
        key: Key,
        counter: fn(&Metrics) -> &std::sync::atomic::AtomicU64,
        mut apply: impl FnMut(&mut Vec<f32>),
    ) -> Option<NodeId> {
        let served_at = match self.node.store.with_local(key, &mut apply) {
            LocalAccess::Done((), available_at) => available_at,
            LocalAccess::InFlight(_) => match self.node.store.wait_local(key, &mut apply) {
                Some(((), available_at)) => available_at,
                None => return Some(self.shared.keyspace.home(key)),
            },
            LocalAccess::Remote(hint) => {
                return Some(hint.unwrap_or_else(|| self.shared.keyspace.home(key)));
            }
        };
        self.metrics().add(counter, 1);
        self.charge_install_wait(served_at);
        self.charge_shared_memory();
        None
    }

    fn pull_relocated(&mut self, key: Key, out: &mut [f32]) {
        if let Some(dst) =
            self.relocated_local_or_dst(key, |m| &m.local_pulls, |v| out.copy_from_slice(v))
        {
            self.remote_pull(key, out, Some(dst));
        }
    }

    fn remote_pull(&mut self, key: Key, out: &mut [f32], hint: Option<NodeId>) {
        self.metrics().inc(|m| &m.remote_pulls);
        let dst = hint.unwrap_or_else(|| self.shared.keyspace.home(key));
        let req =
            Msg::PullReq { key, reply_to: Addr::worker(self.id.node, self.id.local), hops: 1 };
        match self.remote_roundtrip(dst, &req) {
            Msg::PullResp { key: k, value, .. } => {
                debug_assert_eq!(k, key);
                out.copy_from_slice(&value);
            }
            other => panic!("expected PullResp, got {other:?}"),
        }
    }

    fn push_relocated(&mut self, key: Key, delta: &[f32]) {
        if let Some(dst) =
            self.relocated_local_or_dst(key, |m| &m.local_pushes, |v| add_assign(v, delta))
        {
            self.remote_push(key, delta, Some(dst));
        }
    }

    fn remote_push(&mut self, key: Key, delta: &[f32], hint: Option<NodeId>) {
        self.metrics().inc(|m| &m.remote_pushes);
        let dst = hint.unwrap_or_else(|| self.shared.keyspace.home(key));
        let req = Msg::PushReq {
            key,
            delta: delta.to_vec(),
            reply_to: Addr::worker(self.id.node, self.id.local),
            hops: 1,
        };
        match self.remote_roundtrip(dst, &req) {
            Msg::PushAck { key: k, .. } => debug_assert_eq!(k, key),
            other => panic!("expected PushAck, got {other:?}"),
        }
    }

    /// Whether a sampled key can be served without the network right now.
    fn locally_available(&self, key: Key) -> bool {
        match self.shared.technique.technique(key) {
            Technique::Replicated => true,
            Technique::Relocated => self.node.store.is_local(key),
        }
    }

    /// Issue async localizes for freshly drawn sample pools / samples.
    fn localize_for_sampling(&mut self, keys: &[Key]) {
        self.localize(keys);
    }

    /// Local sampling (NON-CONFORM): draw from the locally available part
    /// of π via rejection; hot keys are replicated (always local) so
    /// acceptance is high. Falls back to a bounded linear probe, then to
    /// accepting a non-local draw (which the pull path serves remotely).
    fn draw_local(&mut self, dist_idx: usize) -> Key {
        const REJECTION_TRIES: usize = 64;
        const PROBE_LIMIT: u64 = 4096;
        let dist = Arc::clone(&self.dists[dist_idx]);
        let d = &dist.0;
        for _ in 0..REJECTION_TRIES {
            let k = d.sample(&mut self.rng);
            if self.locally_available(k) {
                return k;
            }
        }
        let range = d.key_range();
        let span = range.end - range.start;
        let start = range.start + self.rng.gen_range(0..span);
        for off in 0..span.min(PROBE_LIMIT) {
            let k = range.start + (start - range.start + off) % span;
            if self.locally_available(k) {
                return k;
            }
        }
        d.sample(&mut self.rng)
    }

    /// Fetch a batch of sampled keys through the batched pull path.
    fn pull_sampled_batch(&mut self, keys: Vec<Key>) -> Vec<(Key, Vec<f32>)> {
        if keys.is_empty() {
            return Vec::new();
        }
        let vl = self.shared.value_len;
        let n_remote = keys.iter().filter(|&&k| !self.locally_available(k)).count() as u64;
        let mut flat = vec![0.0f32; keys.len() * vl];
        self.pull_many(&keys, &mut flat);
        let m = self.metrics();
        m.add(|m| &m.samples_remote, n_remote);
        m.add(|m| &m.samples_drawn, keys.len() as u64);
        keys.into_iter().zip(flat.chunks_exact(vl).map(|c| c.to_vec())).collect()
    }

    /// Multi-key pull: serve what shared memory can, then issue one
    /// batched request per remote destination and collect the (possibly
    /// split) replies.
    fn pull_many_batched(&mut self, keys: &[Key], out: &mut [f32]) {
        let vl = self.shared.value_len;
        debug_assert_eq!(out.len(), keys.len() * vl);
        let mut remote: Vec<(NodeId, Vec<(Key, usize)>)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            let slot = &mut out[i * vl..(i + 1) * vl];
            self.shared.record_access(key);
            loop {
                match self.shared.technique.route(key) {
                    KeyRoute::Replicated(r) => {
                        if self.pull_replicated(r, key, slot) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    KeyRoute::Relocated => {
                        if let Some(dst) = self.relocated_local_or_dst(
                            key,
                            |m| &m.local_pulls,
                            |v| slot.copy_from_slice(v),
                        ) {
                            group_by_node(&mut remote, dst, (key, i));
                        }
                        break;
                    }
                }
            }
        }
        if remote.is_empty() {
            return;
        }

        // One request per destination — a singleton group rides the
        // compact single-key message. Repeated keys within a destination
        // ride the wire (and are priced) once: the single reply fans out
        // to every requesting position. Replies may arrive split (the
        // served subset batched, parked entries individually at install).
        let reply_to = Addr::worker(self.id.node, self.id.local);
        // One position group per *wire entry*; a key racing a relocation
        // can land in two destination groups, so groups queue per key.
        let mut pending: FxHashMap<Key, VecDeque<Vec<usize>>> = FxHashMap::default();
        let mut outstanding = 0usize;
        for (dst, entries) in remote {
            let n_occurrences = entries.len() as u64;
            let mut group_keys: Vec<Key> = Vec::with_capacity(entries.len());
            let mut positions: FxHashMap<Key, Vec<usize>> = FxHashMap::default();
            for (key, i) in entries {
                let p = positions.entry(key).or_default();
                if p.is_empty() {
                    group_keys.push(key);
                }
                p.push(i);
            }
            for &key in &group_keys {
                pending
                    .entry(key)
                    .or_default()
                    .push_back(positions.remove(&key).expect("positions recorded"));
                outstanding += 1;
            }
            let m = self.metrics();
            m.add(|m| &m.remote_pulls, n_occurrences);
            m.inc(|m| &m.batch_pull_msgs);
            m.add(|m| &m.batch_pull_keys, group_keys.len() as u64);
            let req = match group_keys.as_slice() {
                [key] => Msg::PullReq { key: *key, reply_to, hops: 1 },
                _ => Msg::PullBatchReq { keys: group_keys, reply_to, hops: 1 },
            };
            let send_cost = self.pricing().message(req.encoded_len());
            self.endpoint.send(Addr::server(dst), self.clock.now(), req.to_bytes());
            self.clock.advance(send_cost * self.congestion());
        }
        while outstanding > 0 {
            let frame = self.endpoint.recv().expect("server disappeared during batched pull");
            let response_bytes = frame.payload.len();
            let mut payload = frame.payload;
            let mut fill =
                |pending: &mut FxHashMap<Key, VecDeque<Vec<usize>>>, key, value: &[f32]| {
                    let group = pending
                        .get_mut(&key)
                        .and_then(|q| q.pop_front())
                        .unwrap_or_else(|| panic!("reply for unrequested key {key}"));
                    for i in group {
                        out[i * vl..(i + 1) * vl].copy_from_slice(value);
                    }
                };
            match Msg::decode(&mut payload).expect("undecodable reply") {
                Msg::PullBatchResp { values, hops } => {
                    self.charge_chain_tail(
                        Msg::pull_batch_req_len(values.len()),
                        response_bytes,
                        hops,
                    );
                    for KeyUpdate { key, delta } in values {
                        fill(&mut pending, key, &delta);
                        outstanding -= 1;
                    }
                }
                Msg::PullResp { key, value, hops } => {
                    self.charge_chain_tail(Msg::pull_req_len(), response_bytes, hops);
                    fill(&mut pending, key, &value);
                    outstanding -= 1;
                }
                other => panic!("unexpected reply to batched pull: {other:?}"),
            }
        }
    }

    /// Multi-key push, batched like [`NupsWorker::pull_many_batched`].
    fn push_many_batched(&mut self, keys: &[Key], deltas: &[f32]) {
        let vl = self.shared.value_len;
        debug_assert_eq!(deltas.len(), keys.len() * vl);
        let mut remote: Vec<(NodeId, Vec<(Key, usize)>)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            let delta = &deltas[i * vl..(i + 1) * vl];
            self.shared.record_access(key);
            loop {
                match self.shared.technique.route(key) {
                    KeyRoute::Replicated(r) => {
                        if self.push_replicated(r, key, delta) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    KeyRoute::Relocated => {
                        if let Some(dst) = self.relocated_local_or_dst(
                            key,
                            |m| &m.local_pushes,
                            |v| add_assign(v, delta),
                        ) {
                            group_by_node(&mut remote, dst, (key, i));
                        }
                        break;
                    }
                }
            }
        }
        if remote.is_empty() {
            return;
        }

        let reply_to = Addr::worker(self.id.node, self.id.local);
        let mut pending: FxHashMap<Key, usize> = FxHashMap::default();
        let mut outstanding = 0usize;
        for (dst, entries) in remote {
            let n_occurrences = entries.len() as u64;
            // Coalesce duplicate keys before encoding: deltas are additive,
            // so their sum rides the wire (and is priced) as one entry per
            // key — the push mirror of the pull-batch dedup. The server
            // applies the summed delta once and acks the key once.
            let mut updates: Vec<KeyUpdate> = Vec::with_capacity(entries.len());
            let mut slot_of: FxHashMap<Key, usize> = FxHashMap::default();
            for (key, i) in entries {
                let delta = &deltas[i * vl..(i + 1) * vl];
                match slot_of.get(&key) {
                    Some(&slot) => add_assign(&mut updates[slot].delta, delta),
                    None => {
                        slot_of.insert(key, updates.len());
                        updates.push(KeyUpdate { key, delta: delta.to_vec() });
                    }
                }
            }
            for u in &updates {
                *pending.entry(u.key).or_default() += 1;
                outstanding += 1;
            }
            let m = self.metrics();
            m.add(|m| &m.remote_pushes, n_occurrences);
            m.inc(|m| &m.batch_push_msgs);
            m.add(|m| &m.batch_push_keys, updates.len() as u64);
            let req = match updates.len() {
                1 => {
                    let KeyUpdate { key, delta } = updates.pop().expect("one update");
                    Msg::PushReq { key, delta, reply_to, hops: 1 }
                }
                _ => Msg::PushBatchReq { updates, reply_to, hops: 1 },
            };
            let send_cost = self.pricing().message(req.encoded_len());
            self.endpoint.send(Addr::server(dst), self.clock.now(), req.to_bytes());
            self.clock.advance(send_cost * self.congestion());
        }
        let settle = |pending: &mut FxHashMap<Key, usize>, key: Key| {
            let left = pending
                .get_mut(&key)
                .filter(|c| **c > 0)
                .unwrap_or_else(|| panic!("ack for unrequested key {key}"));
            *left -= 1;
        };
        while outstanding > 0 {
            let frame = self.endpoint.recv().expect("server disappeared during batched push");
            let response_bytes = frame.payload.len();
            let mut payload = frame.payload;
            match Msg::decode(&mut payload).expect("undecodable reply") {
                Msg::PushBatchAck { keys: acked, hops } => {
                    self.charge_chain_tail(
                        Msg::push_batch_req_len(acked.len(), vl),
                        response_bytes,
                        hops,
                    );
                    for key in acked {
                        settle(&mut pending, key);
                        outstanding -= 1;
                    }
                }
                Msg::PushAck { key, hops } => {
                    self.charge_chain_tail(Msg::push_req_len(vl), response_bytes, hops);
                    settle(&mut pending, key);
                    outstanding -= 1;
                }
                other => panic!("unexpected reply to batched push: {other:?}"),
            }
        }
    }
}

impl PsWorker for NupsWorker {
    fn value_len(&self) -> usize {
        self.shared.value_len
    }

    fn pull(&mut self, key: Key, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.shared.value_len);
        let wall = std::time::Instant::now();
        self.shared.record_access(key);
        loop {
            match self.shared.technique.route(key) {
                KeyRoute::Replicated(slot) => {
                    if self.pull_replicated(slot, key, out) {
                        break;
                    }
                    // Demotion in progress on the server thread; the route
                    // flips within the same plan step.
                    std::thread::yield_now();
                }
                KeyRoute::Relocated => {
                    self.pull_relocated(key, out);
                    break;
                }
            }
        }
        self.shared.obs.hists.pull.record(wall.elapsed().as_nanos() as u64);
    }

    fn push(&mut self, key: Key, delta: &[f32]) {
        debug_assert_eq!(delta.len(), self.shared.value_len);
        let wall = std::time::Instant::now();
        self.shared.record_access(key);
        loop {
            match self.shared.technique.route(key) {
                KeyRoute::Replicated(slot) => {
                    if self.push_replicated(slot, key, delta) {
                        break;
                    }
                    std::thread::yield_now();
                }
                KeyRoute::Relocated => {
                    self.push_relocated(key, delta);
                    break;
                }
            }
        }
        self.shared.obs.hists.push.record(wall.elapsed().as_nanos() as u64);
    }

    fn pull_many(&mut self, keys: &[Key], out: &mut [f32]) {
        match keys {
            [] => {}
            // A single key takes the scalar path: smaller wire message, no
            // grouping overhead.
            [key] => self.pull(*key, out),
            _ => {
                // One histogram sample per batched op, like the scalar path.
                let wall = std::time::Instant::now();
                self.pull_many_batched(keys, out);
                self.shared.obs.hists.pull.record(wall.elapsed().as_nanos() as u64);
            }
        }
    }

    fn push_many(&mut self, keys: &[Key], deltas: &[f32]) {
        match keys {
            [] => {}
            [key] => self.push(*key, deltas),
            _ => {
                let wall = std::time::Instant::now();
                self.push_many_batched(keys, deltas);
                self.shared.obs.hists.push.record(wall.elapsed().as_nanos() as u64);
            }
        }
    }

    fn localize(&mut self, keys: &[Key]) {
        if !self.shared.relocation_enabled {
            return;
        }
        let wall = std::time::Instant::now();
        // Coalesce accepted intents into one message per home node; keys
        // already local or in flight are no-ops (as in Lapse).
        let mut groups: Vec<(NodeId, Vec<Key>)> = Vec::new();
        for &key in keys {
            if self.shared.technique.is_replicated(key) {
                continue;
            }
            let expected = self.relocation_estimate();
            if self.node.store.mark_inflight(key, expected) {
                group_by_node(&mut groups, self.shared.keyspace.home(key), key);
            }
        }
        for (home, group) in groups {
            let n = group.len() as u64;
            let msg = match group.as_slice() {
                [key] => Msg::LocalizeReq { key: *key, requester: self.id.node },
                _ => Msg::LocalizeBatchReq { keys: group, requester: self.id.node },
            };
            self.endpoint.send(Addr::server(home), self.clock.now(), msg.to_bytes());
            let m = self.metrics();
            m.inc(|m| &m.localize_msgs);
            m.add(|m| &m.localize_keys, n);
            // Issuing is asynchronous: only the (tiny) per-message issue
            // cost is charged to the worker.
            let c = self.pricing().local_access();
            self.clock.advance(c);
        }
        self.shared.obs.hists.localize.record(wall.elapsed().as_nanos() as u64);
    }

    fn advance_clock(&mut self) {
        // NuPS uses time-based staleness: nothing to do (Section 3.2).
    }

    fn charge_compute(&mut self, flops: u64) {
        let c = self.pricing().compute(flops);
        self.clock.advance(c);
        let shared = Arc::clone(&self.shared);
        self.shared.gate.poll(self.clock.now(), || shared.merge_step());
    }

    fn prepare_sample(&mut self, dist: DistId, n: usize) -> SampleHandle {
        let idx = dist.0;
        let dist_arc = Arc::clone(&self.dists[idx]);
        match &mut self.samplers[idx] {
            SamplerState::Independent => {
                let keys: Vec<Key> = (0..n).map(|_| dist_arc.0.sample(&mut self.rng)).collect();
                // The manual baseline draws in "application code" and gets
                // no preparatory localization from the PS.
                if dist_arc.1 != SamplingScheme::Manual {
                    self.localize_for_sampling(&keys);
                }
                SampleHandle::new(dist, keys)
            }
            SamplerState::Pool(_) => {
                // Split borrows: draw the batch with a detached RNG, then
                // issue localizes for the announced pools.
                let mut new_pools: Vec<Vec<Key>> = Vec::new();
                let keys = {
                    let SamplerState::Pool(pool) = &mut self.samplers[idx] else { unreachable!() };
                    let mut rng = self.rng.clone();
                    let out = pool.next_batch(
                        n,
                        &mut rng,
                        |r| dist_arc.0.sample(r),
                        |p| new_pools.push(p.to_vec()),
                    );
                    self.rng = rng;
                    out
                };
                let pools_prepared = new_pools.len() as u64;
                for p in &new_pools {
                    self.localize_for_sampling(p);
                }
                self.metrics().add(|m| &m.pools_prepared, pools_prepared);
                SampleHandle::new(dist, keys)
            }
            SamplerState::Local => SampleHandle::lazy(dist, n),
        }
    }

    fn pull_sample(&mut self, handle: &mut SampleHandle, n: usize) -> Vec<(Key, Vec<f32>)> {
        let idx = handle.dist.0;
        let scheme = self.dists[idx].1;
        // Decide which samples this pull serves, then fetch them through
        // the batched pull path: sampling-heavy workloads issue one round
        // trip per destination node instead of one per sampled key.
        let mut keys = Vec::with_capacity(n);
        match scheme {
            SamplingScheme::Manual | SamplingScheme::Independent | SamplingScheme::Reuse(_) => {
                for _ in 0..n {
                    let Some((key, _)) = handle.queue.pop_front() else { break };
                    keys.push(key);
                }
            }
            SamplingScheme::ReuseWithPostponing(_) => {
                while keys.len() < n {
                    let Some((key, postponed)) = handle.queue.pop_front() else { break };
                    if postponed || self.locally_available(key) {
                        keys.push(key);
                    } else {
                        // Postpone: re-localize, move to the end of this
                        // handle, use something else now. Each sample is
                        // postponed at most once so none is starved
                        // (required for LONG-TERM, Section 4.4).
                        self.metrics().inc(|m| &m.samples_postponed);
                        self.localize(&[key]);
                        handle.queue.push_back((key, true));
                    }
                }
            }
            SamplingScheme::Local => {
                let take = n.min(handle.lazy_remaining);
                for _ in 0..take {
                    keys.push(self.draw_local(idx));
                }
                handle.lazy_remaining -= take;
            }
        }
        self.pull_sampled_batch(keys)
    }

    fn begin_epoch(&mut self) {
        self.clock.refresh();
        self.shared.gate.enter();
    }

    fn end_epoch(&mut self) {
        let shared = Arc::clone(&self.shared);
        self.shared.gate.leave(|| shared.merge_step());
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }
}

impl NupsWorker {
    /// Advance this worker's clock by an explicit duration (tests and
    /// calibration harnesses).
    pub fn advance_clock_by(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }
}
