//! Property-based tests of the ML substrate: optimizer contracts and
//! ComplEx gradient correctness on arbitrary inputs.

use proptest::prelude::*;

use nups_ml::complex::{add_score_gradients, score, sigmoid};
use nups_ml::optimizer::{BoldDriver, Optimizer};
use nups_ml::util::{init_embedding, init_uniform};

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-2.0f32..2.0).prop_map(|x| x), n..=n)
}

proptest! {
    /// SGD: the pushed delta is exactly `-lr * g`, element-wise.
    #[test]
    fn sgd_delta_exact(grad in finite_vec(8), lr in 0.001f32..1.0) {
        let opt = Optimizer::Sgd { lr };
        let mut delta = vec![0.0; 8];
        opt.delta(&[0.0; 8], &grad, &mut delta);
        for (d, g) in delta.iter().zip(&grad) {
            prop_assert!((d + lr * g).abs() < 1e-6);
        }
    }

    /// AdaGrad: per-dimension step magnitude never exceeds the learning
    /// rate (since |g| / sqrt(acc + g²) ≤ 1), and the accumulator delta is
    /// exactly g².
    #[test]
    fn adagrad_step_bounded_by_lr(
        grad in finite_vec(6),
        acc in proptest::collection::vec(0.0f32..10.0, 6),
        lr in 0.001f32..1.0,
    ) {
        let opt = Optimizer::AdaGrad { lr, eps: 1e-8 };
        let mut value = vec![0.0; 12];
        value[6..].copy_from_slice(&acc);
        let mut delta = vec![0.0; 12];
        opt.delta(&value, &grad, &mut delta);
        for i in 0..6 {
            prop_assert!(delta[i].abs() <= lr * 1.0001, "step {} > lr {lr}", delta[i]);
            prop_assert!((delta[6 + i] - grad[i] * grad[i]).abs() < 1e-5);
        }
    }

    /// ComplEx score gradients match finite differences for arbitrary
    /// embeddings.
    #[test]
    fn complex_gradients_match_finite_differences(
        s in finite_vec(8),
        r in finite_vec(8),
        o in finite_vec(8),
        g in 0.1f32..2.0,
    ) {
        let mut gs = vec![0.0; 8];
        let mut gr = vec![0.0; 8];
        let mut go = vec![0.0; 8];
        add_score_gradients(&s, &r, &o, g, &mut gs, &mut gr, &mut go);
        let eps = 1e-2f32;
        // Spot-check two coordinates per argument (full check is done in
        // unit tests; here inputs are arbitrary).
        for i in [0usize, 5] {
            let mut sp = s.clone();
            sp[i] += eps;
            let num = g * (score(&sp, &r, &o) - score(&s, &r, &o)) / eps;
            prop_assert!((num - gs[i]).abs() < 0.05 * (1.0 + num.abs()), "ds[{i}] {num} vs {}", gs[i]);
            let mut op = o.clone();
            op[i] += eps;
            let num = g * (score(&s, &r, &op) - score(&s, &r, &o)) / eps;
            prop_assert!((num - go[i]).abs() < 0.05 * (1.0 + num.abs()), "do[{i}] {num} vs {}", go[i]);
        }
    }

    /// Sigmoid stays in (0, 1) and is monotone.
    #[test]
    fn sigmoid_properties(a in -50.0f32..50.0, b in -50.0f32..50.0) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!((0.0..=1.0).contains(&sigmoid(lo)));
        prop_assert!(sigmoid(lo) <= sigmoid(hi) + 1e-7);
    }

    /// Bold driver: the rate stays positive and halves exactly on
    /// regression.
    #[test]
    fn bold_driver_stays_positive(losses in proptest::collection::vec(0.0f64..1e6, 1..30)) {
        let mut bd = BoldDriver::new(0.1);
        let mut prev = None;
        for l in losses {
            let before = bd.lr();
            let after = bd.observe(l);
            prop_assert!(after > 0.0);
            if let Some(p) = prev {
                if l > p {
                    prop_assert!((after - before * 0.5).abs() < 1e-9);
                } else {
                    prop_assert!((after - before * 1.05).abs() < 1e-9);
                }
            }
            prev = Some(l);
        }
    }

    /// Key-addressed initialization is deterministic, bounded, and zeroes
    /// the optimizer-state suffix.
    #[test]
    fn init_embedding_contract(key in any::<u64>(), seed in any::<u64>(), dim in 1usize..16, extra in 0usize..16, scale in 0.01f32..1.0) {
        let mut a = vec![9.0f32; dim + extra];
        let mut b = vec![-9.0f32; dim + extra];
        init_embedding(key, seed, dim, scale, &mut a);
        init_embedding(key, seed, dim, scale, &mut b);
        prop_assert_eq!(&a, &b);
        for &x in &a[..dim] {
            prop_assert!((-scale..scale).contains(&x) || x.abs() <= scale);
        }
        prop_assert!(a[dim..].iter().all(|&x| x == 0.0));
        prop_assert_eq!(init_uniform(key, seed, 0, scale), a[0]);
    }
}
