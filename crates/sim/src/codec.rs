//! Binary wire format helpers.
//!
//! Protocol messages are encoded to real byte buffers before crossing the
//! simulated network so that (i) byte accounting is exact and (ii) the codec
//! path is exercised exactly as a networked implementation would exercise
//! it. The format is little-endian and length-prefixed; it deliberately
//! mirrors the flat layouts a ZeroMQ + protobuf stack would produce, without
//! pulling in a serialization framework (see DESIGN.md).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Error returned when a buffer does not contain a well-formed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the decoder needed.
    Truncated { needed: usize, remaining: usize },
    /// A tag byte did not correspond to any known variant.
    UnknownTag(u8),
    /// A length field exceeded a sanity bound.
    LengthOutOfRange(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated message: needed {needed} bytes, {remaining} remain")
            }
            CodecError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::LengthOutOfRange(l) => write!(f, "length field out of range: {l}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Largest element count we accept in a length-prefixed vector. Prevents a
/// corrupt length field from causing an enormous allocation.
pub const MAX_VEC_LEN: u64 = 1 << 32;

/// Types that can cross the simulated network.
pub trait WireEncode: Sized {
    /// Exact number of bytes [`encode`](Self::encode) will append.
    fn encoded_len(&self) -> usize;
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode a value from the front of `buf`, consuming its bytes.
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError>;

    /// Encode into a fresh, exactly-sized buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        debug_assert_eq!(buf.len(), self.encoded_len(), "encoded_len mismatch");
        buf.freeze()
    }
}

#[inline]
fn need(buf: &Bytes, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated { needed: n, remaining: buf.remaining() })
    } else {
        Ok(())
    }
}

/// Read a `u8`.
#[inline]
pub fn get_u8(buf: &mut Bytes) -> Result<u8, CodecError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

/// Read a little-endian `u16`.
#[inline]
pub fn get_u16(buf: &mut Bytes) -> Result<u16, CodecError> {
    need(buf, 2)?;
    Ok(buf.get_u16_le())
}

/// Read a little-endian `u32`.
#[inline]
pub fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

/// Read a little-endian `u64`.
#[inline]
pub fn get_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

/// Read a little-endian `f32`.
#[inline]
pub fn get_f32(buf: &mut Bytes) -> Result<f32, CodecError> {
    need(buf, 4)?;
    Ok(buf.get_f32_le())
}

/// Encoded size of a `u64` slice (length prefix + elements).
#[inline]
pub fn u64_slice_len(s: &[u64]) -> usize {
    4 + 8 * s.len()
}

/// Append a length-prefixed `u64` slice.
pub fn put_u64_slice(buf: &mut BytesMut, s: &[u64]) {
    buf.put_u32_le(s.len() as u32);
    for v in s {
        buf.put_u64_le(*v);
    }
}

/// Read a length-prefixed `u64` vector.
pub fn get_u64_vec(buf: &mut Bytes) -> Result<Vec<u64>, CodecError> {
    let n = get_u32(buf)? as u64;
    if n > MAX_VEC_LEN {
        return Err(CodecError::LengthOutOfRange(n));
    }
    let n = n as usize;
    need(buf, 8 * n)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_u64_le());
    }
    Ok(out)
}

/// Encoded size of an `f32` slice (length prefix + elements).
#[inline]
pub fn f32_slice_len(s: &[f32]) -> usize {
    4 + 4 * s.len()
}

/// Append a length-prefixed `f32` slice.
pub fn put_f32_slice(buf: &mut BytesMut, s: &[f32]) {
    buf.put_u32_le(s.len() as u32);
    for v in s {
        buf.put_f32_le(*v);
    }
}

/// Read a length-prefixed `f32` vector.
pub fn get_f32_vec(buf: &mut Bytes) -> Result<Vec<f32>, CodecError> {
    let n = get_u32(buf)? as u64;
    if n > MAX_VEC_LEN {
        return Err(CodecError::LengthOutOfRange(n));
    }
    let n = n as usize;
    need(buf, 4 * n)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f32_le());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Sample {
        id: u64,
        keys: Vec<u64>,
        values: Vec<f32>,
        flag: u8,
    }

    impl WireEncode for Sample {
        fn encoded_len(&self) -> usize {
            8 + u64_slice_len(&self.keys) + f32_slice_len(&self.values) + 1
        }
        fn encode(&self, buf: &mut BytesMut) {
            buf.put_u64_le(self.id);
            put_u64_slice(buf, &self.keys);
            put_f32_slice(buf, &self.values);
            buf.put_u8(self.flag);
        }
        fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
            Ok(Sample {
                id: get_u64(buf)?,
                keys: get_u64_vec(buf)?,
                values: get_f32_vec(buf)?,
                flag: get_u8(buf)?,
            })
        }
    }

    #[test]
    fn roundtrip_basic() {
        let s = Sample { id: 42, keys: vec![1, 2, 3], values: vec![0.5, -1.0], flag: 7 };
        let mut bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.encoded_len());
        let back = Sample::decode(&mut bytes).unwrap();
        assert_eq!(back, s);
        assert!(bytes.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let s = Sample { id: 1, keys: vec![9; 10], values: vec![1.0; 10], flag: 0 };
        let full = s.to_bytes();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(Sample::decode(&mut partial).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_length_field_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX); // claims ~4 billion elements
        let mut b = buf.freeze();
        // Not enough payload follows, so decoding must fail without trying
        // to allocate the claimed length.
        assert!(get_u64_vec(&mut b).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_prop(
            id in any::<u64>(),
            keys in proptest::collection::vec(any::<u64>(), 0..200),
            values in proptest::collection::vec(any::<f32>().prop_filter("finite", |f| f.is_finite()), 0..200),
            flag in any::<u8>(),
        ) {
            let s = Sample { id, keys, values, flag };
            let mut bytes = s.to_bytes();
            prop_assert_eq!(bytes.len(), s.encoded_len());
            let back = Sample::decode(&mut bytes).unwrap();
            prop_assert_eq!(back, s);
            prop_assert!(bytes.is_empty());
        }
    }
}
