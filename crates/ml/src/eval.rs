//! Shared evaluation helpers.

/// Cosine similarity; zero for degenerate vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= 0.0 || nb <= 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Root mean squared error of `(prediction, truth)` pairs.
pub fn rmse(pairs: impl Iterator<Item = (f32, f32)>) -> f64 {
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for (p, t) in pairs {
        sum += ((p - t) as f64).powi(2);
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (sum / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn rmse_basics() {
        let pairs = vec![(1.0f32, 0.0f32), (0.0, 1.0)];
        assert!((rmse(pairs.into_iter()) - 1.0).abs() < 1e-9);
        assert_eq!(rmse(std::iter::empty()), 0.0);
        let exact = vec![(2.0f32, 2.0f32); 10];
        assert_eq!(rmse(exact.into_iter()), 0.0);
    }
}
