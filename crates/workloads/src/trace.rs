//! Access-trace recording and skew statistics (Figure 3 / Table 2).
//!
//! The paper characterizes workloads by per-parameter access counts,
//! separated into direct accesses and sampling accesses, sorted by total
//! frequency. This module records such traces and computes the headline
//! statistics ("18% of reads go to 0.02% of parameters", "sampling is 31%
//! of all accesses").

/// Per-key access counters, split by access class.
#[derive(Debug, Clone)]
pub struct AccessTrace {
    pub direct: Vec<u64>,
    pub sampling: Vec<u64>,
}

impl AccessTrace {
    pub fn new(n_keys: usize) -> AccessTrace {
        AccessTrace { direct: vec![0; n_keys], sampling: vec![0; n_keys] }
    }

    #[inline]
    pub fn record_direct(&mut self, key: usize, n: u64) {
        self.direct[key] += n;
    }

    #[inline]
    pub fn record_sampling(&mut self, key: usize, n: u64) {
        self.sampling[key] += n;
    }

    pub fn merge(&mut self, other: &AccessTrace) {
        assert_eq!(self.direct.len(), other.direct.len());
        for (a, b) in self.direct.iter_mut().zip(&other.direct) {
            *a += b;
        }
        for (a, b) in self.sampling.iter_mut().zip(&other.sampling) {
            *a += b;
        }
    }

    pub fn total_direct(&self) -> u64 {
        self.direct.iter().sum()
    }

    pub fn total_sampling(&self) -> u64 {
        self.sampling.iter().sum()
    }

    /// Share of all accesses that are sampling accesses (Table 2's
    /// rightmost columns: 31% for KGE, 56% for WV, 0% for MF).
    pub fn sampling_share(&self) -> f64 {
        let d = self.total_direct();
        let s = self.total_sampling();
        if d + s == 0 {
            return 0.0;
        }
        s as f64 / (d + s) as f64
    }

    /// Total accesses per key (direct + sampling).
    pub fn totals(&self) -> Vec<u64> {
        self.direct.iter().zip(&self.sampling).map(|(d, s)| d + s).collect()
    }

    /// Keys sorted by decreasing total access count, with their direct and
    /// sampling counts: the series plotted in Figure 3.
    pub fn sorted_series(&self) -> Vec<(usize, u64, u64)> {
        let mut keys: Vec<usize> = (0..self.direct.len()).collect();
        let totals = self.totals();
        keys.sort_by_key(|&k| std::cmp::Reverse(totals[k]));
        keys.into_iter().map(|k| (k, self.direct[k], self.sampling[k])).collect()
    }

    /// The share of all accesses received by the hottest `key_share`
    /// fraction of keys (e.g. Figure 3a's "18% of reads go to 0.02% of
    /// parameters" is `share_of_top(0.0002) ≈ 0.18`).
    pub fn share_of_top(&self, key_share: f64) -> f64 {
        let totals = self.totals();
        let grand: u64 = totals.iter().sum();
        if grand == 0 {
            return 0.0;
        }
        let mut sorted = totals;
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((sorted.len() as f64 * key_share).ceil() as usize).clamp(1, sorted.len());
        let top: u64 = sorted[..k].iter().sum();
        top as f64 / grand as f64
    }

    /// Down-sampled log-log series for printing Figure 3-style plots:
    /// `(rank, total_accesses)` at geometrically spaced ranks.
    pub fn loglog_points(&self, points: usize) -> Vec<(usize, u64)> {
        let series = self.sorted_series();
        if series.is_empty() {
            return Vec::new();
        }
        let n = series.len();
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let rank =
                ((n as f64).powf(i as f64 / (points - 1).max(1) as f64) as usize).clamp(1, n);
            let (_, d, s) = series[rank - 1];
            out.push((rank, d + s));
        }
        out.dedup_by_key(|p| p.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> AccessTrace {
        let mut t = AccessTrace::new(100);
        // Key 0 extremely hot, the rest cold.
        t.record_direct(0, 900);
        for k in 1..100 {
            t.record_direct(k, 1);
        }
        t.record_sampling(5, 100);
        t
    }

    #[test]
    fn totals_and_shares() {
        let t = trace();
        assert_eq!(t.total_direct(), 999);
        assert_eq!(t.total_sampling(), 100);
        let share = t.sampling_share();
        assert!((share - 100.0 / 1099.0).abs() < 1e-9);
    }

    #[test]
    fn sorted_series_hottest_first() {
        let t = trace();
        let s = t.sorted_series();
        assert_eq!(s[0].0, 0);
        assert_eq!(s[0].1, 900);
        assert_eq!(s[1].0, 5); // 1 direct + 100 sampling
        assert_eq!(s[1].2, 100);
    }

    #[test]
    fn share_of_top_concentration() {
        let t = trace();
        // Top 1% of keys (1 key) receives 900/1099 of accesses.
        let s = t.share_of_top(0.01);
        assert!((s - 900.0 / 1099.0).abs() < 1e-9);
        assert!((t.share_of_top(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = trace();
        let b = trace();
        a.merge(&b);
        assert_eq!(a.total_direct(), 2 * 999);
        assert_eq!(a.total_sampling(), 200);
    }

    #[test]
    fn loglog_points_are_monotone_ranks() {
        let t = trace();
        let pts = t.loglog_points(10);
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(pts[0].0, 1);
    }

    #[test]
    fn empty_trace_is_stable() {
        let t = AccessTrace::new(0);
        assert_eq!(t.sampling_share(), 0.0);
        assert!(t.sorted_series().is_empty());
        assert!(t.loglog_points(5).is_empty());
    }
}
