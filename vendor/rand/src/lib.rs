//! Vendored stand-in for the `rand` crate (the build environment has no
//! network access to crates.io). Implements the rand 0.8 API surface this
//! workspace uses — `Rng`, `SeedableRng`, `rngs::{StdRng, SmallRng}`,
//! `seq::SliceRandom` — on top of the xoshiro256++ generator with
//! SplitMix64 seeding. Deterministic for a given seed, which is all the
//! simulation relies on; it makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// The raw generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction, as in rand 0.8.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion of the u64 into a full seed, as rand does.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`]; the stand-in for sampling from rand's
/// `Standard` distribution.
pub trait StandardValue {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            #[inline]
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for u128 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardValue for bool {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardValue>::standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as StandardValue>::standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// User-facing extension methods, as in rand 0.8.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardValue>(&mut self) -> T {
        T::standard(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        <f64 as StandardValue>::standard(self) < p
    }

    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        debug_assert!(numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ core state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256 { s }
    }
}

macro_rules! wrapper_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
            #[inline]
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.0.fill_bytes(dest)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                $name(Xoshiro256::from_seed(seed))
            }
        }
    };
}

/// The deterministic generators.
pub mod rngs {
    use super::*;

    wrapper_rng!(
        /// Stand-in for rand's `StdRng` (deterministic, seedable).
        StdRng
    );
    wrapper_rng!(
        /// Stand-in for rand's `SmallRng` (deterministic, seedable).
        SmallRng
    );
}

/// Sequence utilities.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }
}
