//! The parameter-server wire protocol.
//!
//! Every inter-node interaction of NuPS and of the SSP/ESSP baseline is one
//! of these messages. They are encoded to bytes before crossing the
//! simulated network so the byte counters reflect real wire sizes
//! (Lapse/NuPS used ZeroMQ + protocol buffers; our framing overhead is
//! modelled in [`nups_sim::cost::WIRE_HEADER_BYTES`]).
//!
//! Relocation follows the Lapse 3-message protocol (Section 3.1.3):
//! `LocalizeReq` to the home node, `ForwardLocalize` from home to the
//! current owner, `Transfer` from the owner to the requester. Remote
//! accesses are `PullReq`/`PushReq` with responses routed directly to the
//! requesting worker's reply port; a `hops` count records forwarding so the
//! requester can charge the correct virtual-time cost.

use bytes::{BufMut, Bytes, BytesMut};
use nups_sim::codec::{
    self, f32_slice_len, get_f32_vec, get_u16, get_u64, get_u8, put_f32_slice, CodecError,
    WireEncode,
};
use nups_sim::topology::{Addr, NodeId};

use crate::key::Key;

/// One batched (key, delta) update, as used by SSP flushes and broadcasts.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyUpdate {
    pub key: Key,
    pub delta: Vec<f32>,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Read `key`; the response goes directly to `reply_to`.
    PullReq { key: Key, reply_to: Addr, hops: u8 },
    /// Additively apply `delta` to `key`; ack goes to `reply_to`.
    PushReq { key: Key, delta: Vec<f32>, reply_to: Addr, hops: u8 },
    /// Response to [`Msg::PullReq`]. `hops` echoes the total messages the
    /// chain took so the requester can price its wait.
    PullResp { key: Key, value: Vec<f32>, hops: u8 },
    /// Response to [`Msg::PushReq`].
    PushAck { key: Key, hops: u8 },
    /// Worker at `requester` asks the home node to relocate `key` to it.
    LocalizeReq { key: Key, requester: NodeId },
    /// Home tells the current owner to hand `key` over to `requester`.
    ForwardLocalize { key: Key, requester: NodeId },
    /// Ownership transfer carrying the parameter value.
    Transfer { key: Key, value: Vec<f32> },

    /// Multi-key read: one request per destination node instead of one
    /// message per key. The receiving server answers its locally-owned
    /// subset in a single [`Msg::PullBatchResp`], parks entries that are
    /// in flight (answered individually at install time), and forwards the
    /// remainder along the ownership chain — so replies to one request may
    /// arrive split across several messages.
    PullBatchReq { keys: Vec<Key>, reply_to: Addr, hops: u8 },
    /// The subset of a [`Msg::PullBatchReq`] one server answered. `hops`
    /// counts the chain this subset took, including this response.
    PullBatchResp { values: Vec<KeyUpdate>, hops: u8 },
    /// Multi-key additive update, grouped like [`Msg::PullBatchReq`].
    PushBatchReq { updates: Vec<KeyUpdate>, reply_to: Addr, hops: u8 },
    /// Ack for the subset of a [`Msg::PushBatchReq`] applied at one node.
    PushBatchAck { keys: Vec<Key>, hops: u8 },
    /// Batched relocation intent: `requester` asks a home node for all of
    /// `keys` (each homed there) in one message.
    LocalizeBatchReq { keys: Vec<Key>, requester: NodeId },

    /// Technique migration, relocated → replicated: the owning node
    /// broadcasts the parameter's current value so every node can install
    /// a replica in `slot`. In-process deployments execute this at the
    /// synchronization rendezvous (priced as `n - 1` of these on the
    /// wire); per-node deployments send it for real, stamped with the
    /// [`Msg::AdaptPlan`] epoch it completes so receivers can order it
    /// against the plan stream.
    Promote { key: Key, epoch: u64, slot: u32, value: Vec<f32> },
    /// Technique migration, replicated → relocated: after the final delta
    /// all-reduce the coordinator announces the elected owner; replicas
    /// free their slot (the value is already everywhere, so the notice is
    /// small). Priced as `n - 1` of these.
    Demote { key: Key, owner: NodeId },

    /// Distributed replica synchronization (per-node deployments, where
    /// the in-process all-reduce is impossible): node `from` broadcasts
    /// the deltas it accumulated since its last sync. Each update carries
    /// the real parameter key (not a slot id) so receivers can re-route
    /// around concurrent technique migrations: a delta for a key that is
    /// no longer replicated here folds back through the relocation push
    /// path instead of hitting a reused slot. Applying is commutative and
    /// (for integer-valued deltas) exact, so replicas converge to the
    /// same bits regardless of arrival order.
    ///
    /// `epoch` is the replication *era* the batch was drained under: the
    /// [`Msg::AdaptPlan`] epoch that installed the sender's tenancy of
    /// these keys (zero for startup replicas or when adaptation is off),
    /// read under the same slot lock as the drain, so the tag is exact. A
    /// sender whose dirty slots span eras sends one message per era.
    /// Receivers match the era against their own slot before applying, so
    /// a stale delta that predates a demote/re-promote cycle is never
    /// applied to (or stashed for) the new era's replica — it is conserved
    /// once at the key's home and dropped everywhere else.
    ReplicaDeltas { from: NodeId, epoch: u64, updates: Vec<KeyUpdate> },
    /// Node `from` finished its workload and issued its final
    /// [`Msg::ReplicaDeltas`] broadcast. Sent to the *coordinator* on the
    /// same ordered channel as the deltas, so receiving it proves every
    /// delta from `from` has been applied there. The coordinator's
    /// quiescence barrier counts these.
    SyncFin { from: NodeId },
    /// Node `from`'s share of the final model: one entry per
    /// relocation-managed key its store owns. Sent to the coordinator's
    /// control port in response to [`Msg::Release`].
    ModelPart { from: NodeId, entries: Vec<KeyUpdate> },
    /// Coordinator → peers, after every node's [`Msg::SyncFin`] arrived:
    /// the cluster is quiescent — snapshot your store and answer with a
    /// [`Msg::ModelPart`], then tear down. `epoch` is the last
    /// [`Msg::AdaptPlan`] the coordinator issued (zero when adaptation is
    /// off); a peer answers only once its own adaptive state has caught
    /// up, so no migration is still tearing keys out of the snapshot.
    Release { epoch: u64 },
    /// Finalize fence, peer → every other peer's *server* port (adaptive
    /// per-node deployments). Sent right after node `from`'s final
    /// [`Msg::ReplicaDeltas`] broadcast on the same per-link FIFO
    /// channels, so receiving it proves every sync delta `from` ever
    /// broadcast has been folded here. Each node waits for `n - 1` fences
    /// (and for its own folds to be acknowledged) before declaring itself
    /// drained to the coordinator — the happens-before edge that keeps a
    /// late broadcast for a demoted key from landing after the home
    /// snapshotted its model part.
    FinFence { from: NodeId },

    /// Per-node deployments: a peer ships the access-frequency sketch it
    /// accumulated since its last report to the adaptation leader (node
    /// 0), as sparse count-min cells ([`nups_sim::metrics::FreqSketch`]).
    /// The leader folds every report into its own sketch and re-scores
    /// from the merged global view.
    SketchReport { from: NodeId, total: u64, row0: Vec<(u32, u64)>, row1: Vec<(u32, u64)> },
    /// Leader → everyone (including itself): the versioned migration plan
    /// of one adaptation round. Promotions carry the replica slot the
    /// leader assigned by simulating the free list, so every node's slot
    /// table stays aligned without further coordination; demotions free
    /// their slots in plan order. Plans apply in epoch order on each
    /// node's server loop.
    AdaptPlan { epoch: u64, promotions: Vec<(Key, u32)>, demotions: Vec<Key> },
    /// Peer → leader: plan `epoch` is fully applied here — demotions
    /// executed, every announced replica installed, no buffered installs
    /// and no unacknowledged demotion residue. The leader's finalize
    /// barrier releases the cluster only after every node acknowledged the
    /// last issued plan, so no migration traffic is in flight when model
    /// parts are snapshotted.
    PlanAck { from: NodeId, epoch: u64 },

    /// SSP/ESSP: synchronous replica refresh request.
    SspPullReq { key: Key, reply_to: Addr },
    /// SSP/ESSP: refresh response.
    SspPullResp { key: Key, value: Vec<f32> },
    /// SSP/ESSP: a worker's accumulated updates, flushed at a clock advance.
    /// `from` lets the owner skip echoing updates back to their origin.
    SspFlush { from: NodeId, updates: Vec<KeyUpdate> },
    /// ESSP: eager propagation of fresh deltas to a subscriber node.
    SspBroadcast { updates: Vec<KeyUpdate> },
    /// ESSP: node `from` subscribes to eager maintenance of `keys`.
    SspSubscribe { from: NodeId, keys: Vec<Key> },

    /// Shut a server loop down.
    Stop,
}

mod tag {
    pub const PULL_REQ: u8 = 1;
    pub const PUSH_REQ: u8 = 2;
    pub const PULL_RESP: u8 = 3;
    pub const PUSH_ACK: u8 = 4;
    pub const LOCALIZE_REQ: u8 = 5;
    pub const FORWARD_LOCALIZE: u8 = 6;
    pub const TRANSFER: u8 = 7;
    pub const SSP_PULL_REQ: u8 = 8;
    pub const SSP_PULL_RESP: u8 = 9;
    pub const SSP_FLUSH: u8 = 10;
    pub const SSP_BROADCAST: u8 = 11;
    pub const SSP_SUBSCRIBE: u8 = 12;
    pub const STOP: u8 = 13;
    pub const PULL_BATCH_REQ: u8 = 14;
    pub const PULL_BATCH_RESP: u8 = 15;
    pub const PUSH_BATCH_REQ: u8 = 16;
    pub const PUSH_BATCH_ACK: u8 = 17;
    pub const LOCALIZE_BATCH_REQ: u8 = 18;
    pub const PROMOTE: u8 = 19;
    pub const DEMOTE: u8 = 20;
    pub const REPLICA_DELTAS: u8 = 21;
    pub const SYNC_FIN: u8 = 22;
    pub const MODEL_PART: u8 = 23;
    pub const RELEASE: u8 = 24;
    pub const SKETCH_REPORT: u8 = 25;
    pub const ADAPT_PLAN: u8 = 26;
    pub const PLAN_ACK: u8 = 27;
    pub const FIN_FENCE: u8 = 28;
}

const ADDR_LEN: usize = 4;

fn put_addr(buf: &mut BytesMut, a: Addr) {
    buf.put_u16_le(a.node.0);
    buf.put_u16_le(a.port);
}

fn get_addr(buf: &mut Bytes) -> Result<Addr, CodecError> {
    let node = NodeId(get_u16(buf)?);
    let port = get_u16(buf)?;
    Ok(Addr { node, port })
}

fn updates_len(updates: &[KeyUpdate]) -> usize {
    4 + updates.iter().map(|u| 8 + f32_slice_len(&u.delta)).sum::<usize>()
}

fn put_updates(buf: &mut BytesMut, updates: &[KeyUpdate]) {
    buf.put_u32_le(updates.len() as u32);
    for u in updates {
        buf.put_u64_le(u.key);
        put_f32_slice(buf, &u.delta);
    }
}

/// Wire sizes of the request messages a forwarding chain repeats. A
/// requester that receives a response with `hops > 2` never saw the
/// intermediate forwards, but it knows they carried (a superset of) the
/// answered entries — these helpers let it price the chain it can
/// reconstruct. Each is asserted against `encoded_len` in the tests below.
impl Msg {
    /// Encoded size of a [`Msg::PullReq`].
    pub fn pull_req_len() -> usize {
        1 + 8 + ADDR_LEN + 1
    }

    /// Encoded size of a [`Msg::PushReq`] carrying one `value_len` delta.
    pub fn push_req_len(value_len: usize) -> usize {
        1 + 8 + f32_slice_len_for(value_len) + ADDR_LEN + 1
    }

    /// Encoded size of a [`Msg::PullBatchReq`] over `n_keys` keys.
    pub fn pull_batch_req_len(n_keys: usize) -> usize {
        1 + 4 + 8 * n_keys + ADDR_LEN + 1
    }

    /// Encoded size of a [`Msg::PushBatchReq`] over `n_keys` deltas of
    /// `value_len` floats each.
    pub fn push_batch_req_len(n_keys: usize, value_len: usize) -> usize {
        1 + 4 + n_keys * (8 + f32_slice_len_for(value_len)) + ADDR_LEN + 1
    }
}

fn f32_slice_len_for(n: usize) -> usize {
    4 + 4 * n
}

fn get_updates(buf: &mut Bytes) -> Result<Vec<KeyUpdate>, CodecError> {
    let n = codec::get_u32(buf)? as u64;
    // Each update occupies at least 12 bytes (key + length prefix): a
    // hostile length field must fail before any allocation happens.
    if n.saturating_mul(12) > buf.len() as u64 {
        return Err(CodecError::Truncated { needed: (n * 12) as usize, remaining: buf.len() });
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let key = get_u64(buf)?;
        let delta = get_f32_vec(buf)?;
        out.push(KeyUpdate { key, delta });
    }
    Ok(out)
}

/// Sparse sketch cells and plan promotions share one wire shape: a `u32`
/// count followed by fixed 12-byte entries.
fn pairs_len(n: usize) -> usize {
    4 + 12 * n
}

fn put_cells(buf: &mut BytesMut, cells: &[(u32, u64)]) {
    buf.put_u32_le(cells.len() as u32);
    for &(idx, count) in cells {
        buf.put_u32_le(idx);
        buf.put_u64_le(count);
    }
}

fn get_cells(buf: &mut Bytes) -> Result<Vec<(u32, u64)>, CodecError> {
    let n = codec::get_u32(buf)? as u64;
    if n.saturating_mul(12) > buf.len() as u64 {
        return Err(CodecError::Truncated { needed: (n * 12) as usize, remaining: buf.len() });
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let idx = codec::get_u32(buf)?;
        let count = get_u64(buf)?;
        out.push((idx, count));
    }
    Ok(out)
}

fn put_promotions(buf: &mut BytesMut, promotions: &[(Key, u32)]) {
    buf.put_u32_le(promotions.len() as u32);
    for &(key, slot) in promotions {
        buf.put_u64_le(key);
        buf.put_u32_le(slot);
    }
}

fn get_promotions(buf: &mut Bytes) -> Result<Vec<(Key, u32)>, CodecError> {
    let n = codec::get_u32(buf)? as u64;
    if n.saturating_mul(12) > buf.len() as u64 {
        return Err(CodecError::Truncated { needed: (n * 12) as usize, remaining: buf.len() });
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let key = get_u64(buf)?;
        let slot = codec::get_u32(buf)?;
        out.push((key, slot));
    }
    Ok(out)
}

impl WireEncode for Msg {
    fn encoded_len(&self) -> usize {
        1 + match self {
            Msg::PullReq { .. } => 8 + ADDR_LEN + 1,
            Msg::PushReq { delta, .. } => 8 + f32_slice_len(delta) + ADDR_LEN + 1,
            Msg::PullResp { value, .. } => 8 + f32_slice_len(value) + 1,
            Msg::PushAck { .. } => 8 + 1,
            Msg::LocalizeReq { .. } | Msg::ForwardLocalize { .. } => 8 + 2,
            Msg::Transfer { value, .. } => 8 + f32_slice_len(value),
            Msg::SspPullReq { .. } => 8 + ADDR_LEN,
            Msg::SspPullResp { value, .. } => 8 + f32_slice_len(value),
            Msg::SspFlush { updates, .. } => 2 + updates_len(updates),
            Msg::SspBroadcast { updates } => updates_len(updates),
            Msg::SspSubscribe { keys, .. } => 2 + codec::u64_slice_len(keys),
            Msg::Stop => 0,
            Msg::PullBatchReq { keys, .. } => codec::u64_slice_len(keys) + ADDR_LEN + 1,
            Msg::PullBatchResp { values, .. } => updates_len(values) + 1,
            Msg::PushBatchReq { updates, .. } => updates_len(updates) + ADDR_LEN + 1,
            Msg::PushBatchAck { keys, .. } => codec::u64_slice_len(keys) + 1,
            Msg::LocalizeBatchReq { keys, .. } => codec::u64_slice_len(keys) + 2,
            Msg::Promote { value, .. } => 8 + 8 + 4 + f32_slice_len(value),
            Msg::Demote { .. } => 8 + 2,
            Msg::ReplicaDeltas { updates, .. } => 2 + 8 + updates_len(updates),
            Msg::SyncFin { .. } => 2,
            Msg::FinFence { .. } => 2,
            Msg::ModelPart { entries, .. } => 2 + updates_len(entries),
            Msg::Release { .. } => 8,
            Msg::SketchReport { row0, row1, .. } => {
                2 + 8 + pairs_len(row0.len()) + pairs_len(row1.len())
            }
            Msg::AdaptPlan { promotions, demotions, .. } => {
                8 + pairs_len(promotions.len()) + codec::u64_slice_len(demotions)
            }
            Msg::PlanAck { .. } => 2 + 8,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Msg::PullReq { key, reply_to, hops } => {
                buf.put_u8(tag::PULL_REQ);
                buf.put_u64_le(*key);
                put_addr(buf, *reply_to);
                buf.put_u8(*hops);
            }
            Msg::PushReq { key, delta, reply_to, hops } => {
                buf.put_u8(tag::PUSH_REQ);
                buf.put_u64_le(*key);
                put_f32_slice(buf, delta);
                put_addr(buf, *reply_to);
                buf.put_u8(*hops);
            }
            Msg::PullResp { key, value, hops } => {
                buf.put_u8(tag::PULL_RESP);
                buf.put_u64_le(*key);
                put_f32_slice(buf, value);
                buf.put_u8(*hops);
            }
            Msg::PushAck { key, hops } => {
                buf.put_u8(tag::PUSH_ACK);
                buf.put_u64_le(*key);
                buf.put_u8(*hops);
            }
            Msg::LocalizeReq { key, requester } => {
                buf.put_u8(tag::LOCALIZE_REQ);
                buf.put_u64_le(*key);
                buf.put_u16_le(requester.0);
            }
            Msg::ForwardLocalize { key, requester } => {
                buf.put_u8(tag::FORWARD_LOCALIZE);
                buf.put_u64_le(*key);
                buf.put_u16_le(requester.0);
            }
            Msg::Transfer { key, value } => {
                buf.put_u8(tag::TRANSFER);
                buf.put_u64_le(*key);
                put_f32_slice(buf, value);
            }
            Msg::SspPullReq { key, reply_to } => {
                buf.put_u8(tag::SSP_PULL_REQ);
                buf.put_u64_le(*key);
                put_addr(buf, *reply_to);
            }
            Msg::SspPullResp { key, value } => {
                buf.put_u8(tag::SSP_PULL_RESP);
                buf.put_u64_le(*key);
                put_f32_slice(buf, value);
            }
            Msg::SspFlush { from, updates } => {
                buf.put_u8(tag::SSP_FLUSH);
                buf.put_u16_le(from.0);
                put_updates(buf, updates);
            }
            Msg::SspBroadcast { updates } => {
                buf.put_u8(tag::SSP_BROADCAST);
                put_updates(buf, updates);
            }
            Msg::SspSubscribe { from, keys } => {
                buf.put_u8(tag::SSP_SUBSCRIBE);
                buf.put_u16_le(from.0);
                codec::put_u64_slice(buf, keys);
            }
            Msg::Stop => buf.put_u8(tag::STOP),
            Msg::PullBatchReq { keys, reply_to, hops } => {
                buf.put_u8(tag::PULL_BATCH_REQ);
                codec::put_u64_slice(buf, keys);
                put_addr(buf, *reply_to);
                buf.put_u8(*hops);
            }
            Msg::PullBatchResp { values, hops } => {
                buf.put_u8(tag::PULL_BATCH_RESP);
                put_updates(buf, values);
                buf.put_u8(*hops);
            }
            Msg::PushBatchReq { updates, reply_to, hops } => {
                buf.put_u8(tag::PUSH_BATCH_REQ);
                put_updates(buf, updates);
                put_addr(buf, *reply_to);
                buf.put_u8(*hops);
            }
            Msg::PushBatchAck { keys, hops } => {
                buf.put_u8(tag::PUSH_BATCH_ACK);
                codec::put_u64_slice(buf, keys);
                buf.put_u8(*hops);
            }
            Msg::LocalizeBatchReq { keys, requester } => {
                buf.put_u8(tag::LOCALIZE_BATCH_REQ);
                codec::put_u64_slice(buf, keys);
                buf.put_u16_le(requester.0);
            }
            Msg::Promote { key, epoch, slot, value } => {
                buf.put_u8(tag::PROMOTE);
                buf.put_u64_le(*key);
                buf.put_u64_le(*epoch);
                buf.put_u32_le(*slot);
                put_f32_slice(buf, value);
            }
            Msg::Demote { key, owner } => {
                buf.put_u8(tag::DEMOTE);
                buf.put_u64_le(*key);
                buf.put_u16_le(owner.0);
            }
            Msg::ReplicaDeltas { from, epoch, updates } => {
                buf.put_u8(tag::REPLICA_DELTAS);
                buf.put_u16_le(from.0);
                buf.put_u64_le(*epoch);
                put_updates(buf, updates);
            }
            Msg::SyncFin { from } => {
                buf.put_u8(tag::SYNC_FIN);
                buf.put_u16_le(from.0);
            }
            Msg::FinFence { from } => {
                buf.put_u8(tag::FIN_FENCE);
                buf.put_u16_le(from.0);
            }
            Msg::ModelPart { from, entries } => {
                buf.put_u8(tag::MODEL_PART);
                buf.put_u16_le(from.0);
                put_updates(buf, entries);
            }
            Msg::Release { epoch } => {
                buf.put_u8(tag::RELEASE);
                buf.put_u64_le(*epoch);
            }
            Msg::SketchReport { from, total, row0, row1 } => {
                buf.put_u8(tag::SKETCH_REPORT);
                buf.put_u16_le(from.0);
                buf.put_u64_le(*total);
                put_cells(buf, row0);
                put_cells(buf, row1);
            }
            Msg::AdaptPlan { epoch, promotions, demotions } => {
                buf.put_u8(tag::ADAPT_PLAN);
                buf.put_u64_le(*epoch);
                put_promotions(buf, promotions);
                codec::put_u64_slice(buf, demotions);
            }
            Msg::PlanAck { from, epoch } => {
                buf.put_u8(tag::PLAN_ACK);
                buf.put_u16_le(from.0);
                buf.put_u64_le(*epoch);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Msg, CodecError> {
        let t = get_u8(buf)?;
        Ok(match t {
            tag::PULL_REQ => {
                Msg::PullReq { key: get_u64(buf)?, reply_to: get_addr(buf)?, hops: get_u8(buf)? }
            }
            tag::PUSH_REQ => Msg::PushReq {
                key: get_u64(buf)?,
                delta: get_f32_vec(buf)?,
                reply_to: get_addr(buf)?,
                hops: get_u8(buf)?,
            },
            tag::PULL_RESP => {
                Msg::PullResp { key: get_u64(buf)?, value: get_f32_vec(buf)?, hops: get_u8(buf)? }
            }
            tag::PUSH_ACK => Msg::PushAck { key: get_u64(buf)?, hops: get_u8(buf)? },
            tag::LOCALIZE_REQ => {
                Msg::LocalizeReq { key: get_u64(buf)?, requester: NodeId(get_u16(buf)?) }
            }
            tag::FORWARD_LOCALIZE => {
                Msg::ForwardLocalize { key: get_u64(buf)?, requester: NodeId(get_u16(buf)?) }
            }
            tag::TRANSFER => Msg::Transfer { key: get_u64(buf)?, value: get_f32_vec(buf)? },
            tag::SSP_PULL_REQ => Msg::SspPullReq { key: get_u64(buf)?, reply_to: get_addr(buf)? },
            tag::SSP_PULL_RESP => Msg::SspPullResp { key: get_u64(buf)?, value: get_f32_vec(buf)? },
            tag::SSP_FLUSH => {
                Msg::SspFlush { from: NodeId(get_u16(buf)?), updates: get_updates(buf)? }
            }
            tag::SSP_BROADCAST => Msg::SspBroadcast { updates: get_updates(buf)? },
            tag::SSP_SUBSCRIBE => {
                Msg::SspSubscribe { from: NodeId(get_u16(buf)?), keys: codec::get_u64_vec(buf)? }
            }
            tag::STOP => Msg::Stop,
            tag::PULL_BATCH_REQ => Msg::PullBatchReq {
                keys: codec::get_u64_vec(buf)?,
                reply_to: get_addr(buf)?,
                hops: get_u8(buf)?,
            },
            tag::PULL_BATCH_RESP => {
                Msg::PullBatchResp { values: get_updates(buf)?, hops: get_u8(buf)? }
            }
            tag::PUSH_BATCH_REQ => Msg::PushBatchReq {
                updates: get_updates(buf)?,
                reply_to: get_addr(buf)?,
                hops: get_u8(buf)?,
            },
            tag::PUSH_BATCH_ACK => {
                Msg::PushBatchAck { keys: codec::get_u64_vec(buf)?, hops: get_u8(buf)? }
            }
            tag::LOCALIZE_BATCH_REQ => Msg::LocalizeBatchReq {
                keys: codec::get_u64_vec(buf)?,
                requester: NodeId(get_u16(buf)?),
            },
            tag::PROMOTE => Msg::Promote {
                key: get_u64(buf)?,
                epoch: get_u64(buf)?,
                slot: codec::get_u32(buf)?,
                value: get_f32_vec(buf)?,
            },
            tag::DEMOTE => Msg::Demote { key: get_u64(buf)?, owner: NodeId(get_u16(buf)?) },
            tag::REPLICA_DELTAS => Msg::ReplicaDeltas {
                from: NodeId(get_u16(buf)?),
                epoch: get_u64(buf)?,
                updates: get_updates(buf)?,
            },
            tag::SYNC_FIN => Msg::SyncFin { from: NodeId(get_u16(buf)?) },
            tag::FIN_FENCE => Msg::FinFence { from: NodeId(get_u16(buf)?) },
            tag::MODEL_PART => {
                Msg::ModelPart { from: NodeId(get_u16(buf)?), entries: get_updates(buf)? }
            }
            tag::RELEASE => Msg::Release { epoch: get_u64(buf)? },
            tag::SKETCH_REPORT => Msg::SketchReport {
                from: NodeId(get_u16(buf)?),
                total: get_u64(buf)?,
                row0: get_cells(buf)?,
                row1: get_cells(buf)?,
            },
            tag::ADAPT_PLAN => Msg::AdaptPlan {
                epoch: get_u64(buf)?,
                promotions: get_promotions(buf)?,
                demotions: codec::get_u64_vec(buf)?,
            },
            tag::PLAN_ACK => Msg::PlanAck { from: NodeId(get_u16(buf)?), epoch: get_u64(buf)? },
            other => return Err(CodecError::UnknownTag(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(m: Msg) {
        let mut b = m.to_bytes();
        assert_eq!(b.len(), m.encoded_len(), "encoded_len mismatch for {m:?}");
        let back = Msg::decode(&mut b).unwrap();
        assert_eq!(back, m);
        assert!(b.is_empty());
    }

    #[test]
    fn roundtrip_every_variant() {
        let addr = Addr::worker(NodeId(3), 1);
        roundtrip(Msg::PullReq { key: 9, reply_to: addr, hops: 2 });
        roundtrip(Msg::PushReq { key: 9, delta: vec![1.0, -2.0], reply_to: addr, hops: 3 });
        roundtrip(Msg::PullResp { key: 9, value: vec![0.25; 7], hops: 2 });
        roundtrip(Msg::PushAck { key: 1, hops: 2 });
        roundtrip(Msg::LocalizeReq { key: 5, requester: NodeId(1) });
        roundtrip(Msg::ForwardLocalize { key: 5, requester: NodeId(1) });
        roundtrip(Msg::Transfer { key: 5, value: vec![] });
        roundtrip(Msg::SspPullReq { key: 4, reply_to: addr });
        roundtrip(Msg::SspPullResp { key: 4, value: vec![9.0] });
        roundtrip(Msg::SspFlush {
            from: NodeId(2),
            updates: vec![
                KeyUpdate { key: 1, delta: vec![0.5] },
                KeyUpdate { key: 2, delta: vec![] },
            ],
        });
        roundtrip(Msg::SspBroadcast { updates: vec![] });
        roundtrip(Msg::SspSubscribe { from: NodeId(0), keys: vec![1, 2, 3] });
        roundtrip(Msg::Stop);
        roundtrip(Msg::PullBatchReq { keys: vec![1, 5, 9], reply_to: addr, hops: 1 });
        roundtrip(Msg::PullBatchResp {
            values: vec![
                KeyUpdate { key: 1, delta: vec![0.5, 1.5] },
                KeyUpdate { key: 5, delta: vec![] },
            ],
            hops: 2,
        });
        roundtrip(Msg::PushBatchReq {
            updates: vec![KeyUpdate { key: 7, delta: vec![-1.0] }],
            reply_to: addr,
            hops: 3,
        });
        roundtrip(Msg::PushBatchAck { keys: vec![7, 8], hops: 2 });
        roundtrip(Msg::LocalizeBatchReq { keys: vec![], requester: NodeId(2) });
        roundtrip(Msg::LocalizeBatchReq { keys: vec![3, 4, 5], requester: NodeId(2) });
        roundtrip(Msg::Promote { key: 11, epoch: 4, slot: 3, value: vec![1.5, -0.5] });
        roundtrip(Msg::Promote { key: 0, epoch: 0, slot: 0, value: vec![] });
        roundtrip(Msg::Demote { key: 11, owner: NodeId(4) });
        roundtrip(Msg::ReplicaDeltas {
            from: NodeId(2),
            epoch: 5,
            updates: vec![KeyUpdate { key: 0, delta: vec![2.0, -1.0] }],
        });
        roundtrip(Msg::ReplicaDeltas { from: NodeId(0), epoch: 0, updates: vec![] });
        roundtrip(Msg::SyncFin { from: NodeId(7) });
        roundtrip(Msg::FinFence { from: NodeId(0) });
        roundtrip(Msg::FinFence { from: NodeId(3) });
        roundtrip(Msg::ModelPart {
            from: NodeId(1),
            entries: vec![
                KeyUpdate { key: 3, delta: vec![1.0] },
                KeyUpdate { key: 9, delta: vec![] },
            ],
        });
        roundtrip(Msg::Release { epoch: 0 });
        roundtrip(Msg::Release { epoch: 9 });
        roundtrip(Msg::SketchReport { from: NodeId(3), total: 0, row0: vec![], row1: vec![] });
        roundtrip(Msg::SketchReport {
            from: NodeId(1),
            total: 42,
            row0: vec![(0, 7), (1023, 35)],
            row1: vec![(512, 42)],
        });
        roundtrip(Msg::AdaptPlan { epoch: 1, promotions: vec![], demotions: vec![] });
        roundtrip(Msg::AdaptPlan {
            epoch: 7,
            promotions: vec![(3, 0), (99, 2)],
            demotions: vec![5, 6],
        });
        roundtrip(Msg::PlanAck { from: NodeId(0), epoch: 0 });
        roundtrip(Msg::PlanAck { from: NodeId(5), epoch: 12 });
    }

    #[test]
    fn migration_message_sizes_are_honest() {
        // Promotion carries the full value (it is a broadcast of state);
        // demotion is a small notice — the asymmetry the adaptive manager's
        // cost accounting depends on.
        let promote = Msg::Promote { key: 1, epoch: 2, slot: 0, value: vec![0.0; 100] };
        assert_eq!(promote.encoded_len(), 1 + 8 + 8 + 4 + 4 + 400);
        let demote = Msg::Demote { key: 1, owner: NodeId(0) };
        assert_eq!(demote.encoded_len(), 1 + 8 + 2);
        assert!(demote.encoded_len() * 10 < promote.encoded_len());
    }

    #[test]
    fn adaptation_message_sizes_are_honest() {
        // The sketch report is the dominant recurring adaptation message;
        // its size must track the sparse cell count, not the sketch width.
        let report = Msg::SketchReport {
            from: NodeId(1),
            total: 10,
            row0: vec![(1, 5), (2, 5)],
            row1: vec![(9, 10)],
        };
        assert_eq!(report.encoded_len(), 1 + 2 + 8 + (4 + 24) + (4 + 12));
        let plan = Msg::AdaptPlan { epoch: 3, promotions: vec![(1, 0)], demotions: vec![2, 3] };
        assert_eq!(plan.encoded_len(), 1 + 8 + (4 + 12) + (4 + 16));
    }

    #[test]
    fn chain_reconstruction_lens_match_real_encodings() {
        let addr = Addr::worker(NodeId(3), 1);
        assert_eq!(
            Msg::pull_req_len(),
            Msg::PullReq { key: 1, reply_to: addr, hops: 9 }.encoded_len()
        );
        assert_eq!(
            Msg::push_req_len(5),
            Msg::PushReq { key: 1, delta: vec![0.0; 5], reply_to: addr, hops: 1 }.encoded_len()
        );
        assert_eq!(
            Msg::pull_batch_req_len(4),
            Msg::PullBatchReq { keys: vec![0; 4], reply_to: addr, hops: 1 }.encoded_len()
        );
        assert_eq!(
            Msg::push_batch_req_len(3, 7),
            Msg::PushBatchReq {
                updates: vec![KeyUpdate { key: 0, delta: vec![0.0; 7] }; 3],
                reply_to: addr,
                hops: 1,
            }
            .encoded_len()
        );
    }

    #[test]
    fn batch_framing_amortizes_over_entries() {
        // The point of the batch messages: n keys in one request cost far
        // less wire than n single-key requests.
        let addr = Addr::worker(NodeId(0), 0);
        let n = 64;
        let batched = Msg::PullBatchReq { keys: vec![0; n], reply_to: addr, hops: 1 }.encoded_len();
        let singles = n * Msg::PullReq { key: 0, reply_to: addr, hops: 1 }.encoded_len();
        assert!(batched < singles / 10 * 6, "batched {batched} vs singles {singles}");
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut b = Bytes::from_static(&[200]);
        assert_eq!(Msg::decode(&mut b), Err(CodecError::UnknownTag(200)));
    }

    #[test]
    fn value_size_dominates_wire_size() {
        // A dim-500 pull response should be ~2 KB of payload: the figures
        // on communication volume depend on this being faithful.
        let m = Msg::PullResp { key: 0, value: vec![0.0; 500], hops: 2 };
        let len = m.encoded_len();
        assert!((2000..2100).contains(&len), "unexpected wire size {len}");
    }

    fn arb_msg() -> impl Strategy<Value = Msg> {
        let val =
            proptest::collection::vec(any::<f32>().prop_filter("finite", |f| f.is_finite()), 0..50);
        let addr =
            (any::<u16>(), any::<u16>()).prop_map(|(n, p)| Addr { node: NodeId(n), port: p });
        prop_oneof![
            (any::<u64>(), addr.clone(), any::<u8>())
                .prop_map(|(key, reply_to, hops)| Msg::PullReq { key, reply_to, hops }),
            (any::<u64>(), val.clone(), addr.clone(), any::<u8>()).prop_map(
                |(key, delta, reply_to, hops)| { Msg::PushReq { key, delta, reply_to, hops } }
            ),
            (any::<u64>(), val.clone(), any::<u8>()).prop_map(|(key, value, hops)| Msg::PullResp {
                key,
                value,
                hops
            }),
            (any::<u64>(), val.clone()).prop_map(|(key, value)| Msg::Transfer { key, value }),
            (any::<u16>(), proptest::collection::vec((any::<u64>(), val.clone()), 0..8)).prop_map(
                |(from, kv)| Msg::SspFlush {
                    from: NodeId(from),
                    updates: kv.into_iter().map(|(key, delta)| KeyUpdate { key, delta }).collect(),
                }
            ),
            (proptest::collection::vec(any::<u64>(), 0..16), addr.clone(), any::<u8>())
                .prop_map(|(keys, reply_to, hops)| Msg::PullBatchReq { keys, reply_to, hops }),
            (proptest::collection::vec((any::<u64>(), val.clone()), 0..8), addr, any::<u8>())
                .prop_map(|(kv, reply_to, hops)| Msg::PushBatchReq {
                    updates: kv.into_iter().map(|(key, delta)| KeyUpdate { key, delta }).collect(),
                    reply_to,
                    hops,
                }),
            (
                any::<u16>(),
                any::<u64>(),
                proptest::collection::vec((any::<u64>(), val.clone()), 0..8)
            )
                .prop_map(|(from, epoch, kv)| Msg::ReplicaDeltas {
                    from: NodeId(from),
                    epoch,
                    updates: kv.into_iter().map(|(key, delta)| KeyUpdate { key, delta }).collect(),
                }),
            (any::<u16>(), proptest::collection::vec((any::<u64>(), val), 0..8)).prop_map(
                |(from, kv)| Msg::ModelPart {
                    from: NodeId(from),
                    entries: kv.into_iter().map(|(key, delta)| KeyUpdate { key, delta }).collect(),
                }
            ),
            (
                any::<u16>(),
                any::<u64>(),
                proptest::collection::vec((any::<u32>(), any::<u64>()), 0..8),
                proptest::collection::vec((any::<u32>(), any::<u64>()), 0..8),
            )
                .prop_map(|(from, total, row0, row1)| Msg::SketchReport {
                    from: NodeId(from),
                    total,
                    row0,
                    row1,
                }),
            (
                any::<u64>(),
                proptest::collection::vec((any::<u64>(), any::<u32>()), 0..8),
                proptest::collection::vec(any::<u64>(), 0..8),
            )
                .prop_map(|(epoch, promotions, demotions)| Msg::AdaptPlan {
                    epoch,
                    promotions,
                    demotions,
                }),
            (any::<u16>(), any::<u64>())
                .prop_map(|(from, epoch)| Msg::PlanAck { from: NodeId(from), epoch }),
        ]
    }

    proptest! {
        #[test]
        fn roundtrip_prop(m in arb_msg()) {
            let mut b = m.to_bytes();
            prop_assert_eq!(b.len(), m.encoded_len());
            let back = Msg::decode(&mut b).unwrap();
            prop_assert_eq!(back, m);
            prop_assert!(b.is_empty());
        }

        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut b = Bytes::from(data);
            let _ = Msg::decode(&mut b); // must not panic
        }
    }
}
