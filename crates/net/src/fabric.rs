//! The TCP fabric: [`nups_core::runtime::Fabric`] over real sockets.
//!
//! One fabric instance is one node's view of the cluster. For every peer
//! it holds one *outbound* connection driven by a dedicated writer thread
//! behind a bounded frame queue (backpressure instead of unbounded memory
//! when a peer stalls), and one *inbound* connection drained by a reader
//! thread that reassembles frames ([`crate::frame`]) and demultiplexes
//! them into per-port inboxes — exactly the (node, port) mailbox shape the
//! in-process [`nups_sim::net::Network`] provides, so `nups-core` runs on
//! either without knowing which.
//!
//! Frames addressed to the local node never touch a socket (the paper
//! co-locates servers and workers in one process; intra-node traffic is
//! shared memory) and are not counted as network traffic, mirroring the
//! simulated fabric's accounting.
//!
//! Shutdown is cooperative and total: closing the fabric closes the send
//! queues (writers drain what was already queued, then the sockets close),
//! unblocks every reader, and marks every inbox closed so blocked
//! [`Port::recv`] calls return `None` instead of hanging a process.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use nups_core::runtime::{Fabric, Port, RecvOutcome};
use nups_sim::hist::OpHists;
use nups_sim::metrics::{ClusterMetrics, Metrics};
use nups_sim::net::Frame;
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId, Topology};
use nups_sim::trace::Observability;

use crate::frame::{read_frame_pooled, write_batch, ReadError};
use crate::pool::BufferPool;

/// Reserved port for fabric-internal control frames (the bootstrap
/// handshake's hello/barrier). Never collides with protocol ports, which
/// are dense from zero.
pub const CTRL_PORT: u16 = u16::MAX;

/// Outbound frames queued per peer before senders block (backpressure).
const SEND_QUEUE_FRAMES: usize = 1024;

/// Buffered-input capacity per inbound link. Default `BufReader` is 8 KiB;
/// a burst of coalesced frames from a peer is pulled in with far fewer
/// read syscalls at this size, and one buffer per inbound link is cheap.
const READ_BUF_BYTES: usize = 64 << 10;

struct InboxState {
    queue: VecDeque<Frame>,
    closed: bool,
    bound: bool,
}

struct Inbox {
    state: Mutex<InboxState>,
    cv: Condvar,
}

impl Inbox {
    fn new() -> Inbox {
        Inbox {
            state: Mutex::new(InboxState { queue: VecDeque::new(), closed: false, bound: false }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, frame: Frame) {
        let mut st = self.state.lock();
        if st.closed {
            return;
        }
        st.queue.push_back(frame);
        drop(st);
        // Each (node, port) inbox has exactly one consumer (`bind` hands
        // out the single owner), so one wakeup per frame suffices; only
        // `close` below must reach every parked waiter.
        self.cv.notify_one();
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

struct SendQueueState {
    /// Each frame carries its enqueue instant so the drain can report how
    /// long it sat waiting for the wire (the `queue_wait` histogram).
    queue: VecDeque<(Instant, Frame)>,
    closed: bool,
}

/// Bounded MPSC frame queue feeding one peer's writer thread.
struct SendQueue {
    state: Mutex<SendQueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl SendQueue {
    fn new() -> SendQueue {
        SendQueue {
            state: Mutex::new(SendQueueState { queue: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue, blocking while the queue is full. Frames offered after
    /// close are dropped (shutdown races lose messages by design, exactly
    /// like the channel fabric).
    fn push(&self, frame: Frame) {
        let mut st = self.state.lock();
        while !st.closed && st.queue.len() >= SEND_QUEUE_FRAMES {
            self.not_full.wait(&mut st);
        }
        if st.closed {
            return;
        }
        st.queue.push_back((Instant::now(), frame));
        drop(st);
        self.not_empty.notify_one();
    }

    /// Block until at least one frame is queued; `false` once closed
    /// *and* drained (the writer flushes everything accepted before
    /// close). `parked` counts the condvar waits actually performed,
    /// i.e. genuine writer wakeups.
    fn wait_nonempty(&self, parked: &mut u64) -> bool {
        let mut st = self.state.lock();
        loop {
            if !st.queue.is_empty() {
                return true;
            }
            if st.closed {
                return false;
            }
            *parked += 1;
            self.not_empty.wait(&mut st);
        }
    }

    /// Drain *everything* queued into `out`; never blocks. The writer
    /// wakes once per burst, not once per frame. Each drained frame's
    /// time-in-queue lands in the `queue_wait` histogram.
    fn drain(&self, out: &mut Vec<Frame>, hists: &OpHists) {
        let mut st = self.state.lock();
        if st.queue.is_empty() {
            return;
        }
        let now = Instant::now();
        out.extend(st.queue.drain(..).map(|(queued_at, frame)| {
            hists.queue_wait.record(now.saturating_duration_since(queued_at).as_nanos() as u64);
            frame
        }));
        drop(st);
        // The whole queue emptied at once: every sender blocked on a full
        // queue can proceed, so wake them all.
        self.not_full.notify_all();
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// One outbound link's send state, shared by the protocol threads that
/// post frames and the link's writer thread.
struct Link {
    queue: SendQueue,
    /// The socket, owned by whoever is currently flushing to it: the
    /// writer thread for queued bursts, a sending thread for inline
    /// writes. Lock order is always wire, then `queue.state`.
    wire: Mutex<TcpStream>,
}

impl Link {
    /// Send one frame. Fast path: when the wire lock is free, the calling
    /// thread enqueues its frame and becomes the *combiner* — it drains
    /// and flushes the queue itself, repeatedly, until nothing is left.
    /// No writer-thread wakeup, no context switch, no handoff (on a busy
    /// single-core host the handoff costs more than the write itself),
    /// and frames posted by other threads mid-write ride out in the
    /// combiner's next coalesced batch. When the wire is busy, the frame
    /// is queued with a writer-thread notify as the delivery backstop:
    /// the current combiner usually picks it up on its next drain, and
    /// the writer thread covers the race where it does not.
    ///
    /// FIFO safety: every frame goes through the queue, and the queue is
    /// only drained while the wire lock is held, so frames reach the
    /// socket exactly in queue order.
    fn send(&self, frame: Frame, pool: &BufferPool, m: &Metrics, hists: &OpHists) {
        match self.wire.try_lock() {
            Some(mut wire) => {
                // Common case: nothing queued ahead of us — write the one
                // frame straight from the stack, no queue round trip, no
                // batch allocation. Otherwise join the queue behind the
                // backlog and flush it all, oldest first.
                {
                    let mut st = self.queue.state.lock();
                    if st.closed {
                        return;
                    }
                    if !st.queue.is_empty() {
                        st.queue.push_back((Instant::now(), frame));
                        drop(st);
                        self.combine(&mut wire, pool, m, hists);
                        return;
                    }
                }
                m.record_fabric_write(1);
                let mut scratch = pooled_scratch(pool, m);
                let flushing = Instant::now();
                let res = write_batch(&mut *wire, std::slice::from_ref(&frame), &mut scratch);
                hists.flush.record(flushing.elapsed().as_nanos() as u64);
                pool.put(scratch);
                if res.is_err() {
                    // Peer gone: stop accepting frames so senders do not
                    // block on a queue nobody drains.
                    self.queue.close();
                    return;
                }
                // Frames posted while we wrote ride out in our next batch
                // instead of waiting for a writer-thread wakeup.
                self.combine(&mut wire, pool, m, hists);
            }
            None => self.queue.push(frame),
        }
    }

    /// Flush the queue until it is empty, as coalesced batches, while the
    /// caller holds the wire lock. The no-backlog case never gets here
    /// ([`Link::send`] checks first), so the Vec is not on the fast path.
    fn combine(&self, wire: &mut TcpStream, pool: &BufferPool, m: &Metrics, hists: &OpHists) {
        let mut batch = Vec::new();
        loop {
            self.queue.drain(&mut batch, hists);
            if batch.is_empty() {
                return;
            }
            m.record_fabric_write(batch.len() as u64);
            let mut scratch = pooled_scratch(pool, m);
            let flushing = Instant::now();
            let res = write_batch(wire, &batch, &mut scratch);
            hists.flush.record(flushing.elapsed().as_nanos() as u64);
            pool.put(scratch);
            batch.clear();
            if res.is_err() {
                // Peer gone: stop accepting frames so senders do not
                // block on a queue nobody drains.
                self.queue.close();
                return;
            }
        }
    }
}

struct PeerLink {
    link: Arc<Link>,
    /// Clone of the link's stream, kept to force-close it at shutdown.
    stream: TcpStream,
    writer: Mutex<Option<JoinHandle<()>>>,
}

struct FabricInner {
    node: NodeId,
    metrics: Arc<ClusterMetrics>,
    /// Latency histograms (`flush`, `queue_wait`) shared with the node's
    /// parameter server so one report covers the whole process.
    obs: Arc<Observability>,
    /// Scratch buffers shared by this fabric's writer and reader threads.
    pool: Arc<BufferPool>,
    inboxes: Vec<Inbox>,
    /// Indexed by peer node id; `None` for self.
    peers: Vec<Option<PeerLink>>,
    open: AtomicBool,
    /// How long shutdown waits for writers to drain their queues before
    /// closing the sockets under them (the cluster's one timeout budget,
    /// [`crate::bootstrap::ClusterOptions::timeout`]).
    drain_grace: Duration,
    /// Inbound streams, kept to unblock their readers at shutdown.
    reader_streams: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Bootstrap barrier acknowledgements received so far.
    barrier_seen: Mutex<u32>,
    barrier_cv: Condvar,
}

impl FabricInner {
    fn send(&self, frame: Frame) {
        if frame.dst.node == self.node {
            self.deliver_local(frame);
            return;
        }
        // Account real network traffic on the sending node, excluding
        // fabric-internal control frames (bootstrap barrier).
        let m = self.metrics.node(self.node);
        if frame.dst.port != CTRL_PORT {
            m.inc(|m| &m.msgs_sent);
            m.add(|m| &m.bytes_sent, frame.wire_bytes() as u64);
        }
        match self.peers.get(frame.dst.node.index()).and_then(|p| p.as_ref()) {
            Some(p) => p.link.send(frame, &self.pool, m, &self.obs.hists),
            None => debug_assert!(false, "no link to node {}", frame.dst.node),
        }
    }

    fn deliver_local(&self, frame: Frame) {
        if frame.dst.port == CTRL_PORT {
            self.note_barrier();
            return;
        }
        match self.inboxes.get(frame.dst.port as usize) {
            Some(inbox) => inbox.push(frame),
            None => debug_assert!(false, "frame for unknown port {}", frame.dst),
        }
    }

    fn note_barrier(&self) {
        *self.barrier_seen.lock() += 1;
        self.barrier_cv.notify_all();
    }

    /// Wait until `n` barrier control frames arrived (bootstrap).
    fn wait_barrier(&self, n: u32, deadline: Instant) -> bool {
        let mut seen = self.barrier_seen.lock();
        while *seen < n {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.barrier_cv.wait_for(&mut seen, deadline - now);
        }
        true
    }

    fn close(&self) {
        if self.open.swap(false, Ordering::SeqCst) {
            // Stop accepting outbound work; writers drain what is queued.
            for p in self.peers.iter().flatten() {
                p.link.queue.close();
            }
            // Give the writers a bounded grace period to flush (the normal
            // case: a few frames to a live peer). A writer wedged mid-write
            // on a dead or stalled peer must not hang shutdown forever, so
            // after the grace — the cluster's configured timeout budget,
            // not a built-in constant — the socket is closed under it,
            // which errors the write out, and the join is then safe.
            let grace = Instant::now() + self.drain_grace;
            for p in self.peers.iter().flatten() {
                let handle = p.writer.lock().take();
                if let Some(h) = handle {
                    while !h.is_finished() && Instant::now() < grace {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    let _ = p.stream.shutdown(Shutdown::Both);
                    let _ = h.join();
                } else {
                    let _ = p.stream.shutdown(Shutdown::Both);
                }
            }
            // Unblock and collect the readers.
            for s in self.reader_streams.lock().drain(..) {
                let _ = s.shutdown(Shutdown::Both);
            }
            for h in self.readers.lock().drain(..) {
                let _ = h.join();
            }
            // Wake everything still parked on an inbox or the barrier.
            for inbox in &self.inboxes {
                inbox.close();
            }
            self.barrier_cv.notify_all();
        }
    }
}

/// Take a pooled scratch buffer, mirroring the hit/miss into `m`.
fn pooled_scratch(pool: &BufferPool, m: &Metrics) -> Vec<u8> {
    let (scratch, hit) = pool.take();
    let counter: fn(&Metrics) -> &AtomicU64 =
        if hit { |m| &m.pool_hits } else { |m| &m.pool_misses };
    m.inc(counter);
    scratch
}

/// Spawn the writer thread draining `link`'s queue into its socket (one
/// per outbound link). Each wakeup drains the whole queue and flushes it
/// as a single coalesced write ([`write_batch`]): N queued frames cost
/// one syscall and zero per-frame allocations. Idle-wire sends bypass
/// this thread entirely ([`Link::send`]); it only runs when the wire is
/// contended. Failure is an `io::Error` the connect path reports.
fn spawn_writer(
    node: NodeId,
    peer: NodeId,
    link: Arc<Link>,
    pool: Arc<BufferPool>,
    metrics: Arc<ClusterMetrics>,
    obs: Arc<Observability>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(format!("nups-net-tx-{node}-to-{peer}")).spawn(move || {
        let m = metrics.node(node);
        let mut batch: Vec<Frame> = Vec::new();
        let mut parked = 0u64;
        while link.queue.wait_nonempty(&mut parked) {
            m.add(|m| &m.writer_wakeups, std::mem::take(&mut parked));
            // Wire first, then drain: the queue is only ever drained under
            // the wire lock, so queue order is socket order. The frames
            // this thread woke for may already be gone — a combining
            // sender ([`Link::send`]) flushes whatever is queued while it
            // holds the wire — so an empty drain just re-parks.
            let mut wire = link.wire.lock();
            link.queue.drain(&mut batch, &obs.hists);
            if batch.is_empty() {
                continue;
            }
            m.record_fabric_write(batch.len() as u64);
            let mut scratch = pooled_scratch(&pool, m);
            let flushing = Instant::now();
            let res = write_batch(&mut *wire, &batch, &mut scratch);
            obs.hists.flush.record(flushing.elapsed().as_nanos() as u64);
            drop(wire);
            pool.put(scratch);
            batch.clear();
            if res.is_err() {
                // Peer gone: stop accepting frames so senders do not
                // block on a queue nobody drains.
                link.queue.close();
                break;
            }
        }
        m.add(|m| &m.writer_wakeups, parked);
    })
}

/// Close the queues and sockets of the links assembled before a
/// construction failure, so their writer threads exit.
fn teardown_links(peers: &[Option<PeerLink>]) {
    for p in peers.iter().flatten() {
        p.link.queue.close();
        let _ = p.stream.shutdown(Shutdown::Both);
    }
}

/// One node's TCP fabric (see module docs). Construct via
/// [`crate::bootstrap::connect_cluster`].
pub struct TcpFabric {
    inner: Arc<FabricInner>,
}

impl TcpFabric {
    /// Assemble a fabric from established, hello-validated connections.
    /// `outbound[i]` carries frames to node `i`; `inbound` streams are
    /// drained by reader threads. Used by the bootstrap (and directly by
    /// tests that build meshes by hand).
    pub(crate) fn assemble(
        node: NodeId,
        topology: Topology,
        metrics: Arc<ClusterMetrics>,
        obs: Arc<Observability>,
        outbound: Vec<(NodeId, TcpStream)>,
        inbound: Vec<TcpStream>,
        drain_grace: Duration,
    ) -> std::io::Result<TcpFabric> {
        let inboxes = (0..topology.ports_per_node()).map(|_| Inbox::new()).collect();
        let pool = Arc::new(BufferPool::default());
        let mut peers: Vec<Option<PeerLink>> = (0..topology.n_nodes).map(|_| None).collect();
        for (peer, stream) in outbound {
            assert_ne!(peer, node, "a node does not dial itself");
            // Batching is the fabric's job now; Nagle's algorithm would only
            // add latency on top of our own coalescing. Best-effort: a link
            // that cannot set the option still carries frames.
            let _ = stream.set_nodelay(true);
            // A clone or spawn failure (fd or thread exhaustion) surfaces
            // as the connect path's error; tear down the links built so
            // far so their writer threads exit instead of leaking.
            let wire_stream = stream.try_clone().inspect_err(|_| teardown_links(&peers))?;
            let link = Arc::new(Link { queue: SendQueue::new(), wire: Mutex::new(wire_stream) });
            let writer = spawn_writer(
                node,
                peer,
                Arc::clone(&link),
                Arc::clone(&pool),
                Arc::clone(&metrics),
                Arc::clone(&obs),
            )
            .inspect_err(|_| {
                let _ = stream.shutdown(Shutdown::Both);
                teardown_links(&peers);
            })?;
            peers[peer.index()] = Some(PeerLink { link, stream, writer: Mutex::new(Some(writer)) });
        }

        let inner = Arc::new(FabricInner {
            node,
            metrics,
            obs,
            pool,
            inboxes,
            peers,
            open: AtomicBool::new(true),
            drain_grace,
            reader_streams: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            barrier_seen: Mutex::new(0),
            barrier_cv: Condvar::new(),
        });

        for stream in inbound {
            let _ = stream.set_nodelay(true);
            let reader_inner = Arc::clone(&inner);
            let reader_stream = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    inner.close();
                    return Err(e);
                }
            };
            inner.reader_streams.lock().push(stream);
            let spawned =
                std::thread::Builder::new().name(format!("nups-net-rx-{node}")).spawn(move || {
                    let m = reader_inner.metrics.node(reader_inner.node);
                    let mut r = BufReader::with_capacity(READ_BUF_BYTES, reader_stream);
                    loop {
                        let mut scratch = pooled_scratch(&reader_inner.pool, m);
                        let res = read_frame_pooled(&mut r, &mut scratch);
                        reader_inner.pool.put(scratch);
                        match res {
                            Ok(frame) => {
                                debug_assert_eq!(
                                    frame.dst.node, reader_inner.node,
                                    "peer routed a frame to the wrong node"
                                );
                                if frame.dst.node == reader_inner.node {
                                    reader_inner.deliver_local(frame);
                                }
                            }
                            // Clean close or socket teardown: the link is
                            // done, silently (shutdown is the normal case).
                            Err(ReadError::Eof) | Err(ReadError::Io(_)) => break,
                            // A protocol violation must be *observable* —
                            // a silently dead link shows up only as a
                            // worker hung in recv with no diagnostics.
                            Err(ReadError::Frame(e)) => {
                                eprintln!(
                                    "[nups-net {}] dropping inbound link: {e}",
                                    reader_inner.node
                                );
                                debug_assert!(false, "bad frame from peer: {e}");
                                break;
                            }
                        }
                    }
                });
            match spawned {
                Ok(handle) => inner.readers.lock().push(handle),
                Err(e) => {
                    // `close` shuts every stream and queue, so the writers
                    // and readers spawned so far all exit before we report.
                    inner.close();
                    return Err(e);
                }
            }
        }

        Ok(TcpFabric { inner })
    }

    /// Internal handle for bootstrap coordination.
    pub(crate) fn wait_barrier(&self, n: u32, deadline: Instant) -> bool {
        self.inner.wait_barrier(n, deadline)
    }

    /// Close connections and unblock every reader and bound port.
    /// Idempotent; also runs on drop.
    pub fn close(&self) {
        self.inner.close();
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.inner.close();
    }
}

impl Fabric for TcpFabric {
    fn bind(&self, addr: Addr) -> Box<dyn Port> {
        assert_eq!(addr.node, self.inner.node, "cannot bind a remote node's port");
        let inbox = self
            .inner
            .inboxes
            .get(addr.port as usize)
            .unwrap_or_else(|| panic!("address {addr} outside this topology's port range"));
        let mut st = inbox.state.lock();
        assert!(!st.bound, "address {addr} bound twice");
        st.bound = true;
        drop(st);
        Box::new(TcpPort { inner: Arc::clone(&self.inner), addr })
    }

    fn post(&self, frame: Frame) {
        self.inner.send(frame);
    }

    fn shutdown(&self) {
        self.inner.close();
    }
}

/// One bound (node, port) inbox on the TCP fabric.
pub struct TcpPort {
    inner: Arc<FabricInner>,
    addr: Addr,
}

impl TcpPort {
    #[inline]
    fn inbox(&self) -> &Inbox {
        &self.inner.inboxes[self.addr.port as usize]
    }
}

impl Port for TcpPort {
    fn addr(&self) -> Addr {
        self.addr
    }

    fn send(&self, dst: Addr, sent_at: SimTime, payload: bytes::Bytes) {
        self.inner.send(Frame { src: self.addr, dst, sent_at, payload });
    }

    fn recv(&self) -> Option<Frame> {
        let inbox = self.inbox();
        let mut st = inbox.state.lock();
        loop {
            if let Some(f) = st.queue.pop_front() {
                return Some(f);
            }
            if st.closed {
                return None;
            }
            inbox.cv.wait(&mut st);
        }
    }

    fn recv_deadline(&self, deadline: Instant) -> RecvOutcome {
        let inbox = self.inbox();
        let mut st = inbox.state.lock();
        loop {
            if let Some(f) = st.queue.pop_front() {
                return RecvOutcome::Frame(f);
            }
            if st.closed {
                return RecvOutcome::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvOutcome::TimedOut;
            }
            let _ = inbox.cv.wait_for(&mut st, deadline - now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::TcpListener;

    /// A fabric whose peer accepts the connection but never reads a byte,
    /// with enough in flight to wedge a write in the kernel. Shutdown must
    /// wait exactly the *configured* drain grace — not the 5 seconds the
    /// fabric once hardcoded — before closing the socket under the stuck
    /// write and joining its threads.
    #[test]
    fn shutdown_honors_the_configured_drain_grace() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let outbound = TcpStream::connect(addr).expect("connect");
        let (_parked, _) = listener.accept().expect("accept");

        let grace = Duration::from_millis(300);
        let topology = Topology::new(2, 1);
        let metrics = Arc::new(ClusterMetrics::new(2));
        let fabric = TcpFabric::assemble(
            NodeId(0),
            topology,
            metrics,
            Arc::new(Observability::new()),
            vec![(NodeId(1), outbound)],
            Vec::new(),
            grace,
        )
        .expect("assemble");

        // Sender A: a payload far past the socket buffers blocks inside the
        // kernel, holding the wire lock.
        let inner_a = Arc::clone(&fabric.inner);
        let a = std::thread::spawn(move || {
            inner_a.send(Frame {
                src: Addr::server(NodeId(0)),
                dst: Addr::server(NodeId(1)),
                sent_at: SimTime::ZERO,
                payload: Bytes::from(vec![0u8; 32 << 20]),
            });
        });
        std::thread::sleep(Duration::from_millis(100));
        // Sender B: finds the wire busy, queues — waking the writer thread,
        // which now blocks on the held wire lock. The writer can never
        // finish on its own, so close() must fall back to the grace.
        let inner_b = Arc::clone(&fabric.inner);
        let b = std::thread::spawn(move || {
            inner_b.send(Frame {
                src: Addr::server(NodeId(0)),
                dst: Addr::server(NodeId(1)),
                sent_at: SimTime::ZERO,
                payload: Bytes::from(vec![1u8; 8]),
            });
        });
        std::thread::sleep(Duration::from_millis(100));

        let t0 = Instant::now();
        fabric.close();
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(250),
            "close returned inside the grace: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(3),
            "close must honor the configured grace, not a built-in constant: {elapsed:?}"
        );
        a.join().expect("sender a");
        b.join().expect("sender b");
    }
}
