//! The adaptive variant through the experiment runner: a real ML task
//! (tiny MF) must run to completion with adaptation enabled, produce a
//! comparable quality to the static variant, and record its adaptation
//! machinery in the metrics.

use nups_bench::runner::{run, RunConfig};
use nups_bench::{build_task, Scale, TaskKind, VariantSpec};
use nups_core::adaptive::AdaptiveConfig;
use nups_sim::topology::Topology;

#[test]
fn adaptive_variant_trains_mf_end_to_end() {
    let topology = Topology::new(2, 1);
    let factory = move |topo| build_task(TaskKind::Mf, Scale::Tiny, topo);
    let cfg = RunConfig::new(topology, 2);

    let stat = run(&factory, &VariantSpec::nups_untuned(), &cfg);
    // Adapt at every merge: the tiny run only crosses a few 40 ms sync
    // boundaries, so the default every-4th cadence may never come due.
    let adaptive = AdaptiveConfig { adapt_every: 1, ..AdaptiveConfig::default() };
    let adap = run(&factory, &VariantSpec::nups_adaptive(adaptive), &cfg);

    let q_static = stat.final_quality().expect("static run evaluates");
    let q_adaptive = adap.final_quality().expect("adaptive run evaluates");
    // MF quality is RMSE (lower is better); adaptation must not wreck
    // convergence. Both runs train the same data, so parity within 20%.
    assert!(
        q_adaptive <= q_static * 1.2,
        "adaptive RMSE {q_adaptive} far worse than static {q_static}"
    );
    // The adaptation machinery ran (rounds fire even when nothing is hot
    // enough to migrate at this scale); the static variant has none.
    assert!(adap.metrics.adaptation_rounds > 0, "no adaptation round fired");
    assert_eq!(stat.metrics.adaptation_rounds, 0);
    assert_eq!(stat.metrics.promotions + stat.metrics.demotions, 0);
}
