//! Per-worker virtual clocks and cluster-level aggregation.
//!
//! Each worker thread owns a [`WorkerClock`] and charges every action it
//! performs (compute, shared-memory access, remote round trips) to it. The
//! clocks are backed by shared atomics so that other components — the
//! replica-sync coordinator, the in-flight relocation bookkeeping — can read
//! a worker's position on the virtual timeline without synchronizing with
//! it.
//!
//! Virtual makespan of a phase = `max` over workers of elapsed virtual time,
//! which is how epoch "run times" are computed (the slowest worker finishes
//! the epoch).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};
use crate::topology::{Topology, WorkerId};

/// Shared storage for every worker clock in the cluster.
#[derive(Debug)]
pub struct ClusterClocks {
    topology: Topology,
    cells: Vec<Arc<AtomicU64>>,
}

impl ClusterClocks {
    pub fn new(topology: Topology) -> ClusterClocks {
        let cells = (0..topology.total_workers()).map(|_| Arc::new(AtomicU64::new(0))).collect();
        ClusterClocks { topology, cells }
    }

    /// Handle for the given worker. Each worker should hold exactly one.
    pub fn worker_clock(&self, worker: WorkerId) -> WorkerClock {
        WorkerClock { cell: Arc::clone(&self.cells[self.topology.worker_index(worker)]), cached: 0 }
    }

    /// Earliest position of any worker on the virtual timeline.
    pub fn min_time(&self) -> SimTime {
        SimTime(self.cells.iter().map(|c| c.load(Ordering::Relaxed)).min().unwrap_or(0))
    }

    /// Latest position of any worker: the virtual makespan.
    pub fn max_time(&self) -> SimTime {
        SimTime(self.cells.iter().map(|c| c.load(Ordering::Relaxed)).max().unwrap_or(0))
    }

    /// Latest position among the workers of one node.
    pub fn node_max_time(&self, node: crate::topology::NodeId) -> SimTime {
        let wpn = self.topology.workers_per_node as usize;
        let base = node.index() * wpn;
        SimTime(
            self.cells[base..base + wpn]
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        )
    }

    /// Advance every worker that lags behind `t` up to `t`. Used at epoch
    /// barriers: a barrier means every worker waited for the slowest one.
    pub fn align_to(&self, t: SimTime) {
        for c in &self.cells {
            c.fetch_max(t.0, Ordering::Relaxed);
        }
    }

    /// Align all workers to the current makespan and return it.
    pub fn barrier(&self) -> SimTime {
        let t = self.max_time();
        self.align_to(t);
        t
    }

    pub fn topology(&self) -> Topology {
        self.topology
    }
}

/// One worker's virtual clock. Writes go through to the shared cell so other
/// threads observe progress; reads of our own position use a cached value
/// (we are the only writer).
#[derive(Debug)]
pub struct WorkerClock {
    cell: Arc<AtomicU64>,
    cached: u64,
}

impl WorkerClock {
    /// Current position on the virtual timeline.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.cached)
    }

    /// Charge `d` of virtual time to this worker.
    #[inline]
    pub fn advance(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.cached += d.as_nanos();
        self.cell.store(self.cached, Ordering::Relaxed);
    }

    /// Move this worker forward to `t` if it is behind (e.g. it blocked on
    /// an event that completes at `t`). Returns the waiting time charged.
    #[inline]
    pub fn advance_to(&mut self, t: SimTime) -> SimDuration {
        if t.0 > self.cached {
            let waited = SimDuration(t.0 - self.cached);
            self.cached = t.0;
            self.cell.store(self.cached, Ordering::Relaxed);
            waited
        } else {
            SimDuration::ZERO
        }
    }

    /// Refresh the cached value from the shared cell. Only needed after an
    /// external `align_to`/`barrier`.
    #[inline]
    pub fn refresh(&mut self) {
        self.cached = self.cell.load(Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    #[test]
    fn advance_and_makespan() {
        let t = Topology::new(2, 2);
        let clocks = ClusterClocks::new(t);
        let mut w0 = clocks.worker_clock(WorkerId { node: NodeId(0), local: 0 });
        let mut w3 = clocks.worker_clock(WorkerId { node: NodeId(1), local: 1 });

        w0.advance(SimDuration::from_millis(5));
        w3.advance(SimDuration::from_millis(9));
        assert_eq!(clocks.min_time(), SimTime::ZERO); // two workers never moved
        assert_eq!(clocks.max_time(), SimTime(9_000_000));
        assert_eq!(clocks.node_max_time(NodeId(0)), SimTime(5_000_000));
        assert_eq!(clocks.node_max_time(NodeId(1)), SimTime(9_000_000));
    }

    #[test]
    fn advance_to_charges_only_forward() {
        let clocks = ClusterClocks::new(Topology::new(1, 1));
        let mut w = clocks.worker_clock(WorkerId { node: NodeId(0), local: 0 });
        w.advance(SimDuration::from_micros(10));
        assert_eq!(w.advance_to(SimTime(5_000)), SimDuration::ZERO);
        assert_eq!(w.now(), SimTime(10_000));
        assert_eq!(w.advance_to(SimTime(25_000)), SimDuration(15_000));
        assert_eq!(w.now(), SimTime(25_000));
    }

    #[test]
    fn barrier_aligns_everyone() {
        let t = Topology::new(2, 1);
        let clocks = ClusterClocks::new(t);
        let mut w0 = clocks.worker_clock(WorkerId { node: NodeId(0), local: 0 });
        let mut w1 = clocks.worker_clock(WorkerId { node: NodeId(1), local: 0 });
        w0.advance(SimDuration::from_secs(1));
        w1.advance(SimDuration::from_secs(3));
        let t_bar = clocks.barrier();
        assert_eq!(t_bar, SimTime(3_000_000_000));
        w0.refresh();
        w1.refresh();
        assert_eq!(w0.now(), t_bar);
        assert_eq!(w1.now(), t_bar);
        assert_eq!(clocks.min_time(), t_bar);
    }
}
