//! Figure 10: effect of the sampling scheme (independent / sample reuse
//! U=16 and U=64 / reuse with postponing / local sampling) on run time and
//! per-epoch quality, for KGE and WV.
//!
//! Usage: cargo run --release -p nups-bench --bin fig10_sampling_schemes -- \
//!   [--task kge|wv] [--nodes 4] [--workers 2] [--epochs 5] [--scale small]

use nups_bench::report::{
    fmt_duration, fmt_quality, fmt_speedup, print_series, print_table, raw_speedup,
};
use nups_bench::{build_task, run, Args, RunConfig, TaskKind, VariantSpec};

fn main() {
    let args = Args::parse();
    let topology = args.topology();
    let epochs = args.epochs(5);

    for kind in args.tasks() {
        if kind == TaskKind::Mf {
            continue; // no sampling access in MF
        }
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);
        let cfg = RunConfig::new(topology, epochs);

        println!("\n##### Figure 10 — sampling schemes on {} #####", kind.name());
        let mut results = Vec::new();
        for v in VariantSpec::scheme_ladder() {
            eprintln!("[fig10] {} / {}", kind.name(), v.name);
            let r = run(&factory, &v, &cfg);
            print_series(&r);
            results.push(r);
        }
        let independent = &results[0];
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    fmt_duration(r.epoch_time()),
                    fmt_quality(r.final_quality()),
                    fmt_speedup(Some(raw_speedup(independent, r))),
                    format!("{}", r.metrics.samples_drawn),
                    format!("{}", r.metrics.samples_remote),
                    format!("{}", r.metrics.samples_postponed),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 10 summary — {} (speedup vs independent)", kind.name()),
            &[
                "scheme",
                "epoch time",
                "final quality",
                "epoch speedup",
                "samples",
                "remote",
                "postponed",
            ],
            &rows,
        );
    }
}
