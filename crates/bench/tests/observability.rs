//! Acceptance tests for the observability layer: deterministic trace
//! export under the virtual-time backend, and the flight recorder firing
//! on an induced distributed-finalize timeout over real TCP sockets.

use std::net::{SocketAddr, TcpListener};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use nups_core::runtime::Backend;
use nups_core::system::{run_epoch, FinalizeOutcome};
use nups_core::{Deployment, NupsConfig, ParameterServer, PsWorker};
use nups_net::{connect_cluster, ClusterOptions};
use nups_sim::metrics::ClusterMetrics;
use nups_sim::topology::{NodeId, Topology};
use nups_sim::trace::{actor, Observability};

const VALUE_LEN: usize = 2;

fn init(key: u64, v: &mut [f32]) {
    v.fill((key % 5) as f32);
}

/// One seeded virtual-time run with a single driving worker: every
/// localize chain is settled by a blocking pull before the next op, so
/// the journaled event *set* is a pure function of the workload — and the
/// sorted Chrome export is then byte-identical across runs.
fn virtual_run_trace() -> String {
    let topo = Topology::new(2, 1);
    let cfg = NupsConfig::nups(topo, 32, VALUE_LEN);
    let ps = ParameterServer::new(cfg, init);
    let mut workers = ps.workers();
    run_epoch(&mut workers, |i, w| {
        if i != 0 {
            return;
        }
        let mut out = vec![0.0f32; VALUE_LEN];
        for k in 1..24u64 {
            w.localize(&[k]);
            w.pull(k, &mut out);
            w.push(k, &[1.0; VALUE_LEN]);
            w.charge_compute(100);
        }
    });
    drop(workers);
    assert_eq!(ps.observability().trace.dropped(), 0, "ring must not evict");
    let trace = ps.observability().chrome_trace();
    ps.shutdown();
    trace
}

#[test]
fn virtual_time_traces_are_byte_identical_across_runs() {
    let a = virtual_run_trace();
    let b = virtual_run_trace();
    // The trace is non-trivial: relocation chains were journaled.
    assert!(a.contains("\"name\":\"localize\""), "no localize events in:\n{a}");
    assert!(a.contains("\"name\":\"transfer_install\""), "no transfer events in:\n{a}");
    assert_eq!(a, b, "two seeded virtual-time runs must export identical traces");
}

/// Reserve a loopback rendezvous address (bind-and-drop).
fn rendezvous_addr() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0").expect("reserve port").local_addr().expect("addr")
}

#[test]
fn finalize_timeout_dumps_the_flight_record() {
    let topo = Topology::new(2, 1);
    let coordinator = rendezvous_addr();
    let cfg = move || NupsConfig::nups(topo, 16, VALUE_LEN).with_backend(Backend::WallClock);

    // Node 1 joins the cluster and then sits on its hands: it never calls
    // finalize, so the coordinator's peer-fin barrier must time out.
    let (hold_tx, hold_rx) = mpsc::channel::<()>();
    let peer = std::thread::spawn(move || {
        let metrics = Arc::new(ClusterMetrics::new(2));
        let obs = Arc::new(Observability::new());
        let opts = ClusterOptions::new(NodeId(1), topo, coordinator);
        let fabric =
            Arc::new(connect_cluster(&opts, Arc::clone(&metrics), Arc::clone(&obs)).expect("peer"));
        let ps = ParameterServer::deploy(
            cfg(),
            fabric,
            metrics,
            obs,
            Deployment::SingleNode(NodeId(1)),
            init,
        );
        let _ = hold_rx.recv();
        ps.shutdown();
    });

    let metrics = Arc::new(ClusterMetrics::new(2));
    let obs = Arc::new(Observability::new());
    let opts = ClusterOptions::new(NodeId(0), topo, coordinator);
    let fabric = Arc::new(
        connect_cluster(&opts, Arc::clone(&metrics), Arc::clone(&obs)).expect("coordinator"),
    );
    let ps = ParameterServer::deploy(
        cfg(),
        fabric,
        metrics,
        Arc::clone(&obs),
        Deployment::SingleNode(NodeId(0)),
        init,
    );

    let outcome = ps.finalize_distributed(Duration::from_millis(500));
    assert!(matches!(outcome, FinalizeOutcome::TimedOut), "expected a timeout, got {outcome:?}");

    // The journal holds the whole story, in order: the bootstrap phases,
    // the finalize attempt, and the timeout that killed it.
    let events = obs.trace.events();
    let pos = |name: &str| {
        events
            .iter()
            .position(|e| e.name == name)
            .unwrap_or_else(|| panic!("event {name:?} missing from the journal"))
    };
    let boot = pos("bootstrap_done");
    let start = pos("finalize_start");
    let quiesced = pos("finalize_quiesced");
    let timeout = pos("finalize_timeout");
    assert!(boot < start && start < quiesced && quiesced < timeout, "span sequence out of order");
    assert_eq!(events[boot].actor, actor::FABRIC);
    assert_eq!(events[timeout].actor, actor::CONTROL);

    // And the flight record renders that sequence for the stderr dump
    // (finalize_distributed already printed one; this checks the content).
    let record = obs.flight_record("induced finalize timeout");
    assert!(record.starts_with("==== flight record: induced finalize timeout ===="));
    for name in ["bootstrap_done", "finalize_start", "finalize_quiesced", "finalize_timeout"] {
        assert!(record.contains(name), "flight record misses {name}:\n{record}");
    }
    assert!(record.ends_with("==== end flight record ====\n"));

    ps.shutdown();
    hold_tx.send(()).expect("release the peer");
    peer.join().expect("peer thread");
}
