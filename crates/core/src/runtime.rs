//! The pluggable runtime layer: which substrate a parameter server runs on.
//!
//! `nups-core` historically programmed against `nups_sim` concretely: every
//! wait loop charged a virtual [`WorkerClock`], every message was priced by
//! a [`CostModel`], and "run time" meant the virtual makespan. That made
//! the system a *model* of NuPS but never an executable one. This module
//! splits policy from substrate behind four traits:
//!
//! * [`RuntimeClock`] — how time passes for one worker thread
//!   (`now`/`advance`/`advance_to`).
//! * [`Pricing`] — what an action costs on the runtime's timeline.
//! * [`Fabric`]/[`Port`] — the message fabric (`bind`/`send`/`recv`); byte
//!   accounting stays exact because frames are encoded either way.
//! * [`Runtime`] — the backend handle tying them together, plus the
//!   parking-based progress waits used by control-plane retry loops.
//!
//! Two backends are provided:
//!
//! * [`VirtualRuntime`] — the deterministic simulator. Clocks are the
//!   existing per-worker virtual clocks, pricing is the calibrated
//!   [`CostModel`], and `measure` returns the *modelled* duration of a
//!   merge. Behavior is byte-identical to the pre-refactor simulator
//!   (`tests/determinism.rs` guards this).
//! * [`WallClockRuntime`] — real execution. `now()` reads a monotonic
//!   anchor, charges are no-ops (real time passes on its own), pricing is
//!   free (nothing is modelled), waits are real thread blocking, the sync
//!   gate fires on real elapsed time, and `measure` times the merge with
//!   [`Instant`]. Metrics then report actual keys/sec and wall-clock epoch
//!   times.
//!
//! Both backends run on the in-process channel fabric ([`SimFabric`]): the
//! simulator's network *transport* is real (threads, channels, condvars) —
//! only the time overlay differs. A future distributed backend would
//! implement [`Fabric`] over sockets.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use nups_sim::clock::{ClusterClocks, WorkerClock};
use nups_sim::cost::CostModel;
use nups_sim::net::{Endpoint, Frame, Network};
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::{Addr, WorkerId};

/// Which execution substrate a parameter server runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Deterministic virtual-time simulation (the default): every action
    /// is priced by the cost model and "run time" is the virtual makespan.
    #[default]
    Virtual,
    /// Real execution: waits block for real, the replica-sync gate fires
    /// on real elapsed time, and run time is wall-clock time.
    WallClock,
}

impl Backend {
    /// Parse a CLI spelling (`sim`/`virtual` or `wall`/`wallclock`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "sim" | "virtual" => Some(Backend::Virtual),
            "wall" | "wallclock" | "wall-clock" => Some(Backend::WallClock),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Backend::Virtual => "sim",
            Backend::WallClock => "wall",
        }
    }
}

/// One worker thread's clock on the runtime's timeline.
///
/// The virtual backend charges modelled durations to a shared cell other
/// threads can observe; the wall-clock backend reads a monotonic anchor and
/// treats charges as no-ops (the wait they model already happened for
/// real, inside the blocking primitive).
pub trait RuntimeClock: Send {
    /// Current position on the runtime's timeline.
    fn now(&self) -> SimTime;

    /// Charge a modelled duration to this worker.
    fn advance(&mut self, d: SimDuration);

    /// Block until `t`: move the clock forward if it is behind (e.g. the
    /// worker waited on an event completing at `t`). Returns the waiting
    /// time charged.
    fn advance_to(&mut self, t: SimTime) -> SimDuration;

    /// Re-read the clock after an external barrier alignment.
    fn refresh(&mut self);
}

struct VirtualClock(WorkerClock);

impl RuntimeClock for VirtualClock {
    fn now(&self) -> SimTime {
        self.0.now()
    }

    fn advance(&mut self, d: SimDuration) {
        self.0.advance(d);
    }

    fn advance_to(&mut self, t: SimTime) -> SimDuration {
        self.0.advance_to(t)
    }

    fn refresh(&mut self) {
        self.0.refresh();
    }
}

struct WallClock {
    anchor: Instant,
}

impl RuntimeClock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(self.anchor.elapsed().as_nanos() as u64)
    }

    fn advance(&mut self, _d: SimDuration) {
        // Real time passes on its own; modelled charges do not apply.
    }

    fn advance_to(&mut self, _t: SimTime) -> SimDuration {
        // Real waiting happens inside the blocking primitive that produced
        // the stamp; there is nothing left to charge.
        SimDuration::ZERO
    }

    fn refresh(&mut self) {}
}

/// Pricing hooks: what each action costs on the runtime's timeline.
///
/// The virtual backend delegates to the calibrated [`CostModel`]; the
/// wall-clock backend prices everything at zero because nothing is
/// modelled — durations come from real execution instead.
pub trait Pricing: Send + Sync {
    /// Cost of one message of `payload_bytes` (latency + wire transfer).
    fn message(&self, payload_bytes: usize) -> SimDuration;

    /// Cost of touching `bytes` of value data through shared memory.
    fn shared_memory_access(&self, bytes: usize) -> SimDuration;

    /// Fixed cost of one key access (latch + lookup).
    fn local_access(&self) -> SimDuration;

    /// Cost of `flops` floating-point operations on one worker.
    fn compute(&self, flops: u64) -> SimDuration;

    /// Cost of an intra-process message (the Petuum access path).
    fn intra_process_msg(&self) -> SimDuration;

    /// Duration of a one-to-many broadcast to `peers` receivers.
    fn broadcast(&self, peers: u16, payload_bytes: usize) -> SimDuration;

    /// Duration of one sparse all-reduce over `rounds` rounds.
    fn allreduce(&self, rounds: u32, bytes_per_round: usize) -> SimDuration;

    /// Cost of a synchronous remote round trip.
    fn round_trip(&self, request_bytes: usize, response_bytes: usize) -> SimDuration {
        self.message(request_bytes) + self.message(response_bytes)
    }
}

impl Pricing for CostModel {
    fn message(&self, payload_bytes: usize) -> SimDuration {
        CostModel::message(self, payload_bytes)
    }

    fn shared_memory_access(&self, bytes: usize) -> SimDuration {
        CostModel::shared_memory_access(self, bytes)
    }

    fn local_access(&self) -> SimDuration {
        self.local_access
    }

    fn compute(&self, flops: u64) -> SimDuration {
        CostModel::compute(self, flops)
    }

    fn intra_process_msg(&self) -> SimDuration {
        self.intra_process_msg
    }

    fn broadcast(&self, peers: u16, payload_bytes: usize) -> SimDuration {
        CostModel::broadcast(self, peers, payload_bytes)
    }

    fn allreduce(&self, rounds: u32, bytes_per_round: usize) -> SimDuration {
        CostModel::allreduce(self, rounds, bytes_per_round)
    }
}

/// The wall-clock backend's pricing: free of charge — real execution costs
/// real time, which the clocks observe directly.
struct FreeRunning;

impl Pricing for FreeRunning {
    fn message(&self, _payload_bytes: usize) -> SimDuration {
        SimDuration::ZERO
    }

    fn shared_memory_access(&self, _bytes: usize) -> SimDuration {
        SimDuration::ZERO
    }

    fn local_access(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn compute(&self, _flops: u64) -> SimDuration {
        SimDuration::ZERO
    }

    fn intra_process_msg(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn broadcast(&self, _peers: u16, _payload_bytes: usize) -> SimDuration {
        SimDuration::ZERO
    }

    fn allreduce(&self, _rounds: u32, _bytes_per_round: usize) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Outcome of a bounded-time receive on a [`Port`].
#[derive(Debug)]
pub enum RecvOutcome {
    /// A frame arrived before the deadline.
    Frame(Frame),
    /// The deadline passed with the inbox still empty.
    TimedOut,
    /// The fabric shut down (or every sender is gone): no frame will ever
    /// arrive again. Callers must not retry.
    Closed,
}

/// The receiving half of one (node, port) address plus the ability to send
/// — what workers and servers hold instead of a concrete [`Endpoint`].
pub trait Port: Send {
    fn addr(&self) -> Addr;

    /// Send `payload` from this port. Byte accounting happens in the
    /// fabric, per sending node.
    fn send(&self, dst: Addr, sent_at: SimTime, payload: bytes::Bytes);

    /// Block until a frame arrives. `None` when every sender is gone
    /// (cluster shutdown).
    fn recv(&self) -> Option<Frame>;

    /// Block until a frame arrives or `deadline` passes. Implementations
    /// must park (channel/condvar wait), not spin: control-plane loops use
    /// this to stay responsive to shutdown without burning a core. The
    /// in-process fabric parks on the channel; the TCP fabric parks on the
    /// inbox condvar with a wait bounded by the remaining time.
    fn recv_deadline(&self, deadline: Instant) -> RecvOutcome;
}

impl Port for Endpoint {
    fn addr(&self) -> Addr {
        Endpoint::addr(self)
    }

    fn send(&self, dst: Addr, sent_at: SimTime, payload: bytes::Bytes) {
        Endpoint::send(self, dst, sent_at, payload);
    }

    fn recv(&self) -> Option<Frame> {
        Endpoint::recv(self)
    }

    fn recv_deadline(&self, deadline: Instant) -> RecvOutcome {
        use nups_sim::net::RecvTimeoutError;
        let timeout = deadline.saturating_duration_since(Instant::now());
        match self.recv_timeout(timeout) {
            Ok(f) => RecvOutcome::Frame(f),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
        }
    }
}

/// The cluster-wide message fabric: bind one [`Port`] per (node, port)
/// address, or post a frame without owning a port (control plane).
///
/// **Ordering contract:** frames between the same (source node,
/// destination node) pair must be delivered in the order they were
/// sent/posted, regardless of destination port. Protocol correctness
/// depends on it — e.g. the distributed finalize protocol takes a
/// [`crate::messages::Msg::SyncFin`] as proof that the
/// [`crate::messages::Msg::ReplicaDeltas`] posted before it were already
/// delivered. The in-process channel fabric (one FIFO per inbox, senders
/// enqueue synchronously) and the TCP fabric (one ordered connection per
/// directed node pair, demuxed by a single reader) both provide this; a
/// future backend using multiple connections per pair would have to
/// resequence.
pub trait Fabric: Send + Sync {
    /// Take ownership of the receiving side of `addr`. Panics if the
    /// address was already bound: each inbox has exactly one owner.
    fn bind(&self, addr: Addr) -> Box<dyn Port>;

    /// Inject a frame directly (shutdown signals, rendezvous-side sends).
    fn post(&self, frame: Frame);

    /// Tear the fabric down: close peer connections and unblock every
    /// reader ([`Port::recv`] returns `None`, [`Port::recv_deadline`]
    /// returns [`RecvOutcome::Closed`]). The in-process fabric has nothing
    /// to tear down — its channels disconnect when the senders drop — so
    /// the default is a no-op; socket-backed fabrics override it.
    fn shutdown(&self) {}
}

/// The in-process channel fabric both built-in backends run on: real
/// threads and real channels with exact per-node byte accounting.
pub struct SimFabric {
    net: Arc<Network>,
}

impl SimFabric {
    pub fn new(net: Arc<Network>) -> SimFabric {
        SimFabric { net }
    }
}

impl Fabric for SimFabric {
    fn bind(&self, addr: Addr) -> Box<dyn Port> {
        Box::new(self.net.bind(addr))
    }

    fn post(&self, frame: Frame) {
        self.net.send(frame);
    }
}

/// Parking-based progress waits for control-plane retry loops (evaluation
/// reads racing a relocation, migration settle/quiescence). Waiters park
/// on a condvar and are woken by [`WaitHub::notify`] whenever cluster
/// state advances (a transfer installs, a migration completes); a short
/// re-check slice bounds the damage of any missed notification.
struct WaitHub {
    generation: Mutex<u64>,
    progressed: Condvar,
    /// Parked-waiter count: notifiers on hot paths (every transfer
    /// install) skip the lock entirely while nobody waits. A skipped
    /// notification racing a freshly-registered waiter is safe: the
    /// waiter's condition check happens after registration, and the
    /// re-check slice in `wait_until` bounds any residual window.
    waiters: std::sync::atomic::AtomicUsize,
}

impl WaitHub {
    fn new() -> WaitHub {
        WaitHub {
            generation: Mutex::new(0),
            progressed: Condvar::new(),
            waiters: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn notify(&self) {
        use std::sync::atomic::Ordering;
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        *self.generation.lock() += 1;
        self.progressed.notify_all();
    }

    fn wait_until(&self, timeout: Duration, cond: &mut dyn FnMut() -> bool) -> bool {
        use std::sync::atomic::Ordering;
        // Fallback re-check period: progress the notifier did not (or could
        // not) announce is still observed promptly, without spin-sleeping.
        const SLICE: Duration = Duration::from_millis(10);
        let deadline = Instant::now() + timeout;
        // Register before the first condition check so a notifier cannot
        // observe zero waiters after progress this check would miss.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut generation = self.generation.lock();
        let satisfied = loop {
            if cond() {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            let _ = self.progressed.wait_for(&mut generation, SLICE.min(deadline - now));
        };
        drop(generation);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        satisfied
    }
}

/// One execution backend: clock construction, pricing, elapsed-time and
/// merge-duration observation, and the progress-wait primitives.
pub trait Runtime: Send + Sync {
    fn backend(&self) -> Backend;

    /// The pricing hooks every charge site routes through.
    fn pricing(&self) -> &dyn Pricing;

    /// Create the clock for one worker. Each worker holds exactly one.
    fn clock(&self, worker: WorkerId) -> Box<dyn RuntimeClock>;

    /// Cluster-wide elapsed time on this runtime's timeline: the virtual
    /// makespan, or real time since the server started.
    ///
    /// Trace-journal timestamps (`nups_sim::trace`) derive from this
    /// timeline — worker-side events from the worker's [`RuntimeClock`],
    /// control-plane events from `elapsed` — which is why virtual-time
    /// traces are byte-identical across seeded runs while wall-clock
    /// traces carry real durations.
    fn elapsed(&self) -> SimTime;

    /// Run a merge-style closure and report its duration on this runtime's
    /// timeline: the virtual backend returns the closure's *modelled*
    /// duration, the wall-clock backend times the real execution.
    fn measure(&self, work: &mut dyn FnMut() -> SimDuration) -> SimDuration;

    /// Park until `cond` holds or `timeout` expires; woken early by
    /// [`Runtime::notify_progress`]. Returns whether `cond` held.
    fn wait_until(&self, timeout: Duration, cond: &mut dyn FnMut() -> bool) -> bool;

    /// Wake every parked [`Runtime::wait_until`] caller to re-check its
    /// condition. Called after installs and migrations.
    fn notify_progress(&self);
}

/// The deterministic virtual-time backend (see module docs).
pub struct VirtualRuntime {
    cost: CostModel,
    clocks: Arc<ClusterClocks>,
    hub: WaitHub,
}

impl VirtualRuntime {
    pub fn new(cost: CostModel, clocks: Arc<ClusterClocks>) -> VirtualRuntime {
        VirtualRuntime { cost, clocks, hub: WaitHub::new() }
    }
}

impl Runtime for VirtualRuntime {
    fn backend(&self) -> Backend {
        Backend::Virtual
    }

    fn pricing(&self) -> &dyn Pricing {
        &self.cost
    }

    fn clock(&self, worker: WorkerId) -> Box<dyn RuntimeClock> {
        Box::new(VirtualClock(self.clocks.worker_clock(worker)))
    }

    fn elapsed(&self) -> SimTime {
        self.clocks.max_time()
    }

    fn measure(&self, work: &mut dyn FnMut() -> SimDuration) -> SimDuration {
        work()
    }

    fn wait_until(&self, timeout: Duration, cond: &mut dyn FnMut() -> bool) -> bool {
        self.hub.wait_until(timeout, cond)
    }

    fn notify_progress(&self) {
        self.hub.notify();
    }
}

/// The wall-clock backend (see module docs).
pub struct WallClockRuntime {
    anchor: Instant,
    hub: WaitHub,
}

impl WallClockRuntime {
    pub fn new() -> WallClockRuntime {
        WallClockRuntime { anchor: Instant::now(), hub: WaitHub::new() }
    }
}

impl Default for WallClockRuntime {
    fn default() -> WallClockRuntime {
        WallClockRuntime::new()
    }
}

impl Runtime for WallClockRuntime {
    fn backend(&self) -> Backend {
        Backend::WallClock
    }

    fn pricing(&self) -> &dyn Pricing {
        static FREE: FreeRunning = FreeRunning;
        &FREE
    }

    fn clock(&self, _worker: WorkerId) -> Box<dyn RuntimeClock> {
        Box::new(WallClock { anchor: self.anchor })
    }

    fn elapsed(&self) -> SimTime {
        SimTime(self.anchor.elapsed().as_nanos() as u64)
    }

    fn measure(&self, work: &mut dyn FnMut() -> SimDuration) -> SimDuration {
        let start = Instant::now();
        let _modelled = work();
        SimDuration(start.elapsed().as_nanos() as u64)
    }

    fn wait_until(&self, timeout: Duration, cond: &mut dyn FnMut() -> bool) -> bool {
        self.hub.wait_until(timeout, cond)
    }

    fn notify_progress(&self) {
        self.hub.notify();
    }
}

/// Build the runtime for a backend selection. `cost` and `clocks` feed the
/// virtual backend; the wall-clock backend ignores both.
pub fn build_runtime(
    backend: Backend,
    cost: CostModel,
    clocks: Arc<ClusterClocks>,
) -> Arc<dyn Runtime> {
    match backend {
        Backend::Virtual => Arc::new(VirtualRuntime::new(cost, clocks)),
        Backend::WallClock => Arc::new(WallClockRuntime::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nups_sim::topology::{NodeId, Topology};

    fn worker0() -> WorkerId {
        WorkerId { node: NodeId(0), local: 0 }
    }

    #[test]
    fn virtual_runtime_charges_like_the_worker_clock() {
        let clocks = Arc::new(ClusterClocks::new(Topology::new(1, 1)));
        let rt = VirtualRuntime::new(CostModel::cluster_default(), Arc::clone(&clocks));
        let mut c = rt.clock(worker0());
        c.advance(SimDuration::from_micros(5));
        assert_eq!(c.now(), SimTime(5_000));
        assert_eq!(c.advance_to(SimTime(9_000)), SimDuration(4_000));
        assert_eq!(c.advance_to(SimTime(1_000)), SimDuration::ZERO);
        // Charges are visible cluster-wide: elapsed is the makespan.
        assert_eq!(rt.elapsed(), SimTime(9_000));
        // Measure passes the modelled duration through untouched.
        let d = rt.measure(&mut || SimDuration::from_millis(7));
        assert_eq!(d, SimDuration::from_millis(7));
        assert_eq!(rt.backend(), Backend::Virtual);
    }

    #[test]
    fn virtual_pricing_matches_the_cost_model() {
        let cost = CostModel::cluster_default();
        let clocks = Arc::new(ClusterClocks::new(Topology::new(1, 1)));
        let rt = VirtualRuntime::new(cost, clocks);
        let p = rt.pricing();
        assert_eq!(p.message(128), cost.message(128));
        assert_eq!(p.round_trip(16, 256), cost.round_trip(16, 256));
        assert_eq!(p.shared_memory_access(64), cost.shared_memory_access(64));
        assert_eq!(p.compute(1000), cost.compute(1000));
        assert_eq!(p.broadcast(3, 40), cost.broadcast(3, 40));
        assert_eq!(p.allreduce(4, 512), cost.allreduce(4, 512));
        assert_eq!(p.local_access(), cost.local_access);
        assert_eq!(p.intra_process_msg(), cost.intra_process_msg);
    }

    #[test]
    fn wall_clock_charges_nothing_and_time_really_passes() {
        let rt = WallClockRuntime::new();
        assert_eq!(rt.backend(), Backend::WallClock);
        let p = rt.pricing();
        assert_eq!(p.message(1 << 20), SimDuration::ZERO);
        assert_eq!(p.compute(1 << 30), SimDuration::ZERO);
        let mut c = rt.clock(worker0());
        let t0 = c.now();
        c.advance(SimDuration::from_secs(100)); // no-op
        std::thread::sleep(Duration::from_millis(2));
        let t1 = c.now();
        assert!(t1 > t0, "wall clock must move on its own");
        assert!(t1 - t0 < SimDuration::from_secs(100), "charges must not apply");
        // Measure times the real execution, not the modelled return.
        let d = rt.measure(&mut || {
            std::thread::sleep(Duration::from_millis(2));
            SimDuration::from_secs(100)
        });
        assert!(d >= SimDuration::from_millis(1) && d < SimDuration::from_secs(10));
        assert!(rt.elapsed() > SimTime::ZERO);
    }

    #[test]
    fn wait_until_parks_and_wakes_on_notify() {
        let rt = Arc::new(WallClockRuntime::new());
        // With no waiter parked, notify is a cheap no-op (hot-path case:
        // every transfer install notifies).
        rt.notify_progress();
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (rt2, flag2) = (Arc::clone(&rt), Arc::clone(&flag));
        let waiter = std::thread::spawn(move || {
            rt2.wait_until(Duration::from_secs(10), &mut || {
                flag2.load(std::sync::atomic::Ordering::Relaxed)
            })
        });
        std::thread::sleep(Duration::from_millis(5));
        flag.store(true, std::sync::atomic::Ordering::Relaxed);
        rt.notify_progress();
        assert!(waiter.join().unwrap(), "waiter must observe the flag");
        // A condition that never holds times out with `false`.
        assert!(!rt.wait_until(Duration::from_millis(5), &mut || false));
        // An already-true condition returns immediately.
        assert!(rt.wait_until(Duration::ZERO, &mut || true));
    }

    #[test]
    fn backend_parses_cli_spellings() {
        assert_eq!(Backend::parse("sim"), Some(Backend::Virtual));
        assert_eq!(Backend::parse("virtual"), Some(Backend::Virtual));
        assert_eq!(Backend::parse("wall"), Some(Backend::WallClock));
        assert_eq!(Backend::parse("wallclock"), Some(Backend::WallClock));
        assert_eq!(Backend::parse("bogus"), None);
        assert_eq!(Backend::Virtual.name(), "sim");
        assert_eq!(Backend::WallClock.name(), "wall");
        assert_eq!(Backend::default(), Backend::Virtual);
    }

    #[test]
    fn sim_fabric_binds_ports_and_posts_frames() {
        let topo = Topology::new(2, 1);
        let metrics = Arc::new(nups_sim::metrics::ClusterMetrics::new(2));
        let fabric = SimFabric::new(Network::new(topo, metrics));
        let a = fabric.bind(Addr::server(NodeId(0)));
        let b = fabric.bind(Addr::server(NodeId(1)));
        a.send(b.addr(), SimTime(5), bytes::Bytes::from_static(b"ping"));
        let f = b.recv().expect("frame delivered");
        assert_eq!(&f.payload[..], b"ping");
        fabric.post(Frame {
            src: a.addr(),
            dst: a.addr(),
            sent_at: SimTime::ZERO,
            payload: bytes::Bytes::from_static(b"ctl"),
        });
        assert_eq!(&a.recv().expect("posted frame").payload[..], b"ctl");
    }
}
