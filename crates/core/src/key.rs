//! Parameter keys and the static home-node mapping.
//!
//! Every parameter has a unique `u64` key (Section 3.1 of the paper). Keys
//! are range-partitioned across nodes: the *home node* of a key is fixed for
//! the whole run and serves as (i) the initial owner of relocation-managed
//! keys and (ii) the location directory that tracks the current owner as
//! keys move.

use nups_sim::topology::NodeId;

/// A parameter key.
pub type Key = u64;

/// The key universe `[0, n_keys)` plus its range partitioning over nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeySpace {
    n_keys: u64,
    n_nodes: u16,
    /// Keys per node range (last node may hold fewer).
    stride: u64,
}

impl KeySpace {
    pub fn new(n_keys: u64, n_nodes: u16) -> KeySpace {
        assert!(n_keys > 0, "empty key space");
        assert!(n_nodes > 0);
        let stride = n_keys.div_ceil(n_nodes as u64);
        KeySpace { n_keys, n_nodes, stride }
    }

    #[inline]
    pub fn n_keys(&self) -> u64 {
        self.n_keys
    }

    #[inline]
    pub fn n_nodes(&self) -> u16 {
        self.n_nodes
    }

    /// Home node of `key` under range partitioning.
    #[inline]
    pub fn home(&self, key: Key) -> NodeId {
        debug_assert!(key < self.n_keys, "key {key} outside key space");
        NodeId((key / self.stride) as u16)
    }

    /// The contiguous key range homed at `node` (empty for nodes beyond
    /// the key count).
    pub fn range_of(&self, node: NodeId) -> std::ops::Range<Key> {
        let lo = (node.index() as u64 * self.stride).min(self.n_keys);
        let hi = (lo + self.stride).min(self.n_keys);
        lo..hi
    }

    /// Iterate all keys (for setup/evaluation paths only).
    pub fn keys(&self) -> impl Iterator<Item = Key> {
        0..self.n_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_key_space_exactly() {
        for (n_keys, n_nodes) in [(10u64, 3u16), (16, 4), (7, 8), (1, 1), (1000, 7)] {
            let ks = KeySpace::new(n_keys, n_nodes);
            let mut covered = 0u64;
            for n in 0..n_nodes {
                let r = ks.range_of(NodeId(n));
                for k in r.clone() {
                    assert_eq!(ks.home(k), NodeId(n), "key {k} of {n_keys}/{n_nodes}");
                }
                covered += r.end.saturating_sub(r.start);
            }
            assert_eq!(covered, n_keys);
        }
    }

    #[test]
    fn home_is_stable_and_in_bounds() {
        let ks = KeySpace::new(1000, 8);
        for k in 0..1000 {
            let h = ks.home(k);
            assert!(h.0 < 8);
            assert_eq!(ks.home(k), h);
        }
    }

    #[test]
    fn more_nodes_than_keys() {
        // Degenerate but must not panic: nodes beyond the key count own
        // empty ranges.
        let ks = KeySpace::new(3, 8);
        let owners: Vec<_> = (0..3).map(|k| ks.home(k)).collect();
        assert_eq!(owners, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(ks.range_of(NodeId(7)).is_empty());
    }
}
