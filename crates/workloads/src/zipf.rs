//! Zipf-distributed sampling and weight tables.
//!
//! Every skewed quantity in the paper's workloads — word frequencies,
//! entity popularity, revealed matrix cells (zipf 1.1) — follows a Zipf
//! law: outcome `k` (1-based rank) has probability proportional to
//! `1 / k^alpha`. Workload generation samples a few million draws once per
//! experiment, so an O(log n) inverse-CDF sampler over a precomputed
//! cumulative table is simple, exact, and fast enough; the table also
//! doubles as the weight vector handed to alias-based samplers downstream.

use rand::Rng;

/// Unnormalized Zipf weights `1 / (k+1)^alpha` for outcomes `0..n`.
pub fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    assert!(n > 0, "empty outcome space");
    assert!(alpha >= 0.0 && alpha.is_finite());
    (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).collect()
}

/// An O(log n) sampler over a fixed discrete distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    weights: Vec<f64>,
}

impl Zipf {
    /// Zipf(alpha) over `0..n` (outcome 0 is the most popular).
    pub fn new(n: usize, alpha: f64) -> Zipf {
        Zipf::from_weights(zipf_weights(n, alpha))
    }

    /// Sampler over arbitrary non-negative weights.
    pub fn from_weights(weights: Vec<f64>) -> Zipf {
        assert!(!weights.is_empty());
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            assert!(w.is_finite() && w >= 0.0);
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all-zero weights");
        Zipf { cumulative, weights }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The (unnormalized) weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Draw one outcome in `0..n`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let u: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u).min(self.len() - 1)
    }

    /// Probability of outcome `k`.
    pub fn probability(&self, k: usize) -> f64 {
        self.weights[k] / self.cumulative.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_decay_by_power_law() {
        let w = zipf_weights(100, 1.0);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((w[9] - 0.1).abs() < 1e-12);
        // alpha = 0 is uniform.
        let u = zipf_weights(10, 0.0);
        assert!(u.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn sample_frequencies_match_probabilities() {
        let z = Zipf::new(8, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            let want = z.probability(k);
            assert!((got - want).abs() < 0.01, "outcome {k}: got {got:.4}, want {want:.4}");
        }
        // Rank order: outcome 0 strictly most popular.
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn heavy_skew_concentrates_mass() {
        // The paper's premise: a tiny share of keys receives a large share
        // of accesses. With alpha = 1.0 over 100k outcomes, the top 0.1%
        // must draw >= 10% of samples.
        let z = Zipf::new(100_000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        let share = hot as f64 / n as f64;
        assert!(share > 0.10, "hot share {share}");
    }

    #[test]
    fn from_weights_skips_zero_weight_outcomes() {
        let z = Zipf::from_weights(vec![0.0, 2.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!(s == 1 || s == 3, "drew zero-weight outcome {s}");
        }
    }

    #[test]
    fn single_outcome() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn boundary_n_equals_one() {
        // n = 1 is the degenerate distribution for every alpha, including
        // the alpha = 0 corner: one outcome, probability exactly 1.
        for alpha in [0.0, 0.5, 1.0, 1.1, 2.0] {
            let w = zipf_weights(1, alpha);
            assert_eq!(w, vec![1.0], "alpha={alpha}");
            let z = Zipf::new(1, alpha);
            assert_eq!(z.len(), 1);
            assert!((z.probability(0) - 1.0).abs() < 1e-12);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(z.sample(&mut rng), 0);
            }
        }
    }

    #[test]
    fn boundary_alpha_zero_is_uniform() {
        // alpha = 0 must behave exactly like a uniform distribution: equal
        // weights, equal probabilities, and empirically flat frequencies.
        let n = 16;
        let z = Zipf::new(n, 0.0);
        for k in 0..n {
            assert!((z.probability(k) - 1.0 / n as f64).abs() < 1e-12, "outcome {k}");
        }
        let mut rng = StdRng::seed_from_u64(8);
        let draws = 160_000;
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        let expect = draws as f64 / n as f64;
        let chi2: f64 = counts.iter().map(|&c| (c as f64 - expect).powi(2) / expect).sum();
        // dof = 15; the 99.9% quantile is ~37.7. Comfortably below with a
        // correct sampler, far above for any rank-dependent bias.
        assert!(chi2 < 40.0, "alpha=0 draws not uniform: chi2={chi2:.1}");
    }

    #[test]
    #[should_panic(expected = "empty outcome space")]
    fn boundary_n_zero_panics() {
        zipf_weights(0, 1.0);
    }
}
