//! Sampling management (Section 4 of the paper).
//!
//! Existing PSs force applications to sample keys in application code and
//! fetch them via direct access; the PS cannot then tell sampling accesses
//! apart from direct accesses, let alone optimize them. NuPS instead
//! extends the PS API with a sampling primitive:
//!
//! ```text
//! dist   = register_distribution(π, level)
//! handle = PrepareSample(dist, N)
//! keys, values = PullSample(handle[, n_j])   // partial pulls allowed
//! ```
//!
//! The *conformity level* ([`ConformityLevel`]) chosen at registration
//! controls the quality–efficiency trade-off; the sampling manager picks a
//! scheme ([`scheme::SamplingScheme`]) that satisfies the level:
//!
//! | level | scheme |
//! |---|---|
//! | L1 `CONFORM` | independent sampling (iid draws, async pre-localization) |
//! | L2 `BOUNDED` | pooled sample reuse (pool size G, use frequency U) |
//! | L3 `LONG-TERM` | pooled sample reuse + postponing of non-local samples |
//! | L4 `NON-CONFORM` | local sampling over the current local partition |

pub mod alias;
pub mod reuse;
pub mod scheme;

use alias::AliasTable;

use crate::key::Key;

/// The hierarchy of sampling conformity levels (Section 4.1). Lower levels
/// weaken guarantees and admit cheaper schemes; L1 ⊃ L2 ⊃ L3 ⊃ L4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConformityLevel {
    /// L1: mutually independent samples from the target distribution.
    Conform,
    /// L2: per-node dependencies bounded by a constant `B`; first-order
    /// inclusion probabilities still match the target exactly.
    Bounded,
    /// L3: mean first-order inclusion probabilities match the target
    /// asymptotically at each node.
    LongTerm,
    /// L4: no guarantees.
    NonConform,
}

impl ConformityLevel {
    /// Whether a scheme providing `self` also satisfies `required` (the
    /// hierarchy: CONFORM implies BOUNDED implies LONG-TERM).
    pub fn satisfies(self, required: ConformityLevel) -> bool {
        self <= required
    }
}

/// How the target distribution π assigns probability over its key range.
#[derive(Debug, Clone)]
pub enum DistributionKind {
    /// Uniform over the range (KGE negative sampling over entities).
    Uniform,
    /// Explicit per-key weights (e.g. Word2Vec's unigram^0.75 noise
    /// distribution). Length must equal the key range length.
    Weighted(Vec<f64>),
}

/// A registered target distribution over the contiguous key range
/// `[base_key, base_key + n)`.
pub struct Distribution {
    pub base_key: Key,
    n: u64,
    pub level: ConformityLevel,
    table: AliasTable,
}

/// Identifier returned by `register_distribution`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DistId(pub usize);

impl Distribution {
    pub fn new(
        base_key: Key,
        n: u64,
        kind: DistributionKind,
        level: ConformityLevel,
    ) -> Distribution {
        assert!(n > 0, "empty sampling range");
        let table = match kind {
            DistributionKind::Uniform => AliasTable::uniform(n as usize),
            DistributionKind::Weighted(w) => {
                assert_eq!(w.len() as u64, n, "weight vector must cover the key range");
                AliasTable::new(&w)
            }
        };
        Distribution { base_key, n, level, table }
    }

    #[inline]
    pub fn n_keys(&self) -> u64 {
        self.n
    }

    /// Draw one key iid from π.
    #[inline]
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Key {
        self.base_key + self.table.sample(rng) as Key
    }

    /// The key range π covers.
    pub fn key_range(&self) -> std::ops::Range<Key> {
        self.base_key..self.base_key + self.n
    }
}

/// A prepared batch of samples: the handle returned by `PrepareSample`.
/// `PullSample` consumes from the front; the postponing scheme (L3) may
/// move samples to the back — at most once each, so no sample is starved
/// (the condition the paper needs for LONG-TERM, Section 4.4).
#[derive(Debug)]
pub struct SampleHandle {
    pub dist: DistId,
    pub(crate) queue: std::collections::VecDeque<(Key, bool)>,
    /// Total samples requested at prepare time.
    pub requested: usize,
    /// For lazily drawing schemes (local sampling): samples still owed.
    pub(crate) lazy_remaining: usize,
}

impl SampleHandle {
    /// A handle over eagerly drawn keys (independent & reuse schemes).
    pub fn new(dist: DistId, keys: impl IntoIterator<Item = Key>) -> SampleHandle {
        let queue: std::collections::VecDeque<(Key, bool)> =
            keys.into_iter().map(|k| (k, false)).collect();
        let requested = queue.len();
        SampleHandle { dist, queue, requested, lazy_remaining: 0 }
    }

    /// A handle whose keys are drawn at pull time (local sampling).
    pub fn lazy(dist: DistId, n: usize) -> SampleHandle {
        SampleHandle {
            dist,
            queue: std::collections::VecDeque::new(),
            requested: n,
            lazy_remaining: n,
        }
    }

    /// Samples not yet pulled.
    pub fn remaining(&self) -> usize {
        self.queue.len() + self.lazy_remaining
    }

    /// Take the next prepared key; the flag reports whether it was already
    /// postponed once. For custom scheme implementations outside this
    /// crate (e.g. baseline workers).
    pub fn pop_key(&mut self) -> Option<(Key, bool)> {
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hierarchy_is_ordered() {
        use ConformityLevel::*;
        assert!(Conform.satisfies(Bounded));
        assert!(Conform.satisfies(LongTerm));
        assert!(Bounded.satisfies(LongTerm));
        assert!(!Bounded.satisfies(Conform));
        assert!(!NonConform.satisfies(LongTerm));
        assert!(NonConform.satisfies(NonConform));
    }

    #[test]
    fn uniform_distribution_covers_range() {
        let d = Distribution::new(100, 50, DistributionKind::Uniform, ConformityLevel::Conform);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let k = d.sample(&mut rng);
            assert!((100..150).contains(&k));
        }
        assert_eq!(d.key_range(), 100..150);
    }

    #[test]
    fn weighted_distribution_respects_weights() {
        let d = Distribution::new(
            0,
            3,
            DistributionKind::Weighted(vec![0.0, 1.0, 3.0]),
            ConformityLevel::Bounded,
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "cover the key range")]
    fn weight_length_mismatch_panics() {
        Distribution::new(0, 4, DistributionKind::Weighted(vec![1.0; 3]), ConformityLevel::Conform);
    }

    #[test]
    fn handle_tracks_remaining() {
        let h = SampleHandle::new(DistId(0), [1, 2, 3]);
        assert_eq!(h.requested, 3);
        assert_eq!(h.remaining(), 3);
    }
}
