//! Synthetic matrix-factorization dataset.
//!
//! The paper's MF dataset is itself synthetic: a 10m × 1m matrix with one
//! billion revealed cells whose row/column popularity follows zipf(1.1),
//! "modeled after the Netflix Prize dataset". We generate the same shape
//! at configurable scale: a planted low-rank matrix `U·Vᵀ` plus noise,
//! with revealed cells drawn by zipf(1.1) row and column popularity. RMSE
//! against held-out cells is then a meaningful quality signal with a known
//! noise floor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// One revealed cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    pub row: u32,
    pub col: u32,
    pub value: f32,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    pub n_rows: usize,
    pub n_cols: usize,
    pub n_train: usize,
    pub n_test: usize,
    /// Rank of the planted factorization.
    pub rank_gt: usize,
    /// Popularity skew of rows and columns (paper: 1.1).
    pub zipf_alpha: f64,
    /// Standard deviation of additive observation noise.
    pub noise_std: f32,
    pub seed: u64,
}

impl Default for MatrixConfig {
    fn default() -> MatrixConfig {
        MatrixConfig {
            n_rows: 10_000,
            n_cols: 1_000,
            n_train: 200_000,
            n_test: 5_000,
            rank_gt: 8,
            zipf_alpha: 1.1,
            noise_std: 0.1,
            seed: 13,
        }
    }
}

/// A generated dataset.
#[derive(Debug)]
pub struct MatrixData {
    pub config: MatrixConfig,
    pub train: Vec<Cell>,
    pub test: Vec<Cell>,
}

impl MatrixData {
    pub fn generate(config: MatrixConfig) -> MatrixData {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let k = config.rank_gt;
        let scale = 1.0 / (k as f32).sqrt();
        let gt_u: Vec<f32> =
            (0..config.n_rows * k).map(|_| rng.gen_range(-1.0..1.0f32) * scale).collect();
        let gt_v: Vec<f32> =
            (0..config.n_cols * k).map(|_| rng.gen_range(-1.0..1.0f32) * scale).collect();

        let row_pop = Zipf::new(config.n_rows, config.zipf_alpha);
        let col_pop = Zipf::new(config.n_cols, config.zipf_alpha);

        let cell = |rng: &mut StdRng| {
            let row = row_pop.sample(rng);
            let col = col_pop.sample(rng);
            let mut v = 0.0f32;
            for i in 0..k {
                v += gt_u[row * k + i] * gt_v[col * k + i];
            }
            // Box-Muller for Gaussian noise (rand's StandardNormal lives in
            // rand_distr, which we avoid depending on).
            let (u1, u2): (f32, f32) = (rng.gen_range(1e-9..1.0), rng.gen());
            let noise = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            Cell { row: row as u32, col: col as u32, value: v + config.noise_std * noise }
        };

        let train: Vec<Cell> = (0..config.n_train).map(|_| cell(&mut rng)).collect();
        let test: Vec<Cell> = (0..config.n_test).map(|_| cell(&mut rng)).collect();
        MatrixData { config, train, test }
    }

    /// Access frequency of row-factor keys then column-factor keys
    /// (column keys are the contended ones: rows are partitioned to nodes,
    /// columns are shared — the paper replicates hot *column* keys).
    pub fn row_frequencies(&self) -> Vec<u64> {
        let mut f = vec![0u64; self.config.n_rows];
        for c in &self.train {
            f[c.row as usize] += 1;
        }
        f
    }

    pub fn col_frequencies(&self) -> Vec<u64> {
        let mut f = vec![0u64; self.config.n_cols];
        for c in &self.train {
            f[c.col as usize] += 1;
        }
        f
    }

    /// Variance of the training values (for RMSE baselines).
    pub fn value_variance(&self) -> f64 {
        let n = self.train.len() as f64;
        let mean: f64 = self.train.iter().map(|c| c.value as f64).sum::<f64>() / n;
        self.train.iter().map(|c| (c.value as f64 - mean).powi(2)).sum::<f64>() / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MatrixData {
        MatrixData::generate(MatrixConfig {
            n_rows: 500,
            n_cols: 100,
            n_train: 20_000,
            n_test: 1_000,
            rank_gt: 4,
            zipf_alpha: 1.1,
            noise_std: 0.05,
            seed: 17,
        })
    }

    #[test]
    fn shape_and_determinism() {
        let a = small();
        assert_eq!(a.train.len(), 20_000);
        assert_eq!(a.test.len(), 1_000);
        let b = small();
        assert_eq!(a.train, b.train);
        for c in &a.train {
            assert!((c.row as usize) < 500 && (c.col as usize) < 100);
            assert!(c.value.is_finite());
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let d = small();
        let rf = d.row_frequencies();
        let total: u64 = rf.iter().sum();
        let mut sorted = rf.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = sorted[..5].iter().sum();
        assert!(top1pct as f64 > 0.08 * total as f64);
    }

    #[test]
    fn values_have_signal_above_noise() {
        // The planted low-rank signal must dominate the observation noise,
        // otherwise RMSE could never improve during training.
        let d = small();
        let var = d.value_variance();
        let noise_var = (d.config.noise_std as f64).powi(2);
        assert!(var > 2.0 * noise_var, "signal variance {var} vs noise {noise_var}");
    }
}
