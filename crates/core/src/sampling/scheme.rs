//! Sampling schemes and the manager's scheme selection (Sections 4.2/4.4).

use super::ConformityLevel;

/// Parameters of the pooled reuse schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseParams {
    /// Pool size G (paper default: 250).
    pub pool_size: usize,
    /// Use frequency U (paper's untuned default: 16).
    pub use_frequency: usize,
}

impl Default for ReuseParams {
    fn default() -> ReuseParams {
        ReuseParams { pool_size: 250, use_frequency: 16 }
    }
}

/// The sampling schemes NuPS implements behind the sampling API (Figure 5),
/// plus [`SamplingScheme::Manual`] — not a NuPS scheme but what
/// applications on sampling-oblivious PSs do (draw independently in
/// application code, access via direct pulls): the baseline the paper's
/// Section 4 argues against. The manager never selects it; experiment
/// variants for Classic/Lapse do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingScheme {
    /// Application-side sampling on a PS without sampling support: iid
    /// draws, direct access, no preparatory localization.
    Manual,
    /// Sample iid from π; localize in PrepareSample; pull (remotely if
    /// necessary) in PullSample.
    Independent,
    /// Pooled sample reuse: iid pools of size G, each sample used U times.
    Reuse(ReuseParams),
    /// Pooled reuse plus postponing: a non-local sample is re-localized,
    /// moved to the end of the handle, and used later — at most one
    /// postponement per sample.
    ReuseWithPostponing(ReuseParams),
    /// Sample from the locally available part of π; no network at all.
    Local,
}

impl SamplingScheme {
    /// The strongest conformity level the scheme provides (Table 1).
    pub fn provides(&self) -> ConformityLevel {
        match self {
            SamplingScheme::Manual => ConformityLevel::Conform,
            SamplingScheme::Independent => ConformityLevel::Conform,
            SamplingScheme::Reuse(_) => ConformityLevel::Bounded,
            SamplingScheme::ReuseWithPostponing(_) => ConformityLevel::LongTerm,
            SamplingScheme::Local => ConformityLevel::NonConform,
        }
    }

    /// The manager's choice: the cheapest implemented scheme that still
    /// satisfies the requested level.
    pub fn for_level(level: ConformityLevel, reuse: ReuseParams) -> SamplingScheme {
        match level {
            ConformityLevel::Conform => SamplingScheme::Independent,
            ConformityLevel::Bounded => SamplingScheme::Reuse(reuse),
            ConformityLevel::LongTerm => SamplingScheme::ReuseWithPostponing(reuse),
            ConformityLevel::NonConform => SamplingScheme::Local,
        }
    }

    /// The dependency bound `B` for BOUNDED schemes.
    pub fn dependency_bound(&self) -> Option<usize> {
        match self {
            SamplingScheme::Manual | SamplingScheme::Independent => Some(0),
            SamplingScheme::Reuse(p) => Some(p.pool_size * p.use_frequency),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_scheme_satisfies_requested_level() {
        let reuse = ReuseParams::default();
        for level in [
            ConformityLevel::Conform,
            ConformityLevel::Bounded,
            ConformityLevel::LongTerm,
            ConformityLevel::NonConform,
        ] {
            let s = SamplingScheme::for_level(level, reuse);
            assert!(
                s.provides().satisfies(level),
                "{s:?} provides {:?} which does not satisfy {level:?}",
                s.provides()
            );
        }
    }

    #[test]
    fn conformity_table_matches_paper_table_1() {
        assert_eq!(SamplingScheme::Independent.provides(), ConformityLevel::Conform);
        assert_eq!(
            SamplingScheme::Reuse(ReuseParams::default()).provides(),
            ConformityLevel::Bounded
        );
        assert_eq!(
            SamplingScheme::ReuseWithPostponing(ReuseParams::default()).provides(),
            ConformityLevel::LongTerm
        );
        assert_eq!(SamplingScheme::Local.provides(), ConformityLevel::NonConform);
    }

    #[test]
    fn dependency_bounds() {
        assert_eq!(SamplingScheme::Independent.dependency_bound(), Some(0));
        let p = ReuseParams { pool_size: 250, use_frequency: 16 };
        assert_eq!(SamplingScheme::Reuse(p).dependency_bound(), Some(4000));
        assert_eq!(SamplingScheme::Local.dependency_bound(), None);
    }
}
