//! The per-node server loop.
//!
//! One server thread per node demultiplexes protocol messages: remote
//! pulls/pushes (forwarding them along the ownership chain when the key
//! moved), the three-message Lapse relocation protocol, and shutdown. The
//! server never blocks on a parameter: operations against in-flight keys
//! are parked on the store entry and answered when the transfer installs,
//! which keeps the loop live and the per-key operation order sequential.

use std::sync::Arc;

use nups_sim::codec::WireEncode;
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId};

use crate::key::Key;
use crate::messages::{KeyUpdate, Msg};
use crate::node::{NodeState, Shared};
use crate::runtime::Port;
use crate::store::{ServerAccess, TakeOutcome};

/// Append `item` to `dst`'s group, keeping one group per destination in
/// first-appearance order (node counts are small; linear scan wins over a
/// map).
pub(crate) fn group_by_node<T>(groups: &mut Vec<(NodeId, Vec<T>)>, dst: NodeId, item: T) {
    match groups.iter_mut().find(|(n, _)| *n == dst) {
        Some((_, items)) => items.push(item),
        None => groups.push((dst, vec![item])),
    }
}

pub struct Server {
    shared: Arc<Shared>,
    state: Arc<NodeState>,
    endpoint: Box<dyn Port>,
}

impl Server {
    pub fn new(shared: Arc<Shared>, state: Arc<NodeState>, endpoint: Box<dyn Port>) -> Server {
        Server { shared, state, endpoint }
    }

    /// Run until a `Stop` message arrives or the network shuts down.
    pub fn run(mut self) {
        while let Some(frame) = self.endpoint.recv() {
            let mut payload = frame.payload;
            let msg = match Msg::decode(&mut payload) {
                Ok(m) => m,
                Err(e) => {
                    debug_assert!(false, "undecodable frame at {}: {e}", self.state.node);
                    continue;
                }
            };
            if !self.handle(msg, frame.sent_at) {
                break;
            }
        }
    }

    fn me(&self) -> NodeId {
        self.state.node
    }

    fn send(&mut self, dst: Addr, at: SimTime, msg: &Msg) {
        self.endpoint.send(dst, at, msg.to_bytes());
    }

    /// Returns `false` on `Stop`.
    fn handle(&mut self, msg: Msg, at: SimTime) -> bool {
        match msg {
            Msg::PullReq { key, reply_to, hops } => self.handle_pull(key, reply_to, hops, at),
            Msg::PushReq { key, delta, reply_to, hops } => {
                self.handle_push(key, delta, reply_to, hops, at)
            }
            Msg::LocalizeReq { key, requester } => self.handle_localize(key, requester, at),
            Msg::ForwardLocalize { key, requester } => {
                self.handle_forward_localize(key, requester, at)
            }
            Msg::Transfer { key, value } => self.handle_transfer(key, value, at),
            Msg::PullBatchReq { keys, reply_to, hops } => {
                self.handle_pull_batch(keys, reply_to, hops, at)
            }
            Msg::PushBatchReq { updates, reply_to, hops } => {
                self.handle_push_batch(updates, reply_to, hops, at)
            }
            Msg::LocalizeBatchReq { keys, requester } => {
                for key in keys {
                    self.handle_localize(key, requester, at);
                }
            }
            Msg::ReplicaDeltas { from, updates } => self.handle_replica_deltas(from, updates),
            Msg::SyncFin { .. } => self.shared.note_sync_fin(),
            Msg::Stop => return false,
            other => {
                debug_assert!(false, "unexpected message at relocation server: {other:?}");
            }
        }
        true
    }

    /// Resolve where an operation on `key` should go when we do not own
    /// it: follow a tombstone if we have one, otherwise re-route via home.
    fn chase(&self, key: Key, hint: Option<NodeId>) -> NodeId {
        hint.unwrap_or_else(|| self.shared.keyspace.home(key))
    }

    /// Serve a pull for a key that migrated to replication from the local
    /// replica set. `None` when the key has since been demoted again (the
    /// caller re-routes via the home directory).
    ///
    /// The slot lookup and the replica access are two acquisitions, which
    /// is safe because assignments only mutate during an adaptation round,
    /// and no pull/push can be in a server queue then: every pull/push is
    /// worker-synchronous, so an outstanding one implies a worker blocked
    /// on its reply — which would have prevented the rendezvous the round
    /// runs under.
    fn replica_pull(&self, key: Key) -> Option<Vec<f32>> {
        let slot = self.shared.technique.replica_slot(key)?;
        let mut value = vec![0.0; self.shared.value_len];
        self.state.replicas.pull(slot, &mut value);
        self.shared.metrics.node(self.me()).inc(|m| &m.replica_pulls);
        Some(value)
    }

    /// Apply a late-chasing push for a migrated key to the local replica
    /// set (folded into the next synchronization — applied exactly once).
    fn replica_push(&self, key: Key, delta: &[f32]) -> bool {
        let Some(slot) = self.shared.technique.replica_slot(key) else { return false };
        self.state.replicas.push(slot, delta);
        self.shared.metrics.node(self.me()).inc(|m| &m.replica_pushes);
        true
    }

    fn handle_pull(&mut self, key: Key, reply_to: Addr, hops: u8, at: SimTime) {
        // At the home node, consult the directory first: the request may
        // need forwarding to the current owner.
        if let Some(owner) = self.directory_detour(key) {
            let fwd = Msg::PullReq { key, reply_to, hops: hops.saturating_add(1) };
            self.send(Addr::server(owner), at, &fwd);
            return;
        }
        match self.state.store.server_pull(key, reply_to, hops) {
            ServerAccess::Served(Some(value)) => {
                let resp = Msg::PullResp { key, value, hops: hops.saturating_add(1) };
                self.send(reply_to, at, &resp);
            }
            ServerAccess::Served(None) => unreachable!("pull always returns a value"),
            ServerAccess::Queued => {} // answered at install time
            ServerAccess::Migrated => match self.replica_pull(key) {
                Some(value) => {
                    let resp = Msg::PullResp { key, value, hops: hops.saturating_add(1) };
                    self.send(reply_to, at, &resp);
                }
                None => {
                    let fwd = Msg::PullReq { key, reply_to, hops: hops.saturating_add(1) };
                    self.send(Addr::server(self.shared.keyspace.home(key)), at, &fwd);
                }
            },
            ServerAccess::NotHere(hint) => {
                let dst = self.chase(key, hint);
                let fwd = Msg::PullReq { key, reply_to, hops: hops.saturating_add(1) };
                self.send(Addr::server(dst), at, &fwd);
            }
        }
    }

    fn handle_push(&mut self, key: Key, delta: Vec<f32>, reply_to: Addr, hops: u8, at: SimTime) {
        if let Some(owner) = self.directory_detour(key) {
            let fwd = Msg::PushReq { key, delta, reply_to, hops: hops.saturating_add(1) };
            self.send(Addr::server(owner), at, &fwd);
            return;
        }
        // The store borrows the delta: the served fast path applies it in
        // place, and only the queued path copies. On the not-here path we
        // still own `delta` and move it into the forward.
        match self.state.store.server_push(key, &delta, reply_to, hops) {
            ServerAccess::Served(_) => {
                let ack = Msg::PushAck { key, hops: hops.saturating_add(1) };
                self.send(reply_to, at, &ack);
            }
            ServerAccess::Queued => {}
            ServerAccess::Migrated => {
                if self.replica_push(key, &delta) {
                    let ack = Msg::PushAck { key, hops: hops.saturating_add(1) };
                    self.send(reply_to, at, &ack);
                } else {
                    let home = self.shared.keyspace.home(key);
                    let fwd = Msg::PushReq { key, delta, reply_to, hops: hops.saturating_add(1) };
                    self.send(Addr::server(home), at, &fwd);
                }
            }
            ServerAccess::NotHere(hint) => {
                let dst = self.chase(key, hint);
                let fwd = Msg::PushReq { key, delta, reply_to, hops: hops.saturating_add(1) };
                self.send(Addr::server(dst), at, &fwd);
            }
        }
    }

    /// Batched pull: answer the locally-owned subset in one message, park
    /// in-flight entries (each answers individually at install), and
    /// forward the remainder grouped by next hop.
    fn handle_pull_batch(&mut self, keys: Vec<Key>, reply_to: Addr, hops: u8, at: SimTime) {
        let mut fwd: Vec<(NodeId, Vec<Key>)> = Vec::new();
        let mut local = Vec::with_capacity(keys.len());
        for key in keys {
            match self.directory_detour(key) {
                Some(owner) => group_by_node(&mut fwd, owner, key),
                None => local.push(key),
            }
        }
        let out = self.state.store.server_pull_batch(&local, reply_to, hops);
        for (key, hint) in out.not_here {
            group_by_node(&mut fwd, self.chase(key, hint), key);
        }
        let mut values = out.served;
        for key in out.migrated {
            match self.replica_pull(key) {
                Some(value) => values.push(KeyUpdate { key, delta: value }),
                None => group_by_node(&mut fwd, self.shared.keyspace.home(key), key),
            }
        }
        if !values.is_empty() {
            let resp = Msg::PullBatchResp { values, hops: hops.saturating_add(1) };
            self.send(reply_to, at, &resp);
        }
        for (dst, keys) in fwd {
            let m = Msg::PullBatchReq { keys, reply_to, hops: hops.saturating_add(1) };
            self.send(Addr::server(dst), at, &m);
        }
    }

    /// Batched push, mirroring [`Server::handle_pull_batch`].
    fn handle_push_batch(
        &mut self,
        updates: Vec<KeyUpdate>,
        reply_to: Addr,
        hops: u8,
        at: SimTime,
    ) {
        let mut fwd: Vec<(NodeId, Vec<KeyUpdate>)> = Vec::new();
        let mut local = Vec::with_capacity(updates.len());
        for update in updates {
            match self.directory_detour(update.key) {
                Some(owner) => group_by_node(&mut fwd, owner, update),
                None => local.push(update),
            }
        }
        let out = self.state.store.server_push_batch(local, reply_to, hops);
        for (update, hint) in out.not_here {
            let dst = self.chase(update.key, hint);
            group_by_node(&mut fwd, dst, update);
        }
        let mut acked = out.served;
        for update in out.migrated {
            if self.replica_push(update.key, &update.delta) {
                acked.push(update.key);
            } else {
                let home = self.shared.keyspace.home(update.key);
                group_by_node(&mut fwd, home, update);
            }
        }
        if !acked.is_empty() {
            let ack = Msg::PushBatchAck { keys: acked, hops: hops.saturating_add(1) };
            self.send(reply_to, at, &ack);
        }
        for (dst, updates) in fwd {
            let m = Msg::PushBatchReq { updates, reply_to, hops: hops.saturating_add(1) };
            self.send(Addr::server(dst), at, &m);
        }
    }

    /// At the home node, the location directory may say the key lives
    /// elsewhere even though no tombstone survives locally; such requests
    /// detour straight to the recorded owner.
    fn directory_detour(&self, key: Key) -> Option<NodeId> {
        if self.shared.keyspace.home(key) == self.me() {
            let owner = self.state.directory.owner(key);
            if owner != self.me() {
                return Some(owner);
            }
        }
        None
    }

    /// A peer's replica-synchronization broadcast (per-node deployments):
    /// fold its accumulated deltas into the local replica set. Each
    /// update's key is a replica slot id. Applying is additive and
    /// commutative, so no coordination with concurrent local pushes is
    /// needed beyond the slot lock.
    fn handle_replica_deltas(&mut self, from: NodeId, updates: Vec<KeyUpdate>) {
        debug_assert_ne!(from, self.me(), "a node must not receive its own sync broadcast");
        for u in updates {
            self.state.replicas.apply_foreign(u.key as u32, &u.delta);
        }
        // Replica state advanced: wake evaluation reads parked on progress.
        self.shared.runtime.notify_progress();
    }

    /// First message of the relocation protocol, handled at the home node:
    /// update the location directory and tell the current owner to hand
    /// the key over.
    fn handle_localize(&mut self, key: Key, requester: NodeId, at: SimTime) {
        debug_assert_eq!(self.shared.keyspace.home(key), self.me(), "localize not at home");
        // Replication-managed keys never relocate, and keys mid-promotion
        // must not start a relocation either: the promotion take would
        // race a transfer it cannot see, stranding the value. The dropped
        // request's in-flight mark at the requester is cleaned up by the
        // promotion sweep.
        if self.shared.technique.localize_blocked(key) {
            return;
        }
        let owner = self.state.directory.owner(key);
        if owner == requester {
            // A transfer to the requester is already under way; its
            // in-flight entry will resolve it.
            return;
        }
        self.state.directory.set_owner(key, requester);
        if owner == self.me() {
            self.handle_forward_localize(key, requester, at);
        } else {
            self.send(Addr::server(owner), at, &Msg::ForwardLocalize { key, requester });
        }
    }

    /// Second message: the (believed) owner relinquishes the key.
    fn handle_forward_localize(&mut self, key: Key, requester: NodeId, at: SimTime) {
        match self.state.store.take_for_transfer(key, requester) {
            TakeOutcome::Taken(value) => {
                self.send(Addr::server(requester), at, &Msg::Transfer { key, value });
            }
            TakeOutcome::Deferred => {} // handed over right after install
            // The key migrated to replication while this request chased
            // it; the relocation is void.
            TakeOutcome::Promoted => {}
            TakeOutcome::NotHere(hint) => {
                // The key moved on before this request caught up with it:
                // chase the tombstone chain.
                let dst = self.chase(key, hint);
                debug_assert_ne!(dst, self.me(), "forward-localize chase loop at {}", self.me());
                self.send(Addr::server(dst), at, &Msg::ForwardLocalize { key, requester });
            }
        }
    }

    /// Third message: the value arrives; serve everything that queued up.
    fn handle_transfer(&mut self, key: Key, value: Vec<f32>, at: SimTime) {
        // A transfer for a key that is (now) replication-managed must not
        // resurrect store ownership: the promotion protocol settles every
        // relocation chain before taking the value, so this transfer can
        // only be a stale duplicate whose payload the replicas supersede.
        if self.shared.technique.is_replicated(key) {
            return;
        }
        // Count before installing: install wakes workers blocked on the
        // key, and an observer must not see the wake before the count.
        self.shared.metrics.node(self.me()).inc(|m| &m.relocations);
        let out = self.state.store.install(key, value);
        for (value, reply_to, hops) in out.pull_replies {
            let resp = Msg::PullResp { key, value, hops: hops.saturating_add(1) };
            self.send(reply_to, at, &resp);
        }
        for (reply_to, hops) in out.push_acks {
            let ack = Msg::PushAck { key, hops: hops.saturating_add(1) };
            self.send(reply_to, at, &ack);
        }
        if let Some((node, value)) = out.release {
            self.send(Addr::server(node), at, &Msg::Transfer { key, value });
        }
        // Wake control-plane waiters parked on cluster progress: an
        // evaluation read racing this relocation, or the adaptive manager
        // waiting for a chain to settle before a promotion.
        self.shared.runtime.notify_progress();
    }
}
