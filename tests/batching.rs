//! Batched multi-key access: a skewed batch must issue at most one round
//! trip per destination node (the scaling lever the wire-level batch
//! protocol exists for), with message counts asserted via metrics.

use nups::core::{NupsConfig, ParameterServer, PsWorker};
use nups::sim::cost::CostModel;
use nups::sim::topology::{NodeId, Topology, WorkerId};

fn zero_cost(cfg: NupsConfig) -> NupsConfig {
    cfg.with_cost(CostModel::zero())
}

/// Keys 0..30 over 3 nodes are range-partitioned: 0..10 at node 0, 10..20
/// at node 1, 20..30 at node 2.
fn classic_3node() -> ParameterServer {
    let topo = Topology::new(3, 1);
    ParameterServer::new(zero_cost(NupsConfig::classic(topo, 30, 2)), |k, v| v.fill(k as f32))
}

#[test]
fn skewed_pull_batch_issues_one_round_trip_per_destination() {
    let ps = classic_3node();
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    // A skewed batch: 3 local keys, 4 on node 1, 2 on node 2.
    let keys = [0u64, 1, 2, 10, 11, 12, 13, 20, 21];
    let mut out = vec![0.0f32; keys.len() * 2];
    w.pull_many(&keys, &mut out);
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(&out[i * 2..(i + 1) * 2], &[k as f32; 2], "slot {i}");
    }
    let m = ps.metrics();
    assert_eq!(m.msgs_sent, 4, "2 batch requests + 2 batch replies, nothing per-key");
    assert_eq!(m.remote_pulls, 6);
    assert_eq!(m.local_pulls, 3);
    assert_eq!(m.batch_pull_msgs, 2, "one request per remote destination");
    assert_eq!(m.batch_pull_keys, 6);
    ps.shutdown();
}

#[test]
fn skewed_push_batch_issues_one_round_trip_per_destination() {
    let ps = classic_3node();
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let keys = [5u64, 10, 11, 20, 21, 22];
    let deltas = vec![1.0f32; keys.len() * 2];
    w.push_many(&keys, &deltas);
    let m = ps.metrics();
    assert_eq!(m.msgs_sent, 4, "2 batch requests + 2 batch acks");
    assert_eq!(m.remote_pushes, 5);
    assert_eq!(m.local_pushes, 1);
    assert_eq!(m.batch_push_msgs, 2);
    assert_eq!(m.batch_push_keys, 5);
    drop(w);
    for &k in &keys {
        assert_eq!(ps.read_value(k), vec![k as f32 + 1.0; 2], "key {k}");
    }
    ps.shutdown();
}

#[test]
fn duplicate_keys_in_a_pull_batch_ride_the_wire_once() {
    let ps = classic_3node();
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let keys = [10u64, 10, 11];
    let mut out = vec![0.0f32; keys.len() * 2];
    w.pull_many(&keys, &mut out);
    // Every position is filled — the single reply fans out to both
    // occurrences of key 10.
    assert_eq!(out, vec![10.0, 10.0, 10.0, 10.0, 11.0, 11.0]);
    let m = ps.metrics();
    assert_eq!(m.msgs_sent, 2, "single destination: one request, one reply");
    assert_eq!(m.batch_pull_msgs, 1);
    assert_eq!(m.batch_pull_keys, 2, "the duplicate is deduplicated before encoding");
    assert_eq!(m.remote_pulls, 3, "logical pulls still count per occurrence");
    // Duplicate pushes coalesce: the deltas are summed into one wire entry
    // per key, and every occurrence still lands in the final value.
    let deltas = vec![0.5f32; keys.len() * 2];
    w.push_many(&keys, &deltas);
    drop(w);
    assert_eq!(ps.read_value(10), vec![11.0; 2]);
    assert_eq!(ps.read_value(11), vec![11.5; 2]);
    ps.shutdown();
}

#[test]
fn duplicate_keys_in_a_push_batch_coalesce_before_encoding() {
    let ps = classic_3node();
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    // Key 10 appears three times with distinct deltas, key 11 once; all
    // are homed at node 1, so the batch goes to a single destination.
    let keys = [10u64, 10, 11, 10];
    let deltas: Vec<f32> = vec![1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 8.0];
    w.push_many(&keys, &deltas);
    let m = ps.metrics();
    assert_eq!(m.msgs_sent, 2, "single destination: one request, one ack");
    assert_eq!(m.batch_push_msgs, 1);
    assert_eq!(m.batch_push_keys, 2, "duplicates summed into one wire entry per key");
    assert_eq!(m.remote_pushes, 4, "logical pushes still count per occurrence");
    drop(w);
    // All three deltas for key 10 are applied exactly once, as their sum.
    assert_eq!(ps.read_value(10), vec![10.0 + 1.0 + 2.0 + 8.0; 2]);
    assert_eq!(ps.read_value(11), vec![11.0 + 4.0; 2]);
    ps.shutdown();
}

#[test]
fn all_duplicate_push_batch_collapses_to_single_key_message() {
    // After coalescing, a group of repeated keys is a singleton and takes
    // the compact single-key push message, not the batch framing.
    let ps = classic_3node();
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let keys = [15u64, 15, 15];
    let deltas = vec![1.0f32; keys.len() * 2];
    w.push_many(&keys, &deltas);
    let m = ps.metrics();
    assert_eq!(m.msgs_sent, 2, "one compact request, one ack");
    assert_eq!(m.batch_push_msgs, 1);
    assert_eq!(m.batch_push_keys, 1);
    assert_eq!(m.remote_pushes, 3);
    drop(w);
    assert_eq!(ps.read_value(15), vec![15.0 + 3.0; 2]);
    ps.shutdown();
}

#[test]
fn all_duplicate_pull_batch_collapses_to_single_key_message() {
    // After dedup a group of repeated keys is a singleton and takes the
    // compact single-key message, not the batch framing.
    let ps = classic_3node();
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let keys = [15u64, 15, 15, 15];
    let mut out = vec![0.0f32; keys.len() * 2];
    w.pull_many(&keys, &mut out);
    assert_eq!(out, vec![15.0; 8]);
    let m = ps.metrics();
    assert_eq!(m.msgs_sent, 2, "one PullReq, one PullResp");
    assert_eq!(m.batch_pull_keys, 1);
    assert_eq!(m.remote_pulls, 4);
    ps.shutdown();
}

#[test]
fn duplicate_localize_intents_ride_the_wire_once() {
    let topo = Topology::new(2, 1);
    let ps =
        ParameterServer::new(zero_cost(NupsConfig::lapse(topo, 20, 2)), |k, v| v.fill(k as f32));
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    // Repeated keys in one localize call: the in-flight mark dedupes them
    // before the wire, so the batch carries each key once.
    w.localize(&[12, 12, 13, 12, 13]);
    let mut out = vec![0.0f32; 2 * 2];
    w.pull_many(&[12, 13], &mut out); // blocks until transfers install
    let m = ps.metrics();
    assert_eq!(m.localize_msgs, 1);
    assert_eq!(m.localize_keys, 2, "duplicates dropped before encoding");
    assert_eq!(m.relocations, 2);
    ps.shutdown();
}

#[test]
fn localize_coalesces_intents_per_home_node() {
    let topo = Topology::new(3, 1);
    let ps =
        ParameterServer::new(zero_cost(NupsConfig::lapse(topo, 30, 2)), |k, v| v.fill(k as f32));
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    // Three keys homed at node 1 ride one LocalizeBatchReq; the singleton
    // for node 2 stays on the compact single-key message.
    w.localize(&[10, 11, 12, 20]);
    // Pulling blocks until the transfers install, so counters are settled.
    let mut out = vec![0.0f32; 4 * 2];
    w.pull_many(&[10, 11, 12, 20], &mut out);
    let m = ps.metrics();
    assert_eq!(m.localize_msgs, 2, "one localize message per home node");
    assert_eq!(m.localize_keys, 4);
    assert_eq!(m.relocations, 4);
    assert_eq!(m.remote_pulls, 0, "everything was local after relocation");
    assert_eq!(m.local_pulls, 4);
    assert_eq!(m.msgs_sent, 6, "2 localize messages + 4 transfers; no per-key localize traffic");
    ps.shutdown();
}
