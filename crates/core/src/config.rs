//! Parameter-server configuration and the system variants the paper
//! compares.

use nups_sim::cost::CostModel;
use nups_sim::time::SimDuration;
use nups_sim::topology::Topology;

use crate::adaptive::AdaptiveConfig;
use crate::key::Key;
use crate::runtime::Backend;
use crate::sampling::scheme::ReuseParams;
use crate::value::ClipPolicy;

/// Configuration of one NuPS-family parameter server.
#[derive(Debug, Clone)]
pub struct NupsConfig {
    pub topology: Topology,
    /// Key universe `[0, n_keys)`.
    pub n_keys: u64,
    /// Length of every parameter value.
    pub value_len: usize,
    pub cost: CostModel,
    /// Keys managed by replication; everything else is relocated.
    pub replicated_keys: Vec<Key>,
    /// With relocation disabled, relocated keys are served at their home
    /// node for the whole run: the *Classic* PS (exactly how the paper ran
    /// its Classic baseline — "Lapse with relocation disabled").
    pub relocation_enabled: bool,
    /// Time-based staleness bound for replicas (paper default: 40 ms,
    /// i.e. 25 synchronizations per second).
    pub sync_period: SimDuration,
    /// Gradient clipping for replicated keys (paper: WV and MF tasks).
    pub clip: ClipPolicy,
    /// Pool size G and use frequency U for the reuse sampling schemes.
    pub reuse: ReuseParams,
    /// Store shards per node.
    pub store_shards: usize,
    /// Seed for worker RNGs (worker i derives `seed ^ i`).
    pub seed: u64,
    /// Adaptive technique management: when set, workers sample access
    /// frequencies and keys migrate between replication and relocation at
    /// synchronization rendezvous. `None` (the default) keeps the paper's
    /// static pre-training assignment.
    pub adaptive: Option<AdaptiveConfig>,
    /// Which runtime the server executes on: the deterministic
    /// virtual-time simulator (default) or the wall-clock backend, where
    /// waits block for real and `sync_period` is real elapsed time.
    pub backend: Backend,
}

impl NupsConfig {
    /// NuPS with an explicit technique assignment.
    pub fn nups(topology: Topology, n_keys: u64, value_len: usize) -> NupsConfig {
        NupsConfig {
            topology,
            n_keys,
            value_len,
            cost: CostModel::cluster_default(),
            replicated_keys: Vec::new(),
            relocation_enabled: true,
            sync_period: SimDuration::from_millis(40),
            clip: ClipPolicy::None,
            reuse: ReuseParams::default(),
            store_shards: 64,
            seed: 0x6e75_7073,
            adaptive: None,
            backend: Backend::Virtual,
        }
    }

    /// Lapse: a pure relocation PS (no replicated keys).
    pub fn lapse(topology: Topology, n_keys: u64, value_len: usize) -> NupsConfig {
        NupsConfig { replicated_keys: Vec::new(), ..Self::nups(topology, n_keys, value_len) }
    }

    /// Classic PS: static allocation, every remote access over the network.
    pub fn classic(topology: Topology, n_keys: u64, value_len: usize) -> NupsConfig {
        NupsConfig { relocation_enabled: false, ..Self::lapse(topology, n_keys, value_len) }
    }

    /// The paper's shared-memory single-node baseline.
    pub fn single_node(workers: u16, n_keys: u64, value_len: usize) -> NupsConfig {
        Self::lapse(Topology::single_node(workers), n_keys, value_len)
    }

    pub fn with_replicated_keys(mut self, keys: Vec<Key>) -> NupsConfig {
        self.replicated_keys = keys;
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> NupsConfig {
        self.cost = cost;
        self
    }

    pub fn with_sync_period(mut self, period: SimDuration) -> NupsConfig {
        self.sync_period = period;
        self
    }

    pub fn with_clip(mut self, clip: ClipPolicy) -> NupsConfig {
        self.clip = clip;
        self
    }

    pub fn with_reuse(mut self, reuse: ReuseParams) -> NupsConfig {
        self.reuse = reuse;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> NupsConfig {
        self.seed = seed;
        self
    }

    /// Enable adaptive technique management.
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> NupsConfig {
        self.adaptive = Some(adaptive);
        self
    }

    /// Select the runtime backend the server executes on.
    pub fn with_backend(mut self, backend: Backend) -> NupsConfig {
        self.backend = backend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_constructors_differ_as_intended() {
        let t = Topology::new(4, 2);
        let nups = NupsConfig::nups(t, 100, 8).with_replicated_keys(vec![1, 2]);
        assert!(nups.relocation_enabled);
        assert_eq!(nups.replicated_keys, vec![1, 2]);

        let lapse = NupsConfig::lapse(t, 100, 8);
        assert!(lapse.relocation_enabled);
        assert!(lapse.replicated_keys.is_empty());

        let classic = NupsConfig::classic(t, 100, 8);
        assert!(!classic.relocation_enabled);
        assert!(classic.replicated_keys.is_empty());

        let single = NupsConfig::single_node(8, 100, 8);
        assert_eq!(single.topology.n_nodes, 1);
        assert_eq!(single.topology.workers_per_node, 8);
    }

    #[test]
    fn paper_defaults() {
        let c = NupsConfig::nups(Topology::new(8, 8), 100, 8);
        assert_eq!(c.sync_period, SimDuration::from_millis(40));
        assert_eq!(c.reuse.pool_size, 250);
        assert_eq!(c.reuse.use_frequency, 16);
        assert_eq!(c.backend, Backend::Virtual, "simulation is the default backend");
        let w = c.with_backend(Backend::WallClock);
        assert_eq!(w.backend, Backend::WallClock);
    }
}
