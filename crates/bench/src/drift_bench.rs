//! Shared pieces of the drift-throughput workload: the one benchmark that
//! runs identically on the virtual-time simulator, the in-process
//! wall-clock backend, and the TCP multi-process deployment — so the
//! three final models can be compared bit for bit.
//!
//! Everything here is deterministic in the (scale, topology) pair alone:
//! the workload batches, the technique assignment, and the initial values
//! are derived without any cross-process exchange, which is what lets every
//! `nups-node` process construct the same configuration independently.
//! Deltas are integer-valued, so floating-point accumulation is exact and
//! the final model does not depend on scheduling, interleaving, or which
//! fabric carried the updates.

use nups_core::adaptive::AdaptiveConfig;
use nups_core::system::run_epoch;
use nups_core::technique::heuristic_replicated_keys;
use nups_core::{Key, NupsConfig, ParameterServer, PsWorker};
use nups_sim::hist::HistSnapshot;
use nups_sim::time::SimDuration;
use nups_sim::topology::Topology;
use nups_workloads::drift::{DriftConfig, DriftingHotspots};

use crate::tasks::Scale;

pub const VALUE_LEN: usize = 8;

/// The drift workload at a bench scale (the same shape `throughput` has
/// always used).
pub fn workload_for(scale: Scale) -> DriftingHotspots {
    let (n_keys, hot_keys, phases, batches_per_phase) = match scale {
        Scale::Tiny => (1024, 4, 3, 40),
        Scale::Small => (4096, 8, 4, 150),
        Scale::Medium => (16384, 16, 5, 300),
    };
    DriftingHotspots::new(DriftConfig {
        n_keys,
        hot_keys,
        hot_share: 0.9,
        phases,
        batches_per_phase,
        batch: 8,
        seed: 0x7490,
    })
}

/// Deterministic initial value of every key.
pub fn init_value(key: Key, v: &mut [f32]) {
    v.fill((key % 97) as f32);
}

/// The parameter-server configuration every execution mode runs: NuPS
/// with the phase-0 heuristic replication choice and a 1 ms sync period.
pub fn ps_config(topology: Topology, workload: &DriftingHotspots) -> NupsConfig {
    let cfg = workload.config();
    let freqs = workload.phase_frequencies(0, topology.total_workers());
    NupsConfig::nups(topology, cfg.n_keys, VALUE_LEN)
        .with_replicated_keys(heuristic_replicated_keys(&freqs))
        .with_sync_period(SimDuration::from_millis(1))
}

/// [`ps_config`] plus the adaptive technique manager. The adaptive
/// parameters are part of the cross-mode contract: every process of a
/// multi-process run derives the same configuration, and the leader-driven
/// epoch protocol keeps the final model bit-identical to the in-process
/// backends even when the adaptation *decisions* differ (deltas are
/// conserved through every promotion and demotion).
pub fn adaptive_ps_config(topology: Topology, workload: &DriftingHotspots) -> NupsConfig {
    ps_config(topology, workload).with_adaptive(AdaptiveConfig {
        adapt_every: 2,
        sketch_bits: 14,
        ..AdaptiveConfig::default()
    })
}

/// Total key accesses (pulls + pushes) the whole cluster performs.
pub fn total_accesses(workload: &DriftingHotspots, topology: Topology) -> u64 {
    let mut accesses = 0u64;
    for phase in 0..workload.config().phases {
        for worker in 0..topology.total_workers() {
            for batch in workload.worker_batches(phase, worker) {
                accesses += 2 * batch.len() as u64;
            }
        }
    }
    accesses
}

/// What one process observed while driving the workload: per-phase times
/// on the server's (possibly virtual) timeline, plus the pull/push wall
/// latency its workers recorded into the observability histograms
/// ([`nups_sim::hist`]), diffed around the run so a reused server's prior
/// traffic is excluded.
pub struct PhaseRun {
    pub epoch_times: Vec<SimDuration>,
    pub pull: HistSnapshot,
    pub push: HistSnapshot,
}

impl PhaseRun {
    /// Percentile of the combined pull+push latency, in microseconds
    /// (`pct` in 0..=100). Nearest-rank over the histogram buckets,
    /// reported as the bucket's upper bound — conservative by at most
    /// 12.5 %. Zero when no ops ran.
    pub fn op_percentile_us(&self, pct: f64) -> u64 {
        let mut ops = self.pull.clone();
        ops.merge(&self.push);
        ops.percentile(pct) / 1_000
    }

    /// Total pull/push calls the run recorded.
    pub fn op_count(&self) -> u64 {
        self.pull.count + self.push.count
    }
}

/// Drive every phase of the workload on the workers this process hosts
/// (all of them in-process, the local node's in a multi-process
/// deployment). Batches are selected by each worker's *global* index, so
/// the cluster-wide work is identical no matter how workers are spread
/// over processes. Returns the per-phase times on the server's timeline.
pub fn run_phases(ps: &ParameterServer, workload: &DriftingHotspots) -> Vec<SimDuration> {
    run_phases_timed(ps, workload).epoch_times
}

/// [`run_phases`], also reporting the per-op wall-latency histograms the
/// workers recorded, so the bench can quote p50/p99. The histograms are
/// always on (recording is one relaxed `fetch_add`), so this just
/// brackets the run with two snapshots.
pub fn run_phases_timed(ps: &ParameterServer, workload: &DriftingHotspots) -> PhaseRun {
    let topo = ps.config().topology;
    let mut workers = ps.workers();
    let phases = workload.config().phases;
    let mut epoch_times = Vec::with_capacity(phases);
    let mut last = ps.virtual_time();
    let hists = &ps.observability().hists;
    let (pull0, push0) = (hists.pull.snapshot(), hists.push.snapshot());
    for phase in 0..phases {
        run_epoch(&mut workers, |_, w| {
            let global = topo.worker_index(w.id());
            for keys in workload.worker_batches(phase, global) {
                let mut out = vec![0.0f32; keys.len() * VALUE_LEN];
                w.pull_many(&keys, &mut out);
                let deltas = vec![1.0f32; keys.len() * VALUE_LEN];
                w.push_many(&keys, &deltas);
                w.charge_compute(500 * keys.len() as u64);
            }
        });
        let now = ps.virtual_time();
        epoch_times.push(now.saturating_since(last));
        last = now;
    }
    PhaseRun {
        epoch_times,
        pull: hists.pull.snapshot().saturating_sub(&pull0),
        push: hists.push.snapshot().saturating_sub(&push0),
    }
}

/// Bit patterns of a final model (for exact cross-mode comparison).
pub fn model_bits(model: Vec<Vec<f32>>) -> Vec<Vec<u32>> {
    model.into_iter().map(|v| v.into_iter().map(f32::to_bits).collect()).collect()
}

/// Serialize model bits: one line per key, lowercase hex words separated
/// by commas. Stable, diffable, and independent of float formatting.
pub fn render_model(bits: &[Vec<u32>]) -> String {
    let mut out = String::new();
    for v in bits {
        let words: Vec<String> = v.iter().map(|w| format!("{w:08x}")).collect();
        out.push_str(&words.join(","));
        out.push('\n');
    }
    out
}

/// Parse [`render_model`] output.
pub fn parse_model(s: &str) -> Option<Vec<Vec<u32>>> {
    s.lines()
        .map(|line| line.split(',').map(|w| u32::from_str_radix(w.trim(), 16).ok()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_run_collects_one_sample_per_op() {
        let topo = Topology::new(2, 1);
        let workload = workload_for(Scale::Tiny);
        let ps = ParameterServer::new(ps_config(topo, &workload), init_value);
        let run = run_phases_timed(&ps, &workload);
        // One pull + one push per batch, over every phase and worker,
        // recorded into the observability histograms.
        let batches: usize = (0..workload.config().phases)
            .map(|p| {
                (0..topo.total_workers())
                    .map(|w| workload.worker_batches(p, w).len())
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(run.pull.count, batches as u64);
        assert_eq!(run.push.count, batches as u64);
        assert_eq!(run.op_count(), 2 * batches as u64);
        assert!(run.op_percentile_us(99.0) >= run.op_percentile_us(50.0));
        assert_eq!(run.epoch_times.len(), workload.config().phases);
        ps.shutdown();
    }

    #[test]
    fn model_render_parse_roundtrip() {
        let bits = vec![vec![0u32, 0xDEAD_BEEF, 42], vec![u32::MAX]];
        let s = render_model(&bits);
        assert_eq!(parse_model(&s), Some(bits));
        assert_eq!(parse_model("zz"), None);
    }

    #[test]
    fn run_phases_matches_the_historic_throughput_workload() {
        // The same tiny run the throughput bench has gated since PR 4:
        // driving by global worker index must not change the workload.
        let topo = Topology::new(2, 1);
        let workload = workload_for(Scale::Tiny);
        let ps = ParameterServer::new(ps_config(topo, &workload), init_value);
        let times = run_phases(&ps, &workload);
        assert_eq!(times.len(), workload.config().phases);
        let model = model_bits(ps.read_all());
        // Every key got `init + count` where count is its total access
        // count; spot-check exactness on key 0.
        let count = {
            let mut c = 0u64;
            for phase in 0..workload.config().phases {
                for w in 0..topo.total_workers() {
                    for b in workload.worker_batches(phase, w) {
                        c += b.iter().filter(|&&k| k == 0).count() as u64;
                    }
                }
            }
            c
        };
        // init_value(0) is 0.0, so the final value is just the count.
        let expect = count as f32;
        assert_eq!(model[0], vec![expect.to_bits(); VALUE_LEN]);
        assert_eq!(total_accesses(&workload, topo) % 2, 0);
        ps.shutdown();
    }
}
