//! Per-node runtime state and the immutable cluster-shared context.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nups_sim::metrics::ClusterMetrics;
use nups_sim::time::SimDuration;
use nups_sim::topology::{NodeId, Topology};
use nups_sim::trace::{actor, Observability};

use crate::adaptive::{AdaptiveManager, DistAdaptive};
use crate::key::{Key, KeySpace};
use crate::replication::{ReplicaSet, ReplicaSync};
use crate::runtime::{Fabric, Runtime};
use crate::sampling::scheme::SamplingScheme;
use crate::sampling::Distribution;
use crate::store::Store;
use crate::syncgate::SyncGate;
use crate::technique::TechniqueMap;

/// The location directory a home node keeps for its key range: current
/// owner of every relocation-managed key homed here. Only the home node's
/// server thread mutates it.
pub struct Directory {
    base: Key,
    owners: Mutex<Vec<u16>>,
}

impl Directory {
    pub fn new(range: std::ops::Range<Key>, initial_owner: NodeId) -> Directory {
        Directory {
            base: range.start,
            owners: Mutex::new(vec![initial_owner.0; (range.end - range.start) as usize]),
        }
    }

    pub fn owner(&self, key: Key) -> NodeId {
        NodeId(self.owners.lock()[(key - self.base) as usize])
    }

    pub fn set_owner(&self, key: Key, node: NodeId) {
        self.owners.lock()[(key - self.base) as usize] = node.0;
    }
}

/// Mutable state of one simulated node.
pub struct NodeState {
    pub node: NodeId,
    pub store: Store,
    pub directory: Directory,
    pub replicas: Arc<ReplicaSet>,
    /// Virtual time spent by this node's background machinery (e.g. ESSP
    /// broadcast propagation). Folded into epoch makespans.
    pub background_busy: AtomicU64,
}

impl NodeState {
    pub fn add_background_busy(&self, d: SimDuration) {
        self.background_busy.fetch_add(d.as_nanos(), Ordering::Relaxed);
    }

    pub fn background_busy(&self) -> SimDuration {
        SimDuration(self.background_busy.load(Ordering::Relaxed))
    }
}

/// Immutable context shared by every thread of one parameter server.
pub struct Shared {
    pub topology: Topology,
    pub keyspace: KeySpace,
    pub technique: TechniqueMap,
    pub value_len: usize,
    pub relocation_enabled: bool,
    pub metrics: Arc<ClusterMetrics>,
    /// Latency histograms and the event journal (one bundle per process;
    /// see [`nups_sim::trace`]).
    pub obs: Arc<Observability>,
    /// The node lane process-level journal events (sync rounds) are
    /// attributed to: the deployed node in per-node mode, node 0 for the
    /// in-process cluster-wide rendezvous.
    pub journal_node: NodeId,
    /// The execution backend: clocks, pricing, progress waits.
    pub runtime: Arc<dyn Runtime>,
    /// The message fabric every port is bound from.
    pub fabric: Arc<dyn Fabric>,
    pub gate: Arc<SyncGate>,
    pub sync: Arc<ReplicaSync>,
    /// The adaptive technique manager, when enabled by the configuration.
    pub adaptive: Option<AdaptiveManager>,
    /// Present in per-node deployments with adaptation enabled: the
    /// distributed epoch protocol's per-node state (see
    /// [`crate::adaptive`]).
    pub dist_adaptive: Option<DistAdaptive>,
    pub nodes: Vec<Arc<NodeState>>,
    /// Registered sampling distributions with the scheme the manager chose
    /// for each.
    pub dists: Mutex<Vec<Arc<(Distribution, SamplingScheme)>>>,
    /// Per-node deployments: peers that announced workload completion via
    /// [`crate::messages::Msg::SyncFin`]. The coordinator's model-assembly
    /// barrier waits for `n_nodes - 1` of these.
    pub sync_fins: AtomicU64,
    /// Per-node deployments with adaptation: peers whose
    /// [`crate::messages::Msg::FinFence`] arrived here. Every node waits
    /// for `n_nodes - 1` before declaring its finalize state drained — a
    /// fence proves all of that peer's sync broadcasts were folded.
    pub fin_fences: AtomicU64,
}

impl Shared {
    /// Wire size of one value payload.
    #[inline]
    pub fn value_bytes(&self) -> usize {
        4 + 4 * self.value_len
    }

    /// Record a peer's workload-completion announcement and wake the
    /// barrier waiter.
    pub fn note_sync_fin(&self) {
        self.sync_fins.fetch_add(1, Ordering::SeqCst);
        self.runtime.notify_progress();
    }

    /// Peers that have announced workload completion so far.
    pub fn sync_fins(&self) -> u64 {
        self.sync_fins.load(Ordering::SeqCst)
    }

    /// Record a peer's finalize fence and wake the drain waiter.
    pub fn note_fin_fence(&self) {
        self.fin_fences.fetch_add(1, Ordering::SeqCst);
        self.runtime.notify_progress();
    }

    /// Peers whose finalize fence has arrived so far.
    pub fn fin_fences(&self) -> u64 {
        self.fin_fences.load(Ordering::SeqCst)
    }

    /// Feed one key access into the adaptive manager's frequency sketch
    /// (no-op when adaptation is disabled).
    #[inline]
    pub fn record_access(&self, key: Key) {
        if let Some(mgr) = &self.adaptive {
            mgr.record_access(key);
        }
    }

    /// The work executed at a synchronization rendezvous: the replica
    /// all-reduce, then (when adaptation is enabled and due) an adaptation
    /// round. The returned duration slips the next sync boundary; the
    /// runtime decides whether it is the modelled duration (virtual
    /// backend) or the real execution time (wall-clock backend).
    pub fn merge_step(&self) -> SimDuration {
        let at = self.runtime.elapsed();
        let wall = std::time::Instant::now();
        let d = self.runtime.measure(&mut || {
            let sync_wall = std::time::Instant::now();
            let mut d = self.sync.sync_once(&self.metrics);
            self.obs.hists.sync_round.record(sync_wall.elapsed().as_nanos() as u64);
            if let Some(mgr) = &self.adaptive {
                d += mgr.maybe_adapt(self);
            }
            d
        });
        self.obs.hists.merge.record(wall.elapsed().as_nanos() as u64);
        // Journal the rendezvous as a span on this runtime's timeline; the
        // duration is the modelled one, so virtual-time traces stay
        // deterministic.
        self.obs.span(at, d.as_nanos(), self.journal_node.0, actor::SYNC, "sync_round", 0, 0);
        d
    }
}
