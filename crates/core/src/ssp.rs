//! The replication-PS baseline: SSP and ESSP, as in Petuum (Section 3.1.2).
//!
//! Parameters are statically allocated to their home node. Each node keeps
//! a *replica cache*; workers read through it and buffer their updates,
//! which are flushed to the owning servers at `advance_clock` (Petuum's
//! clock primitive).
//!
//! * **SSP** creates a replica on access and uses it until the clock-based
//!   staleness bound is exceeded, then refreshes it synchronously. Cold or
//!   expired replicas are the protocol's weakness for long-tail keys.
//! * **ESSP** additionally *subscribes* the node to every key it has
//!   accessed: the owner eagerly propagates each flushed update to all
//!   subscribers, keeping replicas warm at the cost of heavy
//!   over-communication (after warm-up every node replicates the full
//!   accessed model — the bottleneck Figure 8 shows).
//!
//! As with NuPS, protocol messages really cross the message fabric; the
//! eager propagation traffic is charged to per-node background-busy time,
//! and the paper's observation that Petuum pays intra-process messaging
//! even for node-local access is modelled via
//! [`CostModel::intra_process_msg`]. All flush and refresh timing routes
//! through the [`crate::runtime`] layer, so the baseline runs on either
//! the virtual-time simulator or the wall-clock backend
//! ([`SspConfig::with_backend`]).

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;

use nups_sim::clock::ClusterClocks;
use nups_sim::cost::CostModel;
use nups_sim::metrics::{ClusterMetrics, MetricsSnapshot};
use nups_sim::net::{Frame, Network};
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId, Topology, WorkerId};
use nups_sim::trace::Observability;
use nups_sim::WireEncode;

use crate::api::PsWorker;
use crate::key::{Key, KeySpace};
use crate::messages::{KeyUpdate, Msg};
use crate::runtime::{build_runtime, Backend, Fabric, Port, Runtime, RuntimeClock, SimFabric};
use crate::sampling::{ConformityLevel, DistId, Distribution, DistributionKind, SampleHandle};
use crate::store::{ServerAccess, Store};
use crate::value::add_assign;

/// Which replica-maintenance protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SspProtocol {
    Ssp,
    Essp,
}

/// Configuration of the baseline replication PS.
#[derive(Debug, Clone)]
pub struct SspConfig {
    pub topology: Topology,
    pub n_keys: u64,
    pub value_len: usize,
    pub cost: CostModel,
    pub protocol: SspProtocol,
    /// Staleness bound in clocks (the paper sweeps 1..1000).
    pub staleness: u64,
    /// Worker clock advances every `clock_every` data points (the paper
    /// tried 1, 10, 100 and saw 10 work best).
    pub clock_every: usize,
    pub seed: u64,
    /// Which runtime the baseline executes on (see
    /// [`crate::runtime::Backend`]).
    pub backend: Backend,
}

impl SspConfig {
    pub fn new(
        topology: Topology,
        n_keys: u64,
        value_len: usize,
        protocol: SspProtocol,
    ) -> SspConfig {
        SspConfig {
            topology,
            n_keys,
            value_len,
            cost: CostModel::cluster_default(),
            protocol,
            staleness: 10,
            clock_every: 10,
            seed: 0x5550,
            backend: Backend::Virtual,
        }
    }

    pub fn with_staleness(mut self, s: u64) -> SspConfig {
        self.staleness = s;
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> SspConfig {
        self.cost = cost;
        self
    }

    pub fn with_backend(mut self, backend: Backend) -> SspConfig {
        self.backend = backend;
        self
    }
}

struct CacheEntry {
    value: Vec<f32>,
    /// Worker clock at the time of the last refresh.
    tag: u64,
    /// ESSP: eagerly maintained, never considered stale.
    subscribed: bool,
}

struct SspNode {
    store: Store,
    cache: Mutex<FxHashMap<Key, CacheEntry>>,
    /// Owner-side ESSP subscriber lists for keys homed here.
    subscribers: Mutex<FxHashMap<Key, Vec<NodeId>>>,
    background_busy: AtomicU64,
}

struct SspShared {
    cfg: SspConfig,
    keyspace: KeySpace,
    nodes: Vec<Arc<SspNode>>,
    metrics: Arc<ClusterMetrics>,
    /// Per-op latency histograms — the baseline reports from the same
    /// observability layer NuPS does, so tail latencies compare directly.
    obs: Arc<Observability>,
    runtime: Arc<dyn Runtime>,
    fabric: Arc<dyn Fabric>,
    dists: Mutex<Vec<Arc<Distribution>>>,
}

/// A running SSP/ESSP parameter server.
pub struct SspPs {
    shared: Arc<SspShared>,
    servers: Vec<JoinHandle<()>>,
}

impl SspPs {
    pub fn new(cfg: SspConfig, mut init: impl FnMut(Key, &mut [f32])) -> SspPs {
        let topo = cfg.topology;
        let keyspace = KeySpace::new(cfg.n_keys, topo.n_nodes);
        let metrics = Arc::new(ClusterMetrics::new(topo.n_nodes as usize));
        let network = Network::new(topo, Arc::clone(&metrics));
        let fabric: Arc<dyn Fabric> = Arc::new(SimFabric::new(Arc::clone(&network)));
        let runtime = build_runtime(cfg.backend, cfg.cost, Arc::new(ClusterClocks::new(topo)));

        let mut scratch = vec![0.0f32; cfg.value_len];
        let nodes: Vec<Arc<SspNode>> = topo
            .nodes()
            .map(|node| {
                let store = Store::new(64);
                for key in keyspace.range_of(node) {
                    scratch.iter_mut().for_each(|x| *x = 0.0);
                    init(key, &mut scratch);
                    store.seed(key, scratch.clone());
                }
                let _ = node;
                Arc::new(SspNode {
                    store,
                    cache: Mutex::new(FxHashMap::default()),
                    subscribers: Mutex::new(FxHashMap::default()),
                    background_busy: AtomicU64::new(0),
                })
            })
            .collect();

        let shared = Arc::new(SspShared {
            cfg,
            keyspace,
            nodes,
            metrics,
            obs: Arc::new(Observability::new()),
            runtime,
            fabric,
            dists: Mutex::new(Vec::new()),
        });

        let servers = topo
            .nodes()
            .map(|node| {
                let endpoint = shared.fabric.bind(Addr::server(node));
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ssp-server-{node}"))
                    .spawn(move || run_ssp_server(shared, node, endpoint))
                    .expect("spawn ssp server")
            })
            .collect();

        SspPs { shared, servers }
    }

    pub fn register_distribution(
        &self,
        base_key: Key,
        n: u64,
        kind: DistributionKind,
        level: ConformityLevel,
    ) -> DistId {
        // Petuum has no sampling support: applications draw independent
        // samples and use direct access regardless of the level.
        let dist = Distribution::new(base_key, n, kind, level);
        let mut dists = self.shared.dists.lock();
        dists.push(Arc::new(dist));
        DistId(dists.len() - 1)
    }

    pub fn worker(&self, id: WorkerId) -> SspWorker {
        let endpoint = self.shared.fabric.bind(Addr::worker(id.node, id.local));
        let clock = self.shared.runtime.clock(id);
        let seed =
            self.shared.cfg.seed.wrapping_add(1 + self.shared.cfg.topology.worker_index(id) as u64);
        SspWorker {
            id,
            node: Arc::clone(&self.shared.nodes[id.node.index()]),
            shared: Arc::clone(&self.shared),
            endpoint,
            clock,
            logical_clock: 0,
            buffered: FxHashMap::default(),
            rng: SmallRng::seed_from_u64(seed),
            dists: self.shared.dists.lock().clone(),
        }
    }

    pub fn workers(&self) -> Vec<SspWorker> {
        self.shared.cfg.topology.workers().map(|w| self.worker(w)).collect()
    }

    pub fn read_value(&self, key: Key) -> Vec<f32> {
        let home = self.shared.keyspace.home(key);
        self.shared.nodes[home.index()].store.get(key).expect("key at home")
    }

    pub fn read_all(&self) -> Vec<Vec<f32>> {
        (0..self.shared.cfg.n_keys).map(|k| self.read_value(k)).collect()
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.total()
    }

    /// The baseline's observability bundle (per-op latency histograms).
    pub fn observability(&self) -> &Arc<Observability> {
        &self.shared.obs
    }

    pub fn virtual_time(&self) -> SimTime {
        let mut t = self.shared.runtime.elapsed();
        for n in &self.shared.nodes {
            t = t.max(SimTime(n.background_busy.load(std::sync::atomic::Ordering::Relaxed)));
        }
        t
    }

    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.servers.is_empty() {
            return;
        }
        for node in self.shared.cfg.topology.nodes() {
            self.shared.fabric.post(Frame {
                src: Addr::server(node),
                dst: Addr::server(node),
                sent_at: SimTime::ZERO,
                payload: Msg::Stop.to_bytes(),
            });
        }
        for h in self.servers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SspPs {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn run_ssp_server(shared: Arc<SspShared>, me: NodeId, endpoint: Box<dyn Port>) {
    let state = Arc::clone(&shared.nodes[me.index()]);
    while let Some(frame) = endpoint.recv() {
        let mut payload = frame.payload;
        let msg = match Msg::decode(&mut payload) {
            Ok(m) => m,
            Err(_) => continue,
        };
        match msg {
            Msg::SspPullReq { key, reply_to } => match state.store.server_pull(key, reply_to, 1) {
                ServerAccess::Served(Some(value)) => {
                    endpoint.send(
                        reply_to,
                        frame.sent_at,
                        Msg::SspPullResp { key, value }.to_bytes(),
                    );
                }
                _ => debug_assert!(false, "SSP key {key} not at home {me}"),
            },
            Msg::SspFlush { from, updates } => {
                // Apply, then (ESSP) propagate to subscribers.
                let mut per_subscriber: FxHashMap<NodeId, Vec<KeyUpdate>> = FxHashMap::default();
                for u in updates {
                    let _ = state.store.server_push(u.key, &u.delta, Addr::server(me), 1);
                    if shared.cfg.protocol == SspProtocol::Essp {
                        let subs = state.subscribers.lock();
                        if let Some(nodes) = subs.get(&u.key) {
                            for &n in nodes {
                                if n != from {
                                    per_subscriber.entry(n).or_default().push(u.clone());
                                }
                            }
                        }
                    }
                }
                for (dst, updates) in per_subscriber {
                    let msg = Msg::SspBroadcast { updates };
                    let bytes = msg.encoded_len();
                    endpoint.send(Addr::server(dst), frame.sent_at, msg.to_bytes());
                    // Eager propagation is background server work.
                    state.background_busy.fetch_add(
                        shared.runtime.pricing().message(bytes).as_nanos(),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                }
            }
            Msg::SspBroadcast { updates } => {
                let mut cache = state.cache.lock();
                for u in updates {
                    if let Some(e) = cache.get_mut(&u.key) {
                        add_assign(&mut e.value, &u.delta);
                    }
                }
            }
            Msg::SspSubscribe { from, keys } => {
                let mut subs = state.subscribers.lock();
                for k in keys {
                    let list = subs.entry(k).or_default();
                    if !list.contains(&from) {
                        list.push(from);
                    }
                }
            }
            Msg::Stop => break,
            other => debug_assert!(false, "unexpected message at SSP server: {other:?}"),
        }
    }
}

/// Worker handle of the SSP/ESSP baseline.
pub struct SspWorker {
    id: WorkerId,
    node: Arc<SspNode>,
    shared: Arc<SspShared>,
    endpoint: Box<dyn Port>,
    clock: Box<dyn RuntimeClock>,
    logical_clock: u64,
    buffered: FxHashMap<Key, Vec<f32>>,
    rng: SmallRng,
    dists: Vec<Arc<Distribution>>,
}

impl SspWorker {
    fn reply_addr(&self) -> Addr {
        Addr::worker(self.id.node, self.id.local)
    }

    fn charge_intra_process(&mut self) {
        let c = self.shared.runtime.pricing().intra_process_msg();
        self.clock.advance(c);
    }

    /// Synchronous replica refresh from the owner.
    fn refresh(&mut self, key: Key) -> Vec<f32> {
        let home = self.shared.keyspace.home(key);
        let m = self.shared.metrics.node(self.id.node);
        m.inc(|m| &m.replica_refreshes);
        if home == self.id.node {
            // Local owner, but Petuum still pays intra-process messaging.
            self.charge_intra_process();
            return self.node.store.get(key).expect("key at home");
        }
        m.inc(|m| &m.remote_pulls);
        let req = Msg::SspPullReq { key, reply_to: self.reply_addr() };
        let req_bytes = req.encoded_len();
        self.endpoint.send(Addr::server(home), self.clock.now(), req.to_bytes());
        let frame = self.endpoint.recv().expect("ssp server gone");
        let wire_bytes = frame.wire_bytes();
        let mut payload = frame.payload;
        match Msg::decode(&mut payload).expect("bad reply") {
            Msg::SspPullResp { key: k, value } => {
                debug_assert_eq!(k, key);
                let cost = self.shared.runtime.pricing().round_trip(req_bytes, wire_bytes);
                self.clock.advance(cost);
                if self.shared.cfg.protocol == SspProtocol::Essp {
                    let sub = Msg::SspSubscribe { from: self.id.node, keys: vec![key] };
                    self.endpoint.send(Addr::server(home), self.clock.now(), sub.to_bytes());
                }
                value
            }
            other => panic!("expected SspPullResp, got {other:?}"),
        }
    }

    /// Send buffered updates to their owning servers.
    fn flush(&mut self) {
        if self.buffered.is_empty() {
            return;
        }
        let mut per_node: FxHashMap<NodeId, Vec<KeyUpdate>> = FxHashMap::default();
        for (key, delta) in self.buffered.drain() {
            let home = self.shared.keyspace.home(key);
            per_node.entry(home).or_default().push(KeyUpdate { key, delta });
        }
        for (dst, updates) in per_node {
            let msg = Msg::SspFlush { from: self.id.node, updates };
            let bytes = msg.encoded_len();
            self.endpoint.send(Addr::server(dst), self.clock.now(), msg.to_bytes());
            if dst == self.id.node {
                self.charge_intra_process();
            } else {
                let cost = self.shared.runtime.pricing().message(bytes);
                self.clock.advance(cost);
            }
        }
    }
}

impl PsWorker for SspWorker {
    fn value_len(&self) -> usize {
        self.shared.cfg.value_len
    }

    fn pull(&mut self, key: Key, out: &mut [f32]) {
        let wall = std::time::Instant::now();
        let fresh_enough = {
            let cache = self.node.cache.lock();
            match cache.get(&key) {
                Some(e)
                    if e.subscribed || e.tag + self.shared.cfg.staleness >= self.logical_clock =>
                {
                    out.copy_from_slice(&e.value);
                    true
                }
                _ => false,
            }
        };
        let m = self.shared.metrics.node(self.id.node);
        if fresh_enough {
            m.inc(|m| &m.replica_pulls);
            m.inc(|m| &m.local_pulls);
            self.charge_intra_process();
        } else {
            let value = self.refresh(key);
            out.copy_from_slice(&value);
            let mut cache = self.node.cache.lock();
            cache.insert(
                key,
                CacheEntry {
                    value,
                    tag: self.logical_clock,
                    subscribed: self.shared.cfg.protocol == SspProtocol::Essp,
                },
            );
        }
        self.shared.obs.hists.pull.record(wall.elapsed().as_nanos() as u64);
    }

    fn push(&mut self, key: Key, delta: &[f32]) {
        let wall = std::time::Instant::now();
        {
            let mut cache = self.node.cache.lock();
            if let Some(e) = cache.get_mut(&key) {
                add_assign(&mut e.value, delta);
            }
        }
        match self.buffered.get_mut(&key) {
            Some(acc) => add_assign(acc, delta),
            None => {
                self.buffered.insert(key, delta.to_vec());
            }
        }
        let m = self.shared.metrics.node(self.id.node);
        m.inc(|m| &m.replica_pushes);
        m.inc(|m| &m.local_pushes);
        self.charge_intra_process();
        self.shared.obs.hists.push.record(wall.elapsed().as_nanos() as u64);
    }

    fn localize(&mut self, _keys: &[Key]) {
        // Static allocation: nothing to do.
    }

    /// Petuum's clock primitive: advance the logical clock; flush buffered
    /// updates to the owners every `clock_every`-th advance (the paper
    /// clocks every data point and found flushing every 10th best).
    fn advance_clock(&mut self) {
        self.logical_clock += 1;
        self.shared.metrics.node(self.id.node).inc(|m| &m.clock_advances);
        if !self.logical_clock.is_multiple_of(self.shared.cfg.clock_every.max(1) as u64) {
            return;
        }
        self.flush();
    }

    fn charge_compute(&mut self, flops: u64) {
        let c = self.shared.runtime.pricing().compute(flops);
        self.clock.advance(c);
    }

    fn prepare_sample(&mut self, dist: DistId, n: usize) -> SampleHandle {
        // No sampling support in the PS: draw independently, access
        // directly (what applications on Petuum must do, Section 5.1).
        let d = Arc::clone(&self.dists[dist.0]);
        let keys: Vec<Key> = (0..n).map(|_| d.sample(&mut self.rng)).collect();
        SampleHandle::new(dist, keys)
    }

    fn pull_sample(&mut self, handle: &mut SampleHandle, n: usize) -> Vec<(Key, Vec<f32>)> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let Some((key, _)) = handle.queue.pop_front() else { break };
            let mut value = vec![0.0; self.shared.cfg.value_len];
            self.pull(key, &mut value);
            self.shared.metrics.node(self.id.node).inc(|m| &m.samples_drawn);
            out.push((key, value));
        }
        out
    }

    fn begin_epoch(&mut self) {
        self.clock.refresh();
    }

    fn end_epoch(&mut self) {
        self.logical_clock += 1;
        self.flush();
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::run_epoch;

    fn zero_cfg(topo: Topology, protocol: SspProtocol) -> SspConfig {
        let mut cfg = SspConfig::new(topo, 10, 2, protocol).with_cost(CostModel::zero());
        cfg.clock_every = 1; // flush on every clock advance in unit tests
        cfg
    }

    #[test]
    fn pull_caches_and_serves_stale_reads() {
        let ps =
            SspPs::new(zero_cfg(Topology::new(2, 1), SspProtocol::Ssp), |k, v| v.fill(k as f32));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0; 2];
        w.pull(7, &mut buf); // key 7 homed at node 1 → refresh
        assert_eq!(buf, vec![7.0; 2]);
        w.pull(7, &mut buf); // served from cache
        let m = ps.metrics();
        assert_eq!(m.replica_refreshes, 1);
        assert_eq!(m.replica_pulls, 1);
        ps.shutdown();
    }

    #[test]
    fn stale_replica_forces_synchronous_refresh() {
        let cfg = zero_cfg(Topology::new(2, 1), SspProtocol::Ssp).with_staleness(2);
        let ps = SspPs::new(cfg, |_, v| v.fill(0.0));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0; 2];
        w.pull(7, &mut buf);
        assert_eq!(ps.metrics().replica_refreshes, 1);
        // Within the staleness bound: cache hit.
        w.advance_clock();
        w.pull(7, &mut buf);
        assert_eq!(ps.metrics().replica_refreshes, 1);
        // Past the bound: synchronous refresh.
        w.advance_clock();
        w.advance_clock();
        w.advance_clock();
        w.pull(7, &mut buf);
        assert_eq!(ps.metrics().replica_refreshes, 2);
        ps.shutdown();
    }

    #[test]
    fn flush_applies_updates_at_owner() {
        let ps = SspPs::new(zero_cfg(Topology::new(2, 1), SspProtocol::Ssp), |_, v| v.fill(0.0));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0; 2];
        w.pull(7, &mut buf);
        w.push(7, &[1.0, 2.0]);
        // Own writes visible through the cache immediately.
        w.pull(7, &mut buf);
        assert_eq!(buf, vec![1.0, 2.0]);
        // Owner sees them only after the clock advance.
        assert_eq!(ps.read_value(7), vec![0.0, 0.0]);
        w.advance_clock();
        // Flush is async; wait for the server to apply.
        for _ in 0..100 {
            if ps.read_value(7) == vec![1.0, 2.0] {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(ps.read_value(7), vec![1.0, 2.0]);
        ps.shutdown();
    }

    #[test]
    fn essp_broadcasts_keep_replicas_warm() {
        let ps = SspPs::new(zero_cfg(Topology::new(2, 1), SspProtocol::Essp), |_, v| v.fill(0.0));
        let mut w0 = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut w1 = ps.worker(WorkerId { node: NodeId(1), local: 0 });
        let mut buf = vec![0.0; 2];
        // Both nodes access key 7 (homed at node 1) → node 0 subscribes.
        w0.pull(7, &mut buf);
        w1.pull(7, &mut buf);
        std::thread::sleep(std::time::Duration::from_millis(5));
        // Node 1 updates and flushes; the owner must broadcast to node 0.
        w1.push(7, &[5.0, 5.0]);
        w1.advance_clock();
        for _ in 0..200 {
            w0.pull(7, &mut buf);
            if buf == vec![5.0; 2] {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(buf, vec![5.0; 2], "ESSP broadcast not applied");
        // ESSP replica stays warm: no extra refresh even at high clock.
        let refreshes = ps.metrics().replica_refreshes;
        for _ in 0..50 {
            w0.advance_clock();
        }
        w0.pull(7, &mut buf);
        assert_eq!(ps.metrics().replica_refreshes, refreshes);
        ps.shutdown();
    }

    #[test]
    fn ssp_runs_on_the_wall_clock_backend() {
        let cfg = SspConfig::new(Topology::new(2, 1), 10, 2, SspProtocol::Ssp)
            .with_backend(Backend::WallClock);
        let ps = SspPs::new(cfg, |k, v| v.fill(k as f32));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0; 2];
        w.pull(7, &mut buf); // remote refresh over the real channel fabric
        assert_eq!(buf, vec![7.0; 2]);
        w.push(7, &[1.0, 1.0]);
        w.end_epoch(); // flushes the buffered update
        for _ in 0..500 {
            if ps.read_value(7) == vec![8.0; 2] {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(ps.read_value(7), vec![8.0; 2]);
        assert!(ps.virtual_time() > SimTime::ZERO, "wall backend reports real elapsed time");
        ps.shutdown();
    }

    #[test]
    fn concurrent_workers_updates_all_arrive() {
        let cfg = SspConfig::new(Topology::new(2, 2), 4, 1, SspProtocol::Ssp)
            .with_cost(CostModel::zero());
        let ps = SspPs::new(cfg, |_, v| v.fill(0.0));
        let mut workers = ps.workers();
        run_epoch(&mut workers, |_, w| {
            for i in 0..100 {
                w.push(0, &[1.0]);
                if i % 10 == 9 {
                    w.advance_clock();
                }
            }
        });
        // end_epoch flushed the rest; wait for async applies.
        for _ in 0..500 {
            if ps.read_value(0) == vec![400.0] {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(ps.read_value(0), vec![400.0]);
        ps.shutdown();
    }
}
