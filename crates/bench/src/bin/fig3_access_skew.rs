//! Figure 3: number of accesses per parameter in one epoch, split into
//! direct and sampling access, sorted by total access count — plus the
//! headline skew statistics quoted in Section 2.1.
//!
//! Usage: cargo run --release -p nups-bench --bin fig3_access_skew -- \
//!   [--scale small] [--json PATH]

use nups_bench::json::Json;
use nups_bench::report::print_table;
use nups_bench::{Args, Scale, TaskKind};
use nups_workloads::corpus::{Corpus, CorpusConfig};
use nups_workloads::kg::{KgConfig, KnowledgeGraph};
use nups_workloads::trace::AccessTrace;
use nups_workloads::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kge_trace(scale: Scale) -> AccessTrace {
    let (e, r, train, n_neg) = match scale {
        Scale::Tiny => (600, 8, 6_000, 2),
        Scale::Small => (4_000, 16, 40_000, 4),
        Scale::Medium => (20_000, 32, 200_000, 8),
    };
    let kg = KnowledgeGraph::generate(KgConfig {
        n_entities: e,
        n_relations: r,
        n_train: train,
        n_test: 100,
        n_clusters: 16.min(e / 4),
        popularity_alpha: 1.0,
        noise: 0.05,
        seed: 7,
    });
    let mut trace = AccessTrace::new(e + r);
    let mut rng = StdRng::seed_from_u64(1);
    let uniform = Zipf::new(e, 0.0);
    for t in &kg.train {
        // Direct access: subject, relation, object (read + write each).
        trace.record_direct(t.s as usize, 2);
        trace.record_direct(e + t.r as usize, 2);
        trace.record_direct(t.o as usize, 2);
        // Sampling access: n_neg perturbations per side, uniform over
        // entities (Section 2.2).
        for _ in 0..2 * n_neg {
            trace.record_sampling(uniform.sample(&mut rng), 2);
        }
    }
    trace
}

fn wv_trace(scale: Scale) -> AccessTrace {
    let (v, s, len, n_neg, window) = match scale {
        Scale::Tiny => (600, 1_200, 8, 2, 5usize),
        Scale::Small => (4_000, 6_000, 12, 3, 5),
        Scale::Medium => (20_000, 30_000, 14, 3, 5),
    };
    let corpus = Corpus::generate(CorpusConfig {
        vocab_size: v,
        n_sentences: s,
        sentence_len: len,
        n_topics: 20.min(v / 10),
        zipf_alpha: 1.0,
        noise: 0.1,
        seed: 11,
    });
    let mut trace = AccessTrace::new(2 * v);
    let mut rng = StdRng::seed_from_u64(2);
    let noise = Zipf::from_weights(corpus.noise_weights());
    for sent in &corpus.sentences {
        for (i, &center) in sent.iter().enumerate() {
            let b = 1 + (i % window);
            let (lo, hi) = (i.saturating_sub(b), (i + b + 1).min(sent.len()));
            for (j, &ctx) in sent.iter().enumerate().take(hi).skip(lo) {
                if j == i {
                    continue;
                }
                // Direct: input vector of the center, output of context.
                trace.record_direct(center as usize, 2);
                trace.record_direct(v + ctx as usize, 2);
                // Sampling: n_neg negatives from the output layer.
                for _ in 0..n_neg {
                    trace.record_sampling(v + noise.sample(&mut rng), 2);
                }
            }
        }
    }
    trace
}

/// The skew statistics as stable integers (ppm for shares) for the CI
/// regression report.
fn trace_json(trace: &AccessTrace) -> Json {
    Json::obj()
        .set("total_accesses", trace.total_direct() + trace.total_sampling())
        .set("sampling_share_ppm", (1e6 * trace.sampling_share()).round() as u64)
        .set("top_0p02pct_share_ppm", (1e6 * trace.share_of_top(0.0002)).round() as u64)
        .set("top_1pct_share_ppm", (1e6 * trace.share_of_top(0.01)).round() as u64)
}

fn report(name: &str, trace: &AccessTrace) {
    println!("\n##### Figure 3 — {name} #####");
    let total = trace.total_direct() + trace.total_sampling();
    println!("total accesses: {total}");
    println!("sampling share: {:.1}%", 100.0 * trace.sampling_share());
    for share in [0.0002, 0.001, 0.01, 0.1] {
        println!(
            "hottest {:>7.4}% of keys receive {:>5.1}% of accesses",
            share * 100.0,
            100.0 * trace.share_of_top(share)
        );
    }
    let rows: Vec<Vec<String>> = trace
        .loglog_points(14)
        .into_iter()
        .map(|(rank, total)| vec![format!("{rank}"), format!("{total}")])
        .collect();
    print_table(&format!("accesses per parameter, by rank ({name})"), &["rank", "accesses"], &rows);
}

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let tasks = args.tasks();
    let mut json = Json::obj().set("bench", "fig3_access_skew").set("scale", scale.name());
    if tasks.contains(&TaskKind::Kge) {
        let trace = kge_trace(scale);
        report("KGE (Figure 3a)", &trace);
        json = json.set("kge", trace_json(&trace));
    }
    if tasks.contains(&TaskKind::Wv) {
        let trace = wv_trace(scale);
        report("WV (Figure 3b)", &trace);
        json = json.set("wv", trace_json(&trace));
    }
    if let Some(path) = args.get("json") {
        std::fs::write(path, json.render()).expect("write json report");
        eprintln!("[fig3] wrote {path}");
    }
}
