//! Vendored stand-in for the `crossbeam` crate (the build environment has
//! no network access to crates.io). Provides `crossbeam::channel` with
//! unbounded MPMC channels: cloneable senders *and* receivers, with the
//! same disconnect semantics as crossbeam-channel.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        avail: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            avail: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.avail.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect.
                let _guard = self.shared.queue.lock();
                self.shared.avail.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.avail.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .avail
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).is_empty()
        }

        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u8>();
            let r = rx.recv_timeout(Duration::from_millis(20));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 100 {
                if let Ok(v) = rx.recv() {
                    got.push(v);
                }
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
