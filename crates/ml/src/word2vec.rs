//! The word-vectors task (paper Section 5.1, Table 2 row 2).
//!
//! Skip-gram with negative sampling (Mikolov et al.): for each
//! (center, context) pair inside a random-width window, one positive
//! update and `n_neg` negatives drawn from the unigram^0.75 noise
//! distribution via the PS sampling API. Frequent words are subsampled.
//! Quality is planted-topic coherence × 100 (the synthetic analogue of
//! analogy accuracy; see DESIGN.md).
//!
//! Key layout: input vector of word `w` → key `w`; output vector → key
//! `vocab + w`. Sampling targets the output layer only, exactly as in the
//! paper's Figure 3b.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use nups_core::api::PsWorker;
use nups_core::key::Key;
use nups_core::sampling::{ConformityLevel, DistId, DistributionKind};
use nups_workloads::corpus::Corpus;
use nups_workloads::partition::partition_contiguous;

use crate::complex::{logistic_loss, sigmoid};
use crate::eval::cosine;
use crate::task::{DistSpec, QualityDirection, TrainTask};
use crate::util::init_embedding;

/// Word2Vec task configuration.
#[derive(Debug, Clone)]
pub struct W2vConfig {
    /// Embedding dimension (paper: 1000).
    pub dim: usize,
    /// Negative samples per pair (paper: 3).
    pub n_neg: usize,
    /// Maximum window radius (paper: 5).
    pub window: usize,
    /// Frequent-word subsampling threshold (paper: 0.01).
    pub subsample_t: f64,
    pub lr: f32,
    pub init_scale: f32,
    /// Sentences to localize ahead.
    pub prefetch: usize,
    pub level: ConformityLevel,
    /// Word pairs sampled per class during evaluation.
    pub eval_pairs: usize,
    pub seed: u64,
}

impl Default for W2vConfig {
    fn default() -> W2vConfig {
        W2vConfig {
            dim: 16,
            n_neg: 3,
            window: 5,
            subsample_t: 0.01,
            lr: 0.05,
            init_scale: 0.1,
            prefetch: 2,
            level: ConformityLevel::Bounded,
            eval_pairs: 2000,
            seed: 31,
        }
    }
}

/// The task, pre-partitioned over workers (contiguous sentence ranges).
pub struct W2vTask {
    corpus: Arc<Corpus>,
    cfg: W2vConfig,
    partitions: Vec<Vec<u32>>,
    /// Per-word keep probability under frequent-word subsampling.
    keep_prob: Vec<f32>,
    epoch_loss: Mutex<f64>,
}

impl W2vTask {
    pub fn new(corpus: Arc<Corpus>, cfg: W2vConfig, n_partitions: usize) -> W2vTask {
        let ids: Vec<u32> = (0..corpus.sentences.len() as u32).collect();
        let partitions = partition_contiguous(&ids, n_partitions);
        let total = corpus.n_tokens() as f64;
        let t = cfg.subsample_t;
        let keep_prob = corpus
            .word_counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    return 1.0;
                }
                let f = c as f64 / total;
                (((f / t).sqrt() + 1.0) * (t / f)).min(1.0) as f32
            })
            .collect();
        W2vTask { corpus, cfg, partitions, keep_prob, epoch_loss: Mutex::new(0.0) }
    }

    #[inline]
    fn vocab(&self) -> u64 {
        self.corpus.config.vocab_size as u64
    }

    #[inline]
    fn output_key(&self, w: u32) -> Key {
        self.vocab() + w as Key
    }

    fn sentence_keys(&self, sentence: &[u32], out: &mut Vec<Key>) {
        out.clear();
        for &w in sentence {
            out.push(w as Key);
            out.push(self.output_key(w));
        }
    }

    /// Take the epoch loss accumulated since the last call.
    pub fn take_epoch_loss(&self) -> f64 {
        std::mem::take(&mut *self.epoch_loss.lock())
    }
}

impl TrainTask for W2vTask {
    fn name(&self) -> &'static str {
        "wv"
    }

    fn n_keys(&self) -> u64 {
        2 * self.vocab()
    }

    fn value_len(&self) -> usize {
        self.cfg.dim
    }

    fn init_value(&self, key: Key, out: &mut [f32]) {
        // As in word2vec.c: random input vectors, zero output vectors.
        if key < self.vocab() {
            init_embedding(key, self.cfg.seed, self.cfg.dim, self.cfg.init_scale, out);
        } else {
            out.fill(0.0);
        }
    }

    fn distributions(&self) -> Vec<DistSpec> {
        vec![DistSpec {
            base_key: self.vocab(),
            n: self.vocab(),
            kind: DistributionKind::Weighted(self.corpus.noise_weights()),
            level: self.cfg.level,
        }]
    }

    fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn run_epoch(&self, worker: &mut dyn PsWorker, part: usize, epoch: usize) -> f64 {
        let sentences = &self.partitions[part];
        let dim = self.cfg.dim;
        let n_neg = self.cfg.n_neg;
        let dist = DistId(0);
        let mut rng =
            SmallRng::seed_from_u64(self.cfg.seed ^ ((part as u64) << 16) ^ ((epoch as u64) << 40));

        let mut vu = vec![0.0f32; 2 * dim]; // input (center) | output (context)
        let mut gv = vec![0.0f32; dim];
        let mut keys_scratch = Vec::new();
        let mut kept: Vec<u32> = Vec::new();
        // One batched push per (center, context) pair: the context delta,
        // the negative deltas, and the center delta coalesce into a single
        // multi-key update.
        let mut push_keys: Vec<Key> = Vec::with_capacity(n_neg + 2);
        let mut push_deltas: Vec<f32> = Vec::with_capacity((n_neg + 2) * dim);
        let mut loss = 0.0f64;

        for (si, &sid) in sentences.iter().enumerate() {
            if let Some(&ahead) = sentences.get(si + self.cfg.prefetch) {
                self.sentence_keys(&self.corpus.sentences[ahead as usize], &mut keys_scratch);
                worker.localize(&keys_scratch);
            }
            let sentence = &self.corpus.sentences[sid as usize];
            kept.clear();
            kept.extend(
                sentence.iter().copied().filter(|&w| rng.gen::<f32>() < self.keep_prob[w as usize]),
            );
            for i in 0..kept.len() {
                let center = kept[i];
                let b = rng.gen_range(1..=self.cfg.window);
                let lo = i.saturating_sub(b);
                let hi = (i + b + 1).min(kept.len());
                for (j, &ctx) in kept.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    let mut handle = worker.prepare_sample(dist, n_neg);
                    let pair_keys = [center as Key, self.output_key(ctx)];
                    worker.pull_many(&pair_keys, &mut vu);
                    let (v, u) = vu.split_at(dim);
                    gv.fill(0.0);
                    push_keys.clear();
                    push_deltas.clear();

                    // Positive pair.
                    let sc: f32 = v.iter().zip(u).map(|(a, b)| a * b).sum();
                    loss += logistic_loss(sc, 1.0) as f64;
                    let g = sigmoid(sc) - 1.0;
                    push_keys.push(self.output_key(ctx));
                    for d in 0..dim {
                        gv[d] += g * u[d];
                        push_deltas.push(-self.cfg.lr * g * v[d]);
                    }

                    // Negatives from the noise distribution.
                    for (nk, nv) in worker.pull_sample(&mut handle, n_neg) {
                        let sc: f32 = v.iter().zip(&nv).map(|(a, b)| a * b).sum();
                        loss += logistic_loss(sc, 0.0) as f64;
                        let g = sigmoid(sc);
                        push_keys.push(nk);
                        for d in 0..dim {
                            gv[d] += g * nv[d];
                            push_deltas.push(-self.cfg.lr * g * v[d]);
                        }
                    }

                    push_keys.push(center as Key);
                    push_deltas.extend(gv.iter().map(|&g| -self.cfg.lr * g));
                    worker.push_many(&push_keys, &push_deltas);

                    // ~6 flops per dim per scored pair (dot + two axpys).
                    worker.charge_compute(((1 + n_neg) * 6 * dim) as u64);
                }
            }
            worker.advance_clock();
        }
        *self.epoch_loss.lock() += loss;
        loss
    }

    fn evaluate(&self, model: &[Vec<f32>]) -> f64 {
        // Planted-topic coherence: mean cosine of same-topic word pairs
        // minus mean cosine of cross-topic pairs, on input embeddings,
        // scaled ×100 to resemble an accuracy axis.
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0xE7A1);
        let vocab = self.vocab() as usize;
        let topics = &self.corpus.word_topic;
        let mut same = 0.0f64;
        let mut diff = 0.0f64;
        let mut n_same = 0u32;
        let mut n_diff = 0u32;
        for _ in 0..self.cfg.eval_pairs {
            let a = rng.gen_range(0..vocab);
            let b = rng.gen_range(0..vocab);
            if a == b {
                continue;
            }
            let c = cosine(&model[a], &model[b]) as f64;
            if topics[a] == topics[b] {
                same += c;
                n_same += 1;
            } else {
                diff += c;
                n_diff += 1;
            }
        }
        if n_same == 0 || n_diff == 0 {
            return 0.0;
        }
        100.0 * (same / n_same as f64 - diff / n_diff as f64)
    }

    fn quality_direction(&self) -> QualityDirection {
        QualityDirection::HigherIsBetter
    }

    fn direct_frequencies(&self) -> Vec<u64> {
        // Input and output vectors are both accessed per occurrence.
        let mut f = self.corpus.word_counts.clone();
        f.extend_from_slice(&self.corpus.word_counts);
        f
    }

    fn clip_policy(&self) -> nups_core::value::ClipPolicy {
        nups_core::value::ClipPolicy::AverageNorm { factor: 2.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nups_core::config::NupsConfig;
    use nups_core::system::{run_epoch, ParameterServer};
    use nups_sim::cost::CostModel;
    use nups_workloads::corpus::CorpusConfig;

    fn tiny_task(n_parts: usize) -> W2vTask {
        let corpus = Arc::new(Corpus::generate(CorpusConfig {
            vocab_size: 300,
            n_sentences: 800,
            sentence_len: 8,
            n_topics: 6,
            zipf_alpha: 0.9,
            noise: 0.05,
            seed: 2,
        }));
        W2vTask::new(
            corpus,
            W2vConfig { dim: 8, n_neg: 2, eval_pairs: 3000, ..W2vConfig::default() },
            n_parts,
        )
    }

    #[test]
    fn layout_and_partitions() {
        let t = tiny_task(3);
        assert_eq!(t.n_keys(), 600);
        assert_eq!(t.value_len(), 8);
        assert_eq!(t.n_partitions(), 3);
        let total: usize = t.partitions.iter().map(|p| p.len()).sum();
        assert_eq!(total, 800);
        // Output keys map beyond the vocabulary.
        assert_eq!(t.output_key(5), 305);
    }

    #[test]
    fn subsampling_keeps_rare_words_more() {
        let t = tiny_task(1);
        // Word 0 is the most frequent; a rare word's keep prob must be
        // at least as high.
        let rare = t.keep_prob[299];
        let hot = t.keep_prob[0];
        assert!(rare >= hot, "rare {rare} vs hot {hot}");
        assert!(t.keep_prob.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn single_node_training_improves_coherence() {
        let task = tiny_task(2);
        let cfg = NupsConfig::single_node(2, task.n_keys(), task.value_len())
            .with_cost(CostModel::zero());
        let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));
        for d in task.distributions() {
            ps.register_distribution(d.base_key, d.n, d.kind, d.level);
        }
        let mut workers = ps.workers();
        let before = task.evaluate(&ps.read_all());
        for epoch in 0..3 {
            run_epoch(&mut workers, |i, w| {
                task.run_epoch(w, i, epoch);
            });
        }
        let after = task.evaluate(&ps.read_all());
        assert!(after > before + 3.0, "coherence did not improve: {before:.2} → {after:.2}");
        ps.shutdown();
    }
}
