//! Figure 12: effect of replica staleness. Sweeps the synchronization
//! frequency (125, 25, 5, 1, 0.2 syncs/s and no synchronization) and
//! reports epoch run time and model quality after one epoch.
//!
//! Usage: cargo run --release -p nups-bench --bin fig12_staleness -- \
//!   [--task kge|wv|mf] [--nodes 4] [--workers 2] [--scale small]

use nups_bench::report::{fmt_duration, fmt_quality, print_table};
use nups_bench::variant::SyncSetting;
use nups_bench::{build_task, run, Args, RunConfig, VariantSpec};

fn main() {
    let args = Args::parse();
    let topology = args.topology();
    let epochs = args.epochs(1);

    let settings = [
        ("125 syncs/s", SyncSetting::PerSecond(125.0)),
        ("25 syncs/s (default)", SyncSetting::Default),
        ("5 syncs/s", SyncSetting::PerSecond(5.0)),
        ("1 sync/s", SyncSetting::PerSecond(1.0)),
        ("0.2 syncs/s", SyncSetting::PerSecond(0.2)),
        ("no sync", SyncSetting::Never),
    ];

    for kind in args.tasks() {
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);
        let task = factory(topology);
        let cfg = RunConfig::new(topology, epochs);

        println!("\n##### Figure 12 — replica staleness on {} #####", kind.name());
        let mut rows = Vec::new();
        let mut baseline_quality = None;
        for (name, sync) in settings {
            eprintln!("[fig12] {} / {}", kind.name(), name);
            let spec = VariantSpec::nups_sync(sync);
            let r = run(&factory, &spec, &cfg);
            let q = r.final_quality();
            if baseline_quality.is_none() {
                baseline_quality = q; // highest frequency = least stale
            }
            let degraded = match (q, baseline_quality) {
                (Some(q), Some(q0)) => match task.quality_direction() {
                    nups_ml::task::QualityDirection::HigherIsBetter => q < 0.9 * q0,
                    nups_ml::task::QualityDirection::LowerIsBetter => q > 1.1 * q0,
                },
                _ => false,
            };
            rows.push(vec![
                name.to_string(),
                fmt_duration(r.epoch_time()),
                format!("{}{}", fmt_quality(q), if degraded { " !" } else { "" }),
                r.sync_frequency.map(|f| format!("{f:.2}/s")).unwrap_or_else(|| "—".into()),
                format!("{:.1}", r.metrics.sync_bytes as f64 / 1e6),
            ]);
        }
        print_table(
            &format!(
                "Figure 12 — {} ('!' = quality degraded >10% vs most frequent sync)",
                kind.name()
            ),
            &["sync target", "epoch time", "quality", "achieved", "sync MB"],
            &rows,
        );
    }
}
