//! The time-based synchronization gate.
//!
//! NuPS synchronizes replicas on a *time-based* staleness bound (Section
//! 3.2): by default every 40 ms, i.e. 25 synchronizations per second. The
//! gate places a sync boundary every `period` on the runtime's timeline —
//! callers pass their [`crate::runtime::RuntimeClock`] position into
//! [`SyncGate::poll`], so on the virtual backend boundaries live on the
//! virtual timeline and on the wall-clock backend they fire on *real*
//! elapsed time. A worker whose clock crosses the next boundary
//! rendezvouses here with all other workers, and the last arrival executes
//! the merge. Workers are *not* charged for the merge — in the real system
//! it runs on a background thread — but the merge's duration (modelled on
//! the simulator, measured for real on the wall-clock backend) pushes the
//! next boundary out when it exceeds the period. That reproduces the
//! paper's observed *achieved* synchronization frequencies collapsing when
//! replica volume outgrows the network (Figures 11 and 12, red
//! annotations).
//!
//! The gate also exposes a *network busy fraction* (sync time / period),
//! which the worker uses as a congestion multiplier on remote-access costs:
//! the paper observes relocation traffic competing with replica
//! synchronization for bandwidth (Section 5.6).

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

use nups_sim::time::{SimDuration, SimTime};

struct GateState {
    /// Workers currently participating (between `enter` and `leave`).
    active: usize,
    /// Workers waiting at the current boundary.
    arrived: usize,
    /// Increments after every merge; waiters key their wait on it.
    generation: u64,
    /// Next sync boundary on the virtual timeline.
    boundary: SimTime,
    syncs_done: u64,
    total_sync_time: SimDuration,
}

/// Rendezvous gate enforcing the time-based staleness bound.
pub struct SyncGate {
    state: Mutex<GateState>,
    cv: Condvar,
    period: SimDuration,
    enabled: bool,
    /// Busy fraction of the last window, in parts per thousand.
    busy_millis: AtomicU64,
    /// The virtual-time boundary of the merge currently (or most recently)
    /// executing. Mirrored out of the gate state so the merge closure can
    /// read it without re-entering the gate mutex (which it runs under).
    merge_boundary: AtomicU64,
}

/// Statistics reported after a run (Figures 11/12 annotations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncStats {
    pub syncs_done: u64,
    pub total_sync_time: SimDuration,
}

impl SyncGate {
    /// `enabled = false` builds an inert gate: with no replicated keys the
    /// synchronization background work vanishes entirely, the paper's
    /// "reduces to a single-technique PS with no overhead" property.
    pub fn new(period: SimDuration, enabled: bool) -> SyncGate {
        assert!(!enabled || !period.is_zero(), "sync period must be positive");
        SyncGate {
            state: Mutex::new(GateState {
                active: 0,
                arrived: 0,
                generation: 0,
                boundary: SimTime::ZERO + period,
                syncs_done: 0,
                total_sync_time: SimDuration::ZERO,
            }),
            cv: Condvar::new(),
            period,
            enabled,
            busy_millis: AtomicU64::new(0),
            merge_boundary: AtomicU64::new(0),
        }
    }

    /// An always-disabled gate. Period-independent: an inert gate has no
    /// boundaries to place, so it carries no magic period a caller could
    /// trip over — the positivity assertion above applies to enabled gates
    /// only, regardless of construction order.
    pub fn disabled() -> SyncGate {
        SyncGate::new(SimDuration::ZERO, false)
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register a worker for the current epoch.
    pub fn enter(&self) {
        if !self.enabled {
            return;
        }
        self.state.lock().active += 1;
    }

    /// Deregister a worker (it finished its epoch partition). If it was the
    /// last straggler others were waiting on, the merge fires now.
    pub fn leave(&self, merge: impl FnMut() -> SimDuration) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock();
        debug_assert!(st.active > 0);
        st.active -= 1;
        if st.arrived > 0 && st.arrived == st.active {
            self.run_merge(&mut st, merge);
        } else if st.active == 0 {
            st.arrived = 0;
        }
    }

    /// Called by workers as their clock advances. Blocks at sync
    /// boundaries until all active workers arrive; the last arrival runs
    /// `merge` (which returns the modelled sync duration).
    pub fn poll(&self, now: SimTime, mut merge: impl FnMut() -> SimDuration) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock();
        loop {
            if now < st.boundary {
                return;
            }
            st.arrived += 1;
            if st.arrived == st.active {
                self.run_merge(&mut st, &mut merge);
            } else {
                let gen = st.generation;
                while st.generation == gen && st.arrived != 0 {
                    self.cv.wait(&mut st);
                }
            }
            // Our clock may already be past the *new* boundary; loop.
        }
    }

    fn run_merge(&self, st: &mut GateState, mut merge: impl FnMut() -> SimDuration) {
        self.merge_boundary.store(st.boundary.as_nanos(), Ordering::Relaxed);
        let duration = merge();
        st.syncs_done += 1;
        st.total_sync_time += duration;
        let window = self.period.max(duration);
        let busy = if window.is_zero() {
            0
        } else {
            (duration.as_nanos() as u128 * 1000 / window.as_nanos() as u128) as u64
        };
        self.busy_millis.store(busy, Ordering::Relaxed);
        // The next boundary slips when the merge overran the period: the
        // achieved sync frequency degrades instead of queueing unboundedly.
        st.boundary += window;
        st.generation += 1;
        st.arrived = 0;
        self.cv.notify_all();
    }

    /// The virtual-time boundary of the merge currently (or most recently)
    /// executed — readable from *inside* a merge closure, where the gate
    /// mutex is held. Migration installs use it as the demoted value's
    /// availability stamp: every worker resumes with its clock at or past
    /// this boundary.
    pub fn merge_boundary(&self) -> SimTime {
        SimTime(self.merge_boundary.load(Ordering::Relaxed))
    }

    /// Fraction (0..=1) of the last sync window spent synchronizing. Used
    /// as the congestion multiplier on remote accesses.
    pub fn busy_fraction(&self) -> f64 {
        self.busy_millis.load(Ordering::Relaxed) as f64 / 1000.0
    }

    pub fn stats(&self) -> SyncStats {
        let st = self.state.lock();
        SyncStats { syncs_done: st.syncs_done, total_sync_time: st.total_sync_time }
    }

    /// Achieved synchronizations per virtual second over `elapsed`.
    pub fn achieved_frequency(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.stats().syncs_done as f64 / elapsed.as_secs_f64()
    }

    pub fn period(&self) -> SimDuration {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn disabled_gate_is_period_independent() {
        // The inert constructor must not smuggle in a nonzero period: a
        // zero-period disabled gate is legal (the positivity assertion
        // guards enabled gates only).
        let g = SyncGate::disabled();
        assert!(g.period().is_zero());
        assert!(!g.is_enabled());
        assert_eq!(g.busy_fraction(), 0.0);
        let z = SyncGate::new(SimDuration::ZERO, false);
        assert!(!z.is_enabled());
    }

    #[test]
    fn disabled_gate_never_blocks_or_merges() {
        let g = SyncGate::disabled();
        let merges = AtomicUsize::new(0);
        g.enter();
        g.poll(SimTime(u64::MAX), || {
            merges.fetch_add(1, Ordering::Relaxed);
            SimDuration::ZERO
        });
        g.leave(|| {
            merges.fetch_add(1, Ordering::Relaxed);
            SimDuration::ZERO
        });
        assert_eq!(merges.load(Ordering::Relaxed), 0);
        assert_eq!(g.stats().syncs_done, 0);
    }

    #[test]
    fn single_worker_merges_at_each_boundary() {
        let g = SyncGate::new(SimDuration::from_millis(10), true);
        g.enter();
        // Clock at 35ms crosses boundaries at 10, 20, 30 → three merges.
        g.poll(SimTime(35_000_000), || SimDuration::ZERO);
        assert_eq!(g.stats().syncs_done, 3);
        g.leave(|| SimDuration::ZERO);
    }

    #[test]
    fn slow_merge_degrades_achieved_frequency() {
        let g = SyncGate::new(SimDuration::from_millis(10), true);
        g.enter();
        // Each merge takes 50ms: boundaries slip to 10, 60, 110, ...
        g.poll(SimTime(115_000_000), || SimDuration::from_millis(50));
        assert_eq!(g.stats().syncs_done, 3);
        assert!(g.busy_fraction() > 0.99);
        // Target would have been 11 merges in 115ms; achieved ~3.
        let f = g.achieved_frequency(SimDuration::from_millis(115));
        assert!(f < 30.0, "achieved frequency {f}");
        g.leave(|| SimDuration::ZERO);
    }

    #[test]
    fn two_workers_rendezvous() {
        let g = Arc::new(SyncGate::new(SimDuration::from_millis(10), true));
        let merges = Arc::new(AtomicUsize::new(0));
        g.enter();
        g.enter();
        let g2 = Arc::clone(&g);
        let m2 = Arc::clone(&merges);
        let t = std::thread::spawn(move || {
            g2.poll(SimTime(15_000_000), || {
                m2.fetch_add(1, Ordering::Relaxed);
                SimDuration::ZERO
            });
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(merges.load(Ordering::Relaxed), 0, "must wait for second worker");
        g.poll(SimTime(15_000_000), || {
            merges.fetch_add(1, Ordering::Relaxed);
            SimDuration::ZERO
        });
        t.join().unwrap();
        assert_eq!(merges.load(Ordering::Relaxed), 1, "exactly one worker merges");
        g.leave(|| SimDuration::ZERO);
        g.leave(|| SimDuration::ZERO);
    }

    #[test]
    fn leaving_straggler_releases_waiters() {
        let g = Arc::new(SyncGate::new(SimDuration::from_millis(10), true));
        g.enter();
        g.enter();
        let g2 = Arc::clone(&g);
        let t = std::thread::spawn(move || {
            g2.poll(SimTime(12_000_000), || SimDuration::ZERO);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Second worker finishes its epoch without ever crossing the
        // boundary; its departure must fire the merge and unblock worker 1.
        g.leave(|| SimDuration::ZERO);
        t.join().unwrap();
        assert_eq!(g.stats().syncs_done, 1);
        g.leave(|| SimDuration::ZERO);
    }
}
