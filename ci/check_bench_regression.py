#!/usr/bin/env python3
"""Gate bench reports against a committed baseline.

Usage: check_bench_regression.py BASELINE.json REPORT.json [--tolerance 0.10]

Every numeric leaf in the baseline must be present in the report (and
vice versa — a report-only counter would be silently ungated) and must
stay within ``baseline * (1 ± tolerance)``. The band is symmetric on
purpose: the simulation is deterministic, so equal code produces
byte-equal reports, and *any* drift beyond the band — a counter growing
(more traffic/time) or shrinking (a silently changed workload that
invalidates the comparison) — means behavior changed and the baseline
must be updated deliberately, with the reason in the commit. Small
in-band drifts are reported but pass.

Leaves under a ``report_only`` object are exempt in both directions:
they ride along in the gate artifact for humans (e.g. p99 latency, which
swings too wide between quiet and contended hosts for a symmetric band)
without being compared or required in the baseline.
"""

import json
import sys


def leaves(obj, prefix=""):
    if isinstance(obj, dict):
        for k, v in obj.items():
            yield from leaves(v, f"{prefix}{k}." if isinstance(v, dict) else f"{prefix}{k}")
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        yield prefix, obj


def lookup(obj, path):
    cur = obj
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = 0.10
    if "--tolerance" in argv:
        tolerance = float(argv[argv.index("--tolerance") + 1])
    with open(argv[1]) as f:
        baseline = json.load(f)
    with open(argv[2]) as f:
        report = json.load(f)

    def report_only(path):
        return path.startswith("report_only.") or ".report_only." in path

    failures, improvements, checked = [], [], 0
    for path, base in leaves(baseline):
        if report_only(path):
            continue
        got = lookup(report, path)
        if got is None or isinstance(got, (dict, str, bool)):
            failures.append(f"{path}: missing from report (baseline {base})")
            continue
        checked += 1
        pct = 100.0 * (got - base) / base if base else (float("inf") if got else 0.0)
        if got > base * (1 + tolerance):
            failures.append(f"{path}: {got} exceeds baseline {base} by {pct:.1f}% (limit ±{tolerance:.0%})")
        elif got < base * (1 - tolerance):
            failures.append(
                f"{path}: {got} fell {-pct:.1f}% below baseline {base} (limit ±{tolerance:.0%}; "
                "update the baseline if the change is intentional)"
            )
        elif got != base:
            improvements.append(f"{path}: {got} drifted within band from baseline {base}")
    base_paths = {p for p, _ in leaves(baseline)}
    for path, got in leaves(report):
        if report_only(path):
            continue
        if path not in base_paths:
            failures.append(
                f"{path}: present in report ({got}) but not in the baseline — "
                "regenerate the baseline so the new counter is gated"
            )

    print(f"checked {checked} counters from {argv[1]} against {argv[2]}")
    for line in improvements:
        print(f"  in-band   {line}")
    for line in failures:
        print(f"  OUT-OF-BAND {line}")
    if failures:
        print(f"FAIL: {len(failures)} counter(s) beyond ±{tolerance:.0%} of baseline")
        return 1
    print("OK: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
