//! Log-linear latency histograms (HdrHistogram-style).
//!
//! A [`Hist`] is a fixed array of relaxed atomic counters over a
//! *log-linear* bucket layout: values below 8 ns get one bucket each, and
//! every power-of-two octave above that is split into 8 linear
//! sub-buckets. The layout covers all of `u64` in [`N_BUCKETS`] buckets
//! (4 KiB of counters), the mapping is branch-light integer arithmetic,
//! and the worst-case quantization error is one sub-bucket width —
//! bounded at 12.5 % of the value. The layout is *fixed* (no allocation,
//! no rescaling), so two histograms recorded anywhere in the cluster can
//! be merged or diffed bucket-by-bucket, exactly like
//! [`crate::metrics::MetricsSnapshot`].
//!
//! Recording is a single `fetch_add(Relaxed)` per sample (plus count/sum
//! upkeep); there is no lock and no fast-path branch on configuration, so
//! histograms stay on even in gated benchmark runs. Readers take a
//! [`HistSnapshot`] and compute percentiles from the cumulative bucket
//! counts (nearest-rank, reported as the bucket's upper bound — a
//! conservative figure for a latency).
//!
//! [`OpHists`] groups the histograms one node records: per-op pull / push
//! / localize round trips, merge-step duration, replica-sync round time,
//! and the fabric's queue-wait and flush latency. All values are
//! **nanoseconds** on whatever timeline the recorder observes (wall time
//! for real executions; the bench replaced its ad-hoc `Vec<u64>`
//! percentile code with these).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;
const SUB_BUCKETS: u64 = 1 << SUB_BITS; // 8

/// Total bucket count of the fixed layout. Buckets `0..16` are exact
/// (one value each); bucket `i >= 16` covers
/// `[(8 + i % 8) << (i / 8 - 1), next)`. The top bucket ends at
/// `u64::MAX`.
pub const N_BUCKETS: usize = 496;

/// Bucket index of a nanosecond value. Total and continuous over `u64`:
/// every value maps to exactly one bucket and bucket bounds tile the
/// whole range.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((shift as usize) << SUB_BITS) + (v >> shift) as usize
}

/// Smallest value that lands in bucket `i` (`i < N_BUCKETS`).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < (2 * SUB_BUCKETS) as usize {
        return i as u64;
    }
    let octave = i / SUB_BUCKETS as usize;
    let sub = (i % SUB_BUCKETS as usize) as u64;
    (SUB_BUCKETS + sub) << (octave - 1)
}

/// Largest value that lands in bucket `i` (saturates at `u64::MAX` for
/// the top bucket).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= N_BUCKETS {
        return u64::MAX;
    }
    bucket_lower_bound(i + 1) - 1
}

/// One latency distribution: fixed log-linear buckets of relaxed atomics.
pub struct Hist {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

impl Hist {
    pub fn new() -> Hist {
        Hist {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample (nanoseconds). Lock-free; relaxed ordering — the
    /// counters are monotone and a reader tearing across them only sees a
    /// momentarily smaller histogram, never a wrong one.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Owned copy of a [`Hist`]'s counters: mergeable, diffable, queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values (nanoseconds), for means.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot { buckets: vec![0; N_BUCKETS], count: 0, sum: 0 }
    }
}

impl HistSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold `other` into `self` (cluster-wide aggregation).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Bucket-wise saturating difference (interval extraction, mirroring
    /// `MetricsSnapshot`'s `Sub`).
    pub fn saturating_sub(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Nearest-rank percentile (`pct` in `0..=100`), reported as the
    /// upper bound of the bucket holding the ranked sample — never an
    /// under-estimate of the true value's bucket. Zero when empty.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Upper bound of the highest occupied bucket; 0 when empty.
    pub fn max(&self) -> u64 {
        self.buckets.iter().rposition(|&c| c > 0).map(bucket_upper_bound).unwrap_or(0)
    }

    /// Mean sample value in nanoseconds (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The occupied buckets as `(lower_bound, upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), bucket_upper_bound(i), c))
    }
}

/// The named group of latency histograms one node records.
#[derive(Default)]
pub struct OpHists {
    /// Worker-observed `pull`/`pull_many` round-trip latency.
    pub pull: Hist,
    /// Worker-observed `push`/`push_many` latency.
    pub push: Hist,
    /// Worker-observed `localize` round-trip latency.
    pub localize: Hist,
    /// Duration of one merge step (replica sync + adaptation check).
    pub merge: Hist,
    /// Duration of one replica-sync round that actually exchanged deltas.
    pub sync_round: Hist,
    /// Fabric send-queue wait: enqueue until a writer drains the frame.
    pub queue_wait: Hist,
    /// Fabric flush latency: one batched wire write, including syscall.
    pub flush: Hist,
}

impl OpHists {
    pub fn new() -> OpHists {
        OpHists::default()
    }

    pub fn snapshot(&self) -> OpHistsSnapshot {
        OpHistsSnapshot {
            pull: self.pull.snapshot(),
            push: self.push.snapshot(),
            localize: self.localize.snapshot(),
            merge: self.merge.snapshot(),
            sync_round: self.sync_round.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            flush: self.flush.snapshot(),
        }
    }
}

/// Snapshot of every histogram in an [`OpHists`] group.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpHistsSnapshot {
    pub pull: HistSnapshot,
    pub push: HistSnapshot,
    pub localize: HistSnapshot,
    pub merge: HistSnapshot,
    pub sync_round: HistSnapshot,
    pub queue_wait: HistSnapshot,
    pub flush: HistSnapshot,
}

impl OpHistsSnapshot {
    /// `(name, snapshot)` pairs in a stable order — the reporting analogue
    /// of `MetricsSnapshot::entries`.
    pub fn entries(&self) -> [(&'static str, &HistSnapshot); 7] {
        [
            ("pull", &self.pull),
            ("push", &self.push),
            ("localize", &self.localize),
            ("merge", &self.merge),
            ("sync_round", &self.sync_round),
            ("queue_wait", &self.queue_wait),
            ("flush", &self.flush),
        ]
    }

    pub fn merge_from(&mut self, other: &OpHistsSnapshot) {
        self.pull.merge(&other.pull);
        self.push.merge(&other.push);
        self.localize.merge(&other.localize);
        self.merge.merge(&other.merge);
        self.sync_round.merge(&other.sync_round);
        self.queue_wait.merge(&other.queue_wait);
        self.flush.merge(&other.flush);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_total_and_monotone() {
        // Every bucket's bounds tile the u64 range with no gaps.
        assert_eq!(bucket_lower_bound(0), 0);
        for i in 0..N_BUCKETS - 1 {
            assert_eq!(
                bucket_upper_bound(i) + 1,
                bucket_lower_bound(i + 1),
                "gap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_upper_bound(N_BUCKETS - 1), u64::MAX);
        // Bounds map back to their own bucket.
        for i in 0..N_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i, "lower bound of {i}");
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "upper bound of {i}");
        }
        // Spot values across the range, including the extremes.
        for v in [0u64, 1, 7, 8, 15, 16, 17, 1_000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v && v <= bucket_upper_bound(i), "value {v}");
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        // Log-linear with 8 sub-buckets: bucket width <= lower/8, so the
        // upper bound over-reports by at most 12.5 %.
        for v in [100u64, 1_000, 10_000, 123_456, 7_000_000, u64::MAX / 3] {
            let i = bucket_index(v);
            let err = bucket_upper_bound(i) - bucket_lower_bound(i);
            assert!(
                (err as f64) <= bucket_lower_bound(i) as f64 / 8.0 + 1.0,
                "bucket width {err} too wide at {v}"
            );
        }
    }

    #[test]
    fn record_and_percentiles() {
        let h = Hist::new();
        assert_eq!(h.snapshot().percentile(99.0), 0, "empty histogram reports 0");
        for v in 1..=100u64 {
            h.record(v * 1_000); // 1 µs .. 100 µs
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, (1..=100u64).map(|v| v * 1_000).sum::<u64>());
        // Nearest-rank p50 is the 50th sample (50 µs); the bucket's upper
        // bound over-reports by at most 12.5 %.
        let p50 = s.percentile(50.0);
        assert!((50_000..=56_250).contains(&p50), "p50 = {p50}");
        let p99 = s.percentile(99.0);
        assert!((99_000..=112_500).contains(&p99), "p99 = {p99}");
        assert!(s.max() >= 100_000);
        assert!((s.mean() - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn merge_and_sub_are_bucketwise() {
        let a = Hist::new();
        let b = Hist::new();
        a.record(10);
        a.record(1_000);
        b.record(10);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        let diff = merged.saturating_sub(&b.snapshot());
        assert_eq!(diff, a.snapshot());
        // Saturation: subtracting a larger snapshot clamps at zero.
        let clamped = b.snapshot().saturating_sub(&merged);
        assert_eq!(clamped.count, 0);
        assert!(clamped.buckets.iter().all(|&c| c == 0));
    }

    #[test]
    fn op_hists_entries_agree_with_fields() {
        let hs = OpHists::new();
        hs.pull.record(5);
        hs.flush.record(7);
        let snap = hs.snapshot();
        let entries = snap.entries();
        assert_eq!(entries.len(), 7);
        assert_eq!(entries[0].0, "pull");
        assert_eq!(entries[0].1.count, 1);
        assert_eq!(entries[6].0, "flush");
        assert_eq!(entries[6].1.count, 1);
        let empty: usize = entries.iter().filter(|(_, s)| s.is_empty()).count();
        assert_eq!(empty, 5);
        let mut total = OpHistsSnapshot::default();
        total.merge_from(&snap);
        total.merge_from(&snap);
        assert_eq!(total.pull.count, 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Hist::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 40_000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 40_000);
    }
}
