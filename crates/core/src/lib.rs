//! # nups-core — the NuPS parameter server
//!
//! Rust implementation of the system described in *NuPS: A Parameter
//! Server for Machine Learning with Non-Uniform Parameter Access*
//! (SIGMOD 2022). The crate provides:
//!
//! * **Multi-technique parameter management** (paper Section 3):
//!   [`replication`] for hot spots (eager replicas, time-based staleness,
//!   sparse all-reduce) and Lapse-style relocation for the long tail
//!   ([`store`], [`server`]), selected per key by [`technique`].
//! * **Sampling management** (Section 4): [`sampling`] defines the
//!   conformity-level hierarchy, alias-table distributions, and the four
//!   schemes (independent, pooled reuse, reuse with postponing, local
//!   sampling) behind the `PrepareSample`/`PullSample` API.
//! * **Baselines** the paper compares against: a Classic PS and Lapse as
//!   configurations of the same engine ([`config`]), and Petuum-style
//!   SSP/ESSP in [`ssp`].
//! * **Pluggable runtime backends** ([`runtime`]): the same protocols run
//!   on the deterministic virtual-time simulator or on a wall-clock
//!   backend where waits block for real and metrics report actual
//!   throughput. Select with [`config::NupsConfig::with_backend`].
//!
//! Entry points: build a [`system::ParameterServer`] from a
//! [`config::NupsConfig`], register sampling distributions, hand a
//! [`worker::NupsWorker`] to each worker thread, and drive epochs with
//! [`system::run_epoch`]. ML tasks program against the [`api::PsWorker`]
//! trait so the same task runs on every system variant.

pub mod adaptive;
pub mod api;
pub mod config;
pub mod key;
pub mod messages;
pub mod node;
pub mod replication;
pub mod runtime;
pub mod sampling;
pub mod server;
pub mod ssp;
pub mod store;
pub mod syncgate;
pub mod system;
pub mod technique;
pub mod value;
pub mod worker;

pub use adaptive::{AdaptiveConfig, AdaptiveManager};
pub use api::PsWorker;
pub use config::NupsConfig;
pub use key::{Key, KeySpace};
pub use runtime::{Backend, Fabric, Port, RecvOutcome, Runtime};
pub use sampling::scheme::{ReuseParams, SamplingScheme};
pub use sampling::{ConformityLevel, DistId, DistributionKind, SampleHandle};
pub use ssp::{SspConfig, SspProtocol, SspPs, SspWorker};
pub use system::{run_epoch, Deployment, FinalizeOutcome, ParameterServer};
pub use technique::{heuristic_replicated_keys, top_k_by_frequency, Technique, TechniqueMap};
pub use value::ClipPolicy;
pub use worker::NupsWorker;
