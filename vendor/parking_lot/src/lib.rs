//! Vendored stand-in for the `parking_lot` crate (the build environment has
//! no network access to crates.io). Provides the non-poisoning `Mutex`,
//! `RwLock`, and `Condvar` API surface this workspace uses, backed by
//! `std::sync` primitives. Poisoning is swallowed: a panic while holding a
//! lock does not poison it for later users, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so [`Condvar`]
/// can temporarily take the std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { guard: Some(p.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during condvar wait")
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Condition variable compatible with [`Mutex`]: `wait` takes the guard by
/// `&mut` rather than by value, as in parking_lot.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait: reports whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard already taken");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard already taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_while<T, F: FnMut(&mut T) -> bool>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: F,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock whose guards never report poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
