//! Counter registry for everything the experiments measure.
//!
//! Counters are plain relaxed atomics: they are statistics, not
//! synchronization. Every figure in the paper is ultimately a function of
//! these counts priced by the cost model, so the set below mirrors the
//! quantities the paper reasons about (remote vs local accesses,
//! relocations and their conflicts, replica-sync rounds and bytes, sampling
//! postponements).

use std::fmt;
use std::ops::Sub;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! metrics {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Live atomic counters for one node (or one logical component).
        #[derive(Debug, Default)]
        pub struct Metrics {
            $($(#[$doc])* pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`Metrics`]; supports diffing.
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl Metrics {
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Reset all counters to zero (between epochs/experiments).
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl MetricsSnapshot {
            /// Element-wise sum, for aggregating nodes into cluster totals.
            pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($name: self.$name + other.$name,)+
                }
            }

            /// Iterate `(name, value)` pairs, e.g. for CSV output.
            pub fn entries(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }
        }

        impl Sub for MetricsSnapshot {
            type Output = MetricsSnapshot;
            fn sub(self, rhs: MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($name: self.$name.saturating_sub(rhs.$name),)+
                }
            }
        }

        impl fmt::Display for MetricsSnapshot {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                $(
                    if self.$name != 0 {
                        writeln!(f, "{:<28} {}", stringify!($name), self.$name)?;
                    }
                )+
                Ok(())
            }
        }
    };
}

metrics! {
    /// Protocol messages sent over the simulated network.
    msgs_sent,
    /// Payload + framing bytes sent over the simulated network.
    bytes_sent,
    /// Pulls served from the local store or a local replica (shared memory).
    local_pulls,
    /// Pulls that required a remote round trip.
    remote_pulls,
    /// Pushes applied locally.
    local_pushes,
    /// Pushes sent to a remote owner.
    remote_pushes,
    /// Parameter relocations completed (ownership transfers).
    relocations,
    /// Accesses that reached a relocated key before the transfer's
    /// *virtual* completion and were charged a wait (the hot-spot
    /// contention effect of Section 3.1.3). Counted from virtual time so
    /// the tally is identical on both sides of the real-time install
    /// race; an access that falls back to a remote round trip counts as a
    /// remote pull/push instead.
    relocation_conflicts,
    /// Replica synchronization rounds executed.
    sync_rounds,
    /// Bytes exchanged by replica synchronization.
    sync_bytes,
    /// Pulls served by a replica.
    replica_pulls,
    /// Pushes absorbed by a replica's local update buffer.
    replica_pushes,
    /// Samples handed to the application via PullSample.
    samples_drawn,
    /// Samples that were postponed because their key was not local.
    samples_postponed,
    /// Samples whose parameters had to be fetched remotely in PullSample.
    samples_remote,
    /// Sample pools prepared by the background thread.
    pools_prepared,
    /// SSP/ESSP clock advances.
    clock_advances,
    /// Synchronous replica refreshes (SSP cold replicas).
    replica_refreshes,
    /// Batched pull requests sent by workers (one per destination node).
    batch_pull_msgs,
    /// Key entries carried by batched pull requests, after per-request
    /// deduplication (entries ÷ messages gives the achieved pull batch
    /// size; repeated keys in one request ride the wire once).
    batch_pull_keys,
    /// Batched push requests sent by workers.
    batch_push_msgs,
    /// Key entries carried by batched push requests.
    batch_push_keys,
    /// Localize messages issued by workers (coalesced per home node).
    localize_msgs,
    /// Relocation intents carried by localize messages.
    localize_keys,
    /// Keys migrated relocated → replicated by the adaptive manager.
    promotions,
    /// Keys migrated replicated → relocated by the adaptive manager.
    demotions,
    /// Adaptation scoring rounds executed (every `adapt_every`-th merge,
    /// whether or not anything migrated; the technique-map epoch bumps
    /// only for rounds that migrated at least one key).
    adaptation_rounds,
    /// Migration protocol messages priced by the adaptive manager
    /// (promote broadcasts + demote notices; executed in-process at the
    /// rendezvous, priced as wire messages like replica synchronization).
    migration_msgs,
    /// Bytes the priced migration messages would have carried, framing
    /// included.
    migration_bytes,
    /// Coalesced socket flushes issued by TCP fabric writer threads (one
    /// per queue drain; each flush carries a whole batch of frames in a
    /// single `write_all` or `writev`).
    fabric_writes,
    /// Frames pushed through TCP fabric writer threads (protocol and
    /// control frames alike; `fabric_frames ÷ fabric_writes` is the mean
    /// coalesced batch size).
    fabric_frames,
    /// Times a TCP fabric writer thread parked on an empty queue and was
    /// woken again. Fewer wakeups than frames means senders queued work
    /// while the writer was already busy — coalescing at work.
    writer_wakeups,
    /// TCP fabric buffer-pool requests served from a pooled buffer.
    pool_hits,
    /// TCP fabric buffer-pool requests that had to allocate fresh.
    pool_misses,
    /// Frames-per-write histogram: flushes that carried exactly 1 frame.
    /// Empty flushes are never recorded (see
    /// [`Metrics::record_fabric_write`]), so every bucket counts writes
    /// that put real frames on the wire.
    frames_per_write_1,
    /// Flushes that carried 2–3 frames.
    frames_per_write_2_3,
    /// Flushes that carried 4–7 frames.
    frames_per_write_4_7,
    /// Flushes that carried 8–15 frames.
    frames_per_write_8_15,
    /// Flushes that carried 16 or more frames.
    frames_per_write_16_plus,
}

impl Metrics {
    #[inline]
    pub fn add(&self, field: impl Fn(&Metrics) -> &AtomicU64, n: u64) {
        field(self).fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self, field: impl Fn(&Metrics) -> &AtomicU64) {
        self.add(field, 1);
    }

    /// Record one coalesced fabric flush carrying `frames` frames: bumps
    /// the flush/frame totals and the matching frames-per-write bucket.
    /// Empty flushes (`frames == 0`) are skipped entirely: nothing hit
    /// the wire, so counting them would dilute the coalescing ratio and
    /// previously mislabeled them as single-frame writes.
    pub fn record_fabric_write(&self, frames: u64) {
        if frames == 0 {
            return;
        }
        self.inc(|m| &m.fabric_writes);
        self.add(|m| &m.fabric_frames, frames);
        let bucket: fn(&Metrics) -> &AtomicU64 = match frames {
            1 => |m| &m.frames_per_write_1,
            2..=3 => |m| &m.frames_per_write_2_3,
            4..=7 => |m| &m.frames_per_write_4_7,
            8..=15 => |m| &m.frames_per_write_8_15,
            _ => |m| &m.frames_per_write_16_plus,
        };
        self.inc(bucket);
    }
}

/// Per-node metrics plus helpers to aggregate the whole cluster.
#[derive(Debug)]
pub struct ClusterMetrics {
    per_node: Vec<Metrics>,
}

impl ClusterMetrics {
    pub fn new(n_nodes: usize) -> ClusterMetrics {
        ClusterMetrics { per_node: (0..n_nodes).map(|_| Metrics::default()).collect() }
    }

    #[inline]
    pub fn node(&self, node: crate::topology::NodeId) -> &Metrics {
        &self.per_node[node.index()]
    }

    pub fn n_nodes(&self) -> usize {
        self.per_node.len()
    }

    pub fn snapshot_node(&self, node: crate::topology::NodeId) -> MetricsSnapshot {
        self.per_node[node.index()].snapshot()
    }

    /// Cluster-wide totals.
    pub fn total(&self) -> MetricsSnapshot {
        self.per_node
            .iter()
            .map(|m| m.snapshot())
            .fold(MetricsSnapshot::default(), |acc, s| acc.merge(&s))
    }

    pub fn reset(&self) {
        for m in &self.per_node {
            m.reset();
        }
    }
}

/// A lightweight per-key access-frequency sketch (two-row count-min).
///
/// Workers record every key access with one relaxed atomic increment per
/// row; the adaptive technique manager reads estimates at synchronization
/// boundaries. Estimates are upper bounds (hash collisions only ever
/// inflate), which errs toward replicating slightly-too-cold keys rather
/// than missing hot ones. All hashing is fixed, so sketch contents — and
/// every decision derived from them — are deterministic for a
/// deterministic access stream.
#[derive(Debug)]
pub struct FreqSketch {
    rows: [Vec<AtomicU64>; 2],
    mask: u64,
    shift: u32,
    total: AtomicU64,
}

const SKETCH_HASH_0: u64 = 0x9E37_79B9_7F4A_7C15;
const SKETCH_HASH_1: u64 = 0xC2B2_AE3D_27D4_EB4F;

impl FreqSketch {
    /// Build a sketch with `1 << bits` counters per row (`bits` clamped to
    /// `[4, 24]`).
    pub fn new(bits: u32) -> FreqSketch {
        let bits = bits.clamp(4, 24);
        let width = 1usize << bits;
        FreqSketch {
            rows: [
                (0..width).map(|_| AtomicU64::new(0)).collect(),
                (0..width).map(|_| AtomicU64::new(0)).collect(),
            ],
            mask: (width - 1) as u64,
            shift: 64 - bits,
            total: AtomicU64::new(0),
        }
    }

    #[inline]
    fn cells(&self, key: u64) -> (usize, usize) {
        // Multiplicative hashes; take the high bits (low bits of a
        // multiplicative hash are poorly mixed for dense keys).
        let i0 = (key.wrapping_mul(SKETCH_HASH_0) >> self.shift) & self.mask;
        let i1 = (key.wrapping_mul(SKETCH_HASH_1) >> self.shift) & self.mask;
        (i0 as usize, i1 as usize)
    }

    /// Record `n` accesses to `key`.
    #[inline]
    pub fn record(&self, key: u64, n: u64) {
        let (i0, i1) = self.cells(key);
        self.rows[0][i0].fetch_add(n, Ordering::Relaxed);
        self.rows[1][i1].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Estimated access count of `key` (an upper bound on the true count).
    #[inline]
    pub fn estimate(&self, key: u64) -> u64 {
        let (i0, i1) = self.cells(key);
        self.rows[0][i0].load(Ordering::Relaxed).min(self.rows[1][i1].load(Ordering::Relaxed))
    }

    /// Total recorded accesses across all keys.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Exponential decay: halve every counter. Called after each adaptation
    /// round so drifting hot sets age out instead of accumulating forever.
    ///
    /// Each halving is a single atomic read-modify-write (`fetch_update`):
    /// a plain load/store pair would drop any increment a concurrently
    /// recording worker landed between the two, silently leaking counts
    /// out of the sketch.
    pub fn decay(&self) {
        let halve = |c: &AtomicU64| {
            let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v / 2));
        };
        for row in &self.rows {
            for c in row {
                halve(c);
            }
        }
        halve(&self.total);
    }

    /// Atomically take the sketch's contents, leaving it empty, as sparse
    /// per-row `(cell index, count)` pairs plus the total. Each cell is
    /// swapped to zero individually, so counts recorded concurrently are
    /// either in this drain or the next — never lost, never doubled. Used
    /// by per-node deployments to ship local access statistics to the
    /// adaptation leader.
    pub fn drain_sparse(&self) -> ([Vec<(u32, u64)>; 2], u64) {
        let drain_row = |row: &Vec<AtomicU64>| {
            row.iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let v = c.swap(0, Ordering::Relaxed);
                    (v != 0).then_some((i as u32, v))
                })
                .collect::<Vec<_>>()
        };
        let rows = [drain_row(&self.rows[0]), drain_row(&self.rows[1])];
        let total = self.total.swap(0, Ordering::Relaxed);
        (rows, total)
    }

    /// Fold a drained sketch (same `bits`) into this one additively.
    /// Out-of-range cells — a peer built with a different width — are
    /// ignored rather than trusted.
    pub fn merge(&self, rows: [&[(u32, u64)]; 2], total: u64) {
        for (row, entries) in self.rows.iter().zip(rows) {
            for &(idx, count) in entries {
                if let Some(cell) = row.get(idx as usize) {
                    cell.fetch_add(count, Ordering::Relaxed);
                }
            }
        }
        self.total.fetch_add(total, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    #[test]
    fn snapshot_and_diff() {
        let m = Metrics::default();
        m.inc(|m| &m.remote_pulls);
        m.add(|m| &m.bytes_sent, 100);
        let s1 = m.snapshot();
        m.add(|m| &m.bytes_sent, 50);
        let s2 = m.snapshot();
        let d = s2 - s1;
        assert_eq!(d.bytes_sent, 50);
        assert_eq!(d.remote_pulls, 0);
        assert_eq!(s2.remote_pulls, 1);
    }

    #[test]
    fn cluster_totals_merge_nodes() {
        let c = ClusterMetrics::new(3);
        c.node(NodeId(0)).add(|m| &m.relocations, 7);
        c.node(NodeId(2)).add(|m| &m.relocations, 5);
        c.node(NodeId(1)).add(|m| &m.sync_bytes, 11);
        let t = c.total();
        assert_eq!(t.relocations, 12);
        assert_eq!(t.sync_bytes, 11);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = ClusterMetrics::new(2);
        c.node(NodeId(0)).add(|m| &m.msgs_sent, 3);
        c.reset();
        assert_eq!(c.total(), MetricsSnapshot::default());
    }

    #[test]
    fn sketch_estimates_upper_bound_true_counts() {
        let s = FreqSketch::new(12);
        for k in 0..200u64 {
            s.record(k, k + 1);
        }
        for k in 0..200u64 {
            assert!(s.estimate(k) > k, "estimate must never undercount key {k} ({})", k + 1);
        }
        assert_eq!(s.total(), (1..=200).sum::<u64>());
        // Unrecorded keys mostly read zero at this load factor; at minimum
        // the estimate is bounded by the heaviest recorded key.
        assert!(s.estimate(100_000) <= 200);
    }

    #[test]
    fn sketch_decay_halves_counts() {
        let s = FreqSketch::new(10);
        s.record(7, 100);
        s.decay();
        assert_eq!(s.estimate(7), 50);
        assert_eq!(s.total(), 50);
        s.decay();
        assert_eq!(s.estimate(7), 25);
    }

    #[test]
    fn sketch_drain_then_merge_is_lossless() {
        let a = FreqSketch::new(10);
        let b = FreqSketch::new(10);
        for k in 0..500u64 {
            a.record(k % 37, 1);
        }
        b.record(7, 3);
        let (rows, total) = a.drain_sparse();
        assert_eq!(total, 500);
        assert_eq!(a.total(), 0);
        assert_eq!(a.estimate(7), 0);
        b.merge([&rows[0], &rows[1]], total);
        // b now holds its own counts plus everything a held.
        let reference = FreqSketch::new(10);
        for k in 0..500u64 {
            reference.record(k % 37, 1);
        }
        reference.record(7, 3);
        assert_eq!(b.total(), reference.total());
        for k in 0..37u64 {
            assert_eq!(b.estimate(k), reference.estimate(k), "key {k}");
        }
    }

    #[test]
    fn sketch_merge_ignores_out_of_range_cells() {
        let s = FreqSketch::new(4); // 16 cells per row
        s.merge([&[(1000, 5)], &[(2000, 9)]], 14);
        assert_eq!(s.total(), 14);
        for k in 0..64u64 {
            assert_eq!(s.estimate(k), 0);
        }
    }

    #[test]
    fn sketch_is_deterministic() {
        let build = || {
            let s = FreqSketch::new(8);
            for k in 0..5000u64 {
                s.record(k % 321, 1);
            }
            (0..321u64).map(|k| s.estimate(k)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn fabric_write_histogram_buckets() {
        let m = Metrics::default();
        for frames in [1u64, 2, 3, 4, 7, 8, 15, 16, 100] {
            m.record_fabric_write(frames);
        }
        let s = m.snapshot();
        assert_eq!(s.fabric_writes, 9);
        assert_eq!(s.fabric_frames, 1 + 2 + 3 + 4 + 7 + 8 + 15 + 16 + 100);
        assert_eq!(s.frames_per_write_1, 1);
        assert_eq!(s.frames_per_write_2_3, 2);
        assert_eq!(s.frames_per_write_4_7, 2);
        assert_eq!(s.frames_per_write_8_15, 2);
        assert_eq!(s.frames_per_write_16_plus, 2);
    }

    #[test]
    fn empty_fabric_flushes_are_not_recorded() {
        let m = Metrics::default();
        m.record_fabric_write(0);
        let s = m.snapshot();
        assert_eq!(s.fabric_writes, 0, "an empty flush put nothing on the wire");
        assert_eq!(s.fabric_frames, 0);
        assert_eq!(s.frames_per_write_1, 0, "0 frames must not land in the '1' bucket");
        // A real single-frame write still counts where it always did.
        m.record_fabric_write(1);
        assert_eq!(m.snapshot().frames_per_write_1, 1);
    }

    #[test]
    fn decay_never_loses_racing_increments() {
        use std::sync::Arc;
        // Lockstep rounds: each round runs exactly one `record(7, V)` and
        // one `decay()` concurrently, then checks the invariant that holds
        // for any interleaving of *atomic* halvings:
        //
        //   decay-then-record  =>  estimate >= prev/2 + V  >  V/2
        //   record-then-decay  =>  estimate >= (prev+V)/2  >= V/2
        //
        // The old load/store halving had a third outcome — decay loads,
        // record lands, decay's store overwrites — which erases V entirely
        // and drives the estimate below V/2. A thousand rounds reliably
        // hit that window when the halving is not a single RMW.
        const V: u64 = 1 << 20;
        let s = Arc::new(FreqSketch::new(6));
        for round in 0..1000 {
            let writer = {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.record(7, V))
            };
            s.decay();
            writer.join().unwrap();
            assert!(
                s.estimate(7) >= V / 2,
                "round {round}: a racing decay dropped a concurrent record"
            );
            assert!(s.total() >= V / 2, "round {round}: total lost a concurrent record");
        }
    }

    #[test]
    fn entries_expose_all_fields() {
        let m = Metrics::default();
        m.inc(|m| &m.samples_drawn);
        let entries = m.snapshot().entries();
        assert!(entries.iter().any(|(n, v)| *n == "samples_drawn" && *v == 1));
        // Display prints only non-zero counters.
        let shown = m.snapshot().to_string();
        assert!(shown.contains("samples_drawn"));
        assert!(!shown.contains("sync_bytes"));
    }

    #[test]
    fn snapshot_sub_saturates_instead_of_wrapping() {
        let m = Metrics::default();
        m.add(|m| &m.msgs_sent, 3);
        let later = m.snapshot();
        m.reset();
        m.add(|m| &m.msgs_sent, 1);
        let earlier_is_larger = later - m.snapshot(); // 3 - 1
        assert_eq!(earlier_is_larger.msgs_sent, 2);
        let underflow = m.snapshot() - later; // 1 - 3 saturates
        assert_eq!(underflow.msgs_sent, 0, "Sub must saturate, not wrap");
        assert_eq!(underflow, MetricsSnapshot::default());
    }

    #[test]
    fn display_filters_zero_counters_exactly() {
        let zero = MetricsSnapshot::default();
        assert_eq!(zero.to_string(), "", "all-zero snapshot prints nothing");
        let m = Metrics::default();
        m.inc(|m| &m.relocations);
        m.add(|m| &m.sync_bytes, 9);
        let shown = m.snapshot().to_string();
        assert_eq!(shown.lines().count(), 2, "exactly the non-zero counters print");
        assert!(shown.contains("relocations"));
        assert!(shown.contains("sync_bytes"));
    }

    #[test]
    fn entries_names_agree_with_macro_fields() {
        // Every entry name must match a real field with the same value:
        // bump each counter to a distinct value through `entries`' own
        // ordering and verify the round trip via Display.
        let m = Metrics::default();
        let names: Vec<&'static str> = m.snapshot().entries().iter().map(|(n, _)| *n).collect();
        // Names are unique.
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate counter name in the macro");
        // Snapshot entries stay aligned with the live counters: bump one
        // known field and find exactly one changed entry, in its place.
        m.add(|m| &m.pool_hits, 41);
        let changed: Vec<(&'static str, u64)> =
            m.snapshot().entries().into_iter().filter(|(_, v)| *v != 0).collect();
        assert_eq!(changed, vec![("pool_hits", 41)]);
    }
}
