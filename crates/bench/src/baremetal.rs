//! A "task-specific implementation" stand-in for Section 5.8: the same
//! training math run against a bare shared-memory parameter array, without
//! any parameter-server machinery — no working copies, no per-key atomic
//! update guarantees beyond a plain latch, no sampling manager. This is
//! the same trade the paper describes for the specialized WV/MF
//! implementations it compares against ("workers read and write in the
//! parameter store directly, without any consistency or isolation
//! guarantees").

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

use nups_core::api::PsWorker;
use nups_core::key::Key;
use nups_core::sampling::{DistId, Distribution, SampleHandle};
use nups_ml::task::TrainTask;
use nups_sim::clock::{ClusterClocks, WorkerClock};
use nups_sim::cost::CostModel;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::Topology;

/// Shared state of the bare-metal runner.
pub struct BareMetal {
    values: Arc<Vec<Mutex<Vec<f32>>>>,
    dists: Vec<Arc<Distribution>>,
    clocks: Arc<ClusterClocks>,
    cost: CostModel,
    value_len: usize,
}

impl BareMetal {
    pub fn new(task: &dyn TrainTask, workers: u16, cost: CostModel) -> BareMetal {
        let mut scratch = vec![0.0f32; task.value_len()];
        let values: Vec<Mutex<Vec<f32>>> = (0..task.n_keys())
            .map(|k| {
                scratch.fill(0.0);
                task.init_value(k, &mut scratch);
                Mutex::new(scratch.clone())
            })
            .collect();
        let dists = task
            .distributions()
            .into_iter()
            .map(|d| Arc::new(Distribution::new(d.base_key, d.n, d.kind, d.level)))
            .collect();
        BareMetal {
            values: Arc::new(values),
            dists,
            clocks: Arc::new(ClusterClocks::new(Topology::single_node(workers))),
            cost,
            value_len: task.value_len(),
        }
    }

    pub fn workers(&self) -> Vec<BareWorker> {
        self.clocks
            .topology()
            .workers()
            .map(|w| BareWorker {
                values: Arc::clone(&self.values),
                dists: self.dists.clone(),
                clock: self.clocks.worker_clock(w),
                cost: self.cost,
                value_len: self.value_len,
                rng: SmallRng::seed_from_u64(
                    0xBA7E ^ self.clocks.topology().worker_index(w) as u64,
                ),
            })
            .collect()
    }

    pub fn virtual_time(&self) -> SimTime {
        self.clocks.max_time()
    }

    pub fn read_all(&self) -> Vec<Vec<f32>> {
        self.values.iter().map(|v| v.lock().clone()).collect()
    }
}

/// One bare-metal worker: direct array access, minimal costs.
pub struct BareWorker {
    values: Arc<Vec<Mutex<Vec<f32>>>>,
    dists: Vec<Arc<Distribution>>,
    clock: WorkerClock,
    cost: CostModel,
    value_len: usize,
    rng: SmallRng,
}

impl BareWorker {
    /// Raw access cost: the memcpy, without the PS's latch-and-working-copy
    /// constant.
    fn charge_raw_access(&mut self) {
        let bytes = 4 * self.value_len;
        self.clock.advance(SimDuration::from_secs_f64(bytes as f64 / self.cost.memory_bandwidth));
    }
}

impl PsWorker for BareWorker {
    fn value_len(&self) -> usize {
        self.value_len
    }

    fn pull(&mut self, key: Key, out: &mut [f32]) {
        out.copy_from_slice(&self.values[key as usize].lock());
        self.charge_raw_access();
    }

    fn push(&mut self, key: Key, delta: &[f32]) {
        {
            let mut v = self.values[key as usize].lock();
            for (x, d) in v.iter_mut().zip(delta) {
                *x += d;
            }
        }
        self.charge_raw_access();
    }

    // `pull_many`/`push_many` keep the trait's per-key defaults: shared
    // memory has no per-message framing to amortize.

    fn localize(&mut self, _keys: &[Key]) {}

    fn advance_clock(&mut self) {}

    fn charge_compute(&mut self, flops: u64) {
        self.clock.advance(self.cost.compute(flops));
    }

    fn prepare_sample(&mut self, dist: DistId, n: usize) -> SampleHandle {
        let d = &self.dists[dist.0];
        let keys: Vec<Key> = (0..n).map(|_| d.sample(&mut self.rng)).collect();
        SampleHandle::new(dist, keys)
    }

    fn pull_sample(&mut self, handle: &mut SampleHandle, n: usize) -> Vec<(Key, Vec<f32>)> {
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            let Some((key, _)) = handle.pop_key() else { break };
            keys.push(key);
        }
        let vl = self.value_len;
        let mut flat = vec![0.0f32; keys.len() * vl];
        self.pull_many(&keys, &mut flat);
        keys.into_iter().zip(flat.chunks_exact(vl).map(|c| c.to_vec())).collect()
    }

    fn begin_epoch(&mut self) {
        self.clock.refresh();
    }

    fn end_epoch(&mut self) {}

    fn now(&self) -> SimTime {
        self.clock.now()
    }
}
