//! Deterministic event tracing and the flight recorder.
//!
//! A [`TraceBuffer`] is a bounded per-node ring of fixed-size
//! [`TraceEvent`]s: spans for relocation chains, promote/demote epochs,
//! sync rounds, and bootstrap/finalize phases. Recording is an atomic
//! enabled-check plus a short mutex push — no allocation per event (names
//! are `&'static str`, payloads are two `u64` arguments). When the ring
//! is full the *oldest* event is evicted and a drop counter ticks: the
//! buffer always holds the most recent window, which is exactly what the
//! flight recorder wants. Disabling tracing ([`TraceBuffer::set_enabled`])
//! reduces recording to one relaxed atomic load.
//!
//! **Determinism.** Event timestamps come from the runtime's
//! [`crate::time::SimTime`] timeline — under the virtual-time backend
//! they are worker-clock stamps, which are a pure function of the
//! workload. Threads still *insert* into the ring in nondeterministic
//! order, so the Chrome export sorts events by their full value
//! `(ts, node, actor, name, args, dur)` before rendering with fixed
//! number formatting: two seeded virtual-time runs of the same workload
//! produce **byte-identical** trace files (as long as nothing was
//! dropped), which makes "assert the trace" an ordinary deterministic
//! test.
//!
//! **Exports.** [`chrome_trace_json`] renders the standard Chrome
//! trace-event JSON array (`chrome://tracing`, <https://ui.perfetto.dev>).
//! [`Observability`] bundles one node's [`TraceBuffer`] with its
//! [`OpHists`] and renders the **flight record**: the last events plus a
//! histogram summary, dumped to stderr when a distributed run dies
//! (finalize timeout, bootstrap failure, panic).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::hist::OpHists;
use crate::time::SimTime;

/// Default ring capacity: 64 Ki events (~3 MiB). Control-plane events are
/// rare, so tiny-scale deterministic runs never evict.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// How many trailing events a flight record prints.
pub const FLIGHT_RECORD_EVENTS: usize = 256;

/// One fixed-size journal entry. `dur == 0` means an instant event; a
/// nonzero `dur` makes it a span of `dur` nanoseconds starting at `ts`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Start stamp on the runtime timeline (nanoseconds).
    pub ts: SimTime,
    /// The node recording the event.
    pub node: u16,
    /// Lane within the node (worker index, or a role constant like
    /// [`actor::SERVER`]) — rendered as the Chrome `tid`.
    pub actor: u32,
    /// Static event name (no per-event allocation).
    pub name: &'static str,
    /// Two free-form arguments (key ids, epochs, counts...).
    pub a: u64,
    pub b: u64,
    /// Span duration in nanoseconds; 0 for instant events.
    pub dur: u64,
}

/// Well-known actor lanes.
pub mod actor {
    /// The node's server thread.
    pub const SERVER: u32 = 1_000_000;
    /// The node's replica-sync / merge path.
    pub const SYNC: u32 = 1_000_001;
    /// The fabric (bootstrap, writers).
    pub const FABRIC: u32 = 1_000_002;
    /// Process-level control flow (deploy, finalize).
    pub const CONTROL: u32 = 1_000_003;
}

/// Bounded ring of [`TraceEvent`]s retaining the newest window.
pub struct TraceBuffer {
    enabled: AtomicBool,
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            enabled: AtomicBool::new(true),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Turn recording on or off. Off costs one relaxed load per call
    /// site — observability is free when disabled.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Append one event; evicts the oldest (and counts the drop) when the
    /// ring is full.
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut q = self.events.lock();
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(ev);
    }

    /// Events evicted so far. Nonzero means exports show a truncated
    /// window (and byte-identical determinism no longer holds).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the retained window, oldest first (insertion order).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().iter().copied().collect()
    }
}

/// Render events as a Chrome trace-event JSON array.
///
/// Events are sorted by their full value first, so the output is a pure
/// function of the event *set*, not of thread interleaving; all number
/// formatting is fixed-precision. Span events render as `"ph":"X"`,
/// instant events as `"ph":"i"`. Timestamps are microseconds (the
/// trace-event unit) with the nanosecond remainder kept as three decimal
/// places.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_unstable();
    let mut out = String::with_capacity(128 * sorted.len() + 2);
    out.push_str("[\n");
    for (i, ev) in sorted.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ts = ev.ts.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":{},\"tid\":{}",
            ev.name,
            if ev.dur == 0 { "i" } else { "X" },
            ts / 1_000,
            ts % 1_000,
            ev.node,
            ev.actor,
        ));
        if ev.dur == 0 {
            out.push_str(",\"s\":\"t\"");
        } else {
            out.push_str(&format!(",\"dur\":{}.{:03}", ev.dur / 1_000, ev.dur % 1_000));
        }
        out.push_str(&format!(",\"args\":{{\"a\":{},\"b\":{}}}}}", ev.a, ev.b));
    }
    out.push_str("\n]\n");
    out
}

/// One node's observability bundle: latency histograms plus the event
/// journal, and the flight recorder that renders both on failure.
#[derive(Default)]
pub struct Observability {
    pub hists: OpHists,
    pub trace: TraceBuffer,
}

impl Observability {
    pub fn new() -> Observability {
        Observability::default()
    }

    /// Record an instant event.
    #[inline]
    pub fn event(&self, ts: SimTime, node: u16, actor: u32, name: &'static str, a: u64, b: u64) {
        self.trace.record(TraceEvent { ts, node, actor, name, a, b, dur: 0 });
    }

    /// Record a span of `dur` nanoseconds starting at `ts`. The
    /// signature mirrors [`TraceEvent`]'s fields one-to-one on purpose.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        ts: SimTime,
        dur: u64,
        node: u16,
        actor: u32,
        name: &'static str,
        a: u64,
        b: u64,
    ) {
        self.trace.record(TraceEvent { ts, node, actor, name, a, b, dur });
    }

    /// Chrome trace-event JSON of everything currently retained.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.trace.events())
    }

    /// The flight record: a human-readable dump of the last
    /// [`FLIGHT_RECORD_EVENTS`] journal entries plus a histogram summary.
    /// Callers print this to stderr on finalize timeout, bootstrap
    /// failure, or panic — the post-mortem timeline of what the node was
    /// doing when it died.
    pub fn flight_record(&self, reason: &str) -> String {
        let events = self.trace.events();
        let skipped = events.len().saturating_sub(FLIGHT_RECORD_EVENTS);
        let dropped = self.trace.dropped();
        let mut out = String::new();
        out.push_str(&format!("==== flight record: {reason} ====\n"));
        out.push_str(&format!(
            "{} events retained ({} shown, {} evicted from the ring)\n",
            events.len(),
            events.len() - skipped,
            dropped
        ));
        for ev in &events[skipped..] {
            out.push_str(&format!(
                "  [{:>14}ns] node={} actor={} {:<24} a={} b={} dur={}ns\n",
                ev.ts.0, ev.node, ev.actor, ev.name, ev.a, ev.b, ev.dur
            ));
        }
        out.push_str("histograms (ns): name count p50 p99 max\n");
        for (name, h) in self.hists.snapshot().entries() {
            if h.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "  {:<12} {:>10} {:>12} {:>12} {:>12}\n",
                name,
                h.count,
                h.percentile(50.0),
                h.percentile(99.0),
                h.max()
            ));
        }
        out.push_str("==== end flight record ====\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, name: &'static str) -> TraceEvent {
        TraceEvent { ts: SimTime(ts), node: 0, actor: 0, name, a: 0, b: 0, dur: 0 }
    }

    #[test]
    fn ring_keeps_the_newest_window_and_counts_drops() {
        let t = TraceBuffer::new(3);
        for i in 0..5 {
            t.record(ev(i, "e"));
        }
        let kept: Vec<u64> = t.events().iter().map(|e| e.ts.0).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let t = TraceBuffer::new(8);
        t.set_enabled(false);
        t.record(ev(1, "e"));
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
        t.set_enabled(true);
        t.record(ev(2, "e"));
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn chrome_export_is_insertion_order_independent() {
        let a = vec![ev(1, "x"), ev(2, "y"), ev(3, "z")];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(chrome_trace_json(&a), chrome_trace_json(&b));
        let json = chrome_trace_json(&a);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains("\"ph\":\"i\""));
        // Spans render with a duration.
        let span = TraceEvent { dur: 1_500, ..ev(10, "s") };
        let json = chrome_trace_json(&[span]);
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":1.500"), "{json}");
        assert!(json.contains("\"ts\":0.010"), "{json}");
    }

    #[test]
    fn flight_record_lists_events_and_histograms() {
        let obs = Observability::new();
        obs.event(SimTime(42), 1, actor::SERVER, "relocate_start", 7, 0);
        obs.hists.pull.record(1_000);
        let dump = obs.flight_record("unit test");
        assert!(dump.contains("flight record: unit test"));
        assert!(dump.contains("relocate_start"));
        assert!(dump.contains("pull"));
        assert!(!dump.contains("flush "), "empty histograms are filtered");
        assert!(dump.contains("end flight record"));
    }

    #[test]
    fn flight_record_shows_only_the_tail() {
        let obs = Observability::new();
        for i in 0..(FLIGHT_RECORD_EVENTS as u64 + 10) {
            obs.event(SimTime(i), 0, 0, "tick", i, 0);
        }
        let dump = obs.flight_record("tail");
        assert!(!dump.contains(" a=9 "), "old events must be cut");
        assert!(dump.contains(&format!("a={} ", FLIGHT_RECORD_EVENTS + 9)));
    }
}
