//! Statistical tests of the sampling manager's conformity guarantees
//! (paper Section 4): first-order inclusion probabilities, dependency
//! bounds, postponement behaviour, and the locality of local sampling.

use nups::core::{
    ConformityLevel, DistributionKind, NupsConfig, ParameterServer, PsWorker, ReuseParams,
    SamplingScheme,
};
use nups::sim::cost::CostModel;
use nups::sim::topology::{NodeId, Topology, WorkerId};
use rustc_hash::FxHashMap;

fn ps_with_scheme(
    topo: Topology,
    n_keys: u64,
    kind: DistributionKind,
    scheme: SamplingScheme,
) -> (ParameterServer, nups::core::DistId) {
    let cfg = NupsConfig::nups(topo, n_keys, 1).with_cost(CostModel::zero());
    let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
    let dist = ps.register_distribution_with_scheme(0, n_keys, kind, scheme);
    (ps, dist)
}

fn draw_n(w: &mut dyn PsWorker, dist: nups::core::DistId, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 0 {
        let batch = remaining.min(200);
        let mut h = w.prepare_sample(dist, batch);
        for (k, _) in w.pull_sample(&mut h, batch) {
            out.push(k);
        }
        remaining -= batch;
    }
    out
}

/// Chi-square-style check that empirical frequencies match the target.
fn frequencies_match(samples: &[u64], weights: &[f64]) -> bool {
    let total_w: f64 = weights.iter().sum();
    let n = samples.len() as f64;
    let mut counts = vec![0u64; weights.len()];
    for &s in samples {
        counts[s as usize] += 1;
    }
    let mut chi2 = 0.0;
    let mut dof = 0;
    for (c, w) in counts.iter().zip(weights) {
        let expect = w / total_w * n;
        if expect >= 5.0 {
            chi2 += (*c as f64 - expect).powi(2) / expect;
            dof += 1;
        }
    }
    chi2 < 2.0 * dof as f64 + 30.0
}

/// L1 (CONFORM): independent sampling matches the target distribution.
#[test]
fn conform_first_order_inclusion_matches_target() {
    let weights: Vec<f64> = (1..=50).map(|i| 1.0 / i as f64).collect();
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        50,
        DistributionKind::Weighted(weights.clone()),
        SamplingScheme::Independent,
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 60_000);
    assert!(frequencies_match(&samples, &weights), "CONFORM frequencies off");
    drop(w);
    ps.shutdown();
}

/// L2 (BOUNDED): pooled reuse still matches first-order inclusion
/// probabilities, every pool key is used exactly U times, and the
/// dependency window stays within U·G.
#[test]
fn bounded_reuse_matches_target_and_bounds_dependencies() {
    let weights: Vec<f64> = (1..=50).map(|i| 1.0 / i as f64).collect();
    let params = ReuseParams { pool_size: 20, use_frequency: 4 };
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        50,
        DistributionKind::Weighted(weights.clone()),
        SamplingScheme::Reuse(params),
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 60_000);
    // First-order inclusion matches π, but samples are *clustered*: each
    // iid pool draw is emitted exactly U times, which inflates count
    // variance by U and would fail a naive chi-square. Test the
    // de-clustered draws instead (counts / U are the iid pool draws).
    let mut draw_counts = vec![0u64; 50];
    for &s in &samples {
        draw_counts[s as usize] += 1;
    }
    let pool_draws: Vec<u64> = draw_counts
        .iter()
        .enumerate()
        .flat_map(|(k, &c)| {
            assert_eq!(
                c % params.use_frequency as u64,
                0,
                "key {k} used {c} times, not a multiple of U"
            );
            std::iter::repeat_n(k as u64, (c / params.use_frequency as u64) as usize)
        })
        .collect();
    assert!(frequencies_match(&pool_draws, &weights), "BOUNDED first-order inclusion off");

    drop(w);
    ps.shutdown();

    // Dependency window, tested where key collisions inside a pool are
    // negligible (uniform π over many keys): any window of U·G
    // consecutive samples holds at most ~2·U occurrences of one key (a
    // key can straddle one pool boundary; rare collisions allow a third).
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        10_000,
        DistributionKind::Uniform,
        SamplingScheme::Reuse(params),
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 40_000);
    let bound = params.pool_size * params.use_frequency;
    for window in samples.chunks(bound) {
        let mut counts: FxHashMap<u64, usize> = FxHashMap::default();
        for &k in window {
            *counts.entry(k).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(
            max <= 3 * params.use_frequency,
            "key used {max} times inside one dependency window"
        );
    }
    drop(w);
    ps.shutdown();
}

/// L3 (LONG-TERM): postponing postpones each sample at most once, never
/// loses samples, and long-run frequencies still match the target.
#[test]
fn longterm_postponing_loses_no_samples() {
    let n_keys = 200u64;
    let (ps, dist) = ps_with_scheme(
        Topology::new(2, 1),
        n_keys,
        DistributionKind::Uniform,
        SamplingScheme::ReuseWithPostponing(ReuseParams { pool_size: 25, use_frequency: 4 }),
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let mut total = 0usize;
    for _ in 0..100 {
        let mut h = w.prepare_sample(dist, 40);
        // Partial pulls so postponing has room to reorder.
        for _ in 0..4 {
            total += w.pull_sample(&mut h, 10).len();
        }
        assert_eq!(h.remaining(), 0, "samples lost in handle");
    }
    assert_eq!(total, 4000, "postponing must deliver every requested sample");
    drop(w);
    let m = ps.metrics();
    assert_eq!(m.samples_drawn, 4000);
    ps.shutdown();
}

/// L4 (NON-CONFORM): local sampling never touches the network.
#[test]
fn local_sampling_is_free_of_network_traffic() {
    let (ps, dist) = ps_with_scheme(
        Topology::new(4, 1),
        1000,
        DistributionKind::Uniform,
        SamplingScheme::Local,
    );
    let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
    let samples = draw_n(&mut w, dist, 5000);
    assert_eq!(samples.len(), 5000);
    drop(w);
    let m = ps.metrics();
    assert_eq!(m.samples_remote, 0, "local sampling reached the network");
    assert_eq!(m.remote_pulls, 0);
    // With a static allocation (no relocation happened), node 0 only ever
    // sees its own partition: the NON-CONFORM bias the paper warns about
    // (Figure 10c's "local sampling with static allocation").
    let max_key = samples.iter().max().copied().unwrap();
    assert!(max_key < 250, "node 0 sampled key {max_key} outside its partition");
    ps.shutdown();
}

/// The hierarchy: the manager never selects a scheme weaker than the
/// requested level.
#[test]
fn manager_scheme_selection_respects_hierarchy() {
    for level in [
        ConformityLevel::Conform,
        ConformityLevel::Bounded,
        ConformityLevel::LongTerm,
        ConformityLevel::NonConform,
    ] {
        let cfg = NupsConfig::nups(Topology::new(1, 1), 10, 1).with_cost(CostModel::zero());
        let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
        let _ = ps.register_distribution(0, 10, DistributionKind::Uniform, level);
        let scheme = SamplingScheme::for_level(level, ReuseParams::default());
        assert!(scheme.provides().satisfies(level));
        ps.shutdown();
    }
}
