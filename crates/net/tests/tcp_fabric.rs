//! Integration tests for the TCP fabric: a real multi-node cluster over
//! loopback sockets (one thread per node standing in for one process per
//! node — the code paths are identical, only the address space differs),
//! framing robustness under adversarial byte chunking, a concurrent
//! multi-peer stress test, and shutdown semantics.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use nups_core::adaptive::AdaptiveConfig;
use nups_core::runtime::{Backend, Fabric, RecvOutcome};
use nups_core::system::FinalizeOutcome;
use nups_core::{Deployment, NupsConfig, ParameterServer, PsWorker};
use nups_net::frame::{encode_frame, read_frame};
use nups_net::{connect_cluster, BootstrapError, ClusterOptions, TcpFabric};
use nups_sim::metrics::ClusterMetrics;
use nups_sim::net::Frame;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::{Addr, NodeId, Topology};
use nups_sim::trace::Observability;

/// Fresh observability bundle for nodes that don't inspect it.
fn obs() -> Arc<Observability> {
    Arc::new(Observability::new())
}

/// Reserve a loopback rendezvous address (bind-and-drop).
fn rendezvous_addr() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0").expect("bind").local_addr().expect("addr")
}

/// Stand up a full TCP mesh: one fabric per node, handshake included.
fn connect_mesh(topology: Topology) -> Vec<TcpFabric> {
    let coordinator = rendezvous_addr();
    let mut handles = Vec::new();
    for node in topology.nodes() {
        let opts = ClusterOptions::new(node, topology, coordinator);
        handles.push(std::thread::spawn(move || {
            let metrics = Arc::new(ClusterMetrics::new(topology.n_nodes as usize));
            connect_cluster(&opts, metrics, obs()).expect("bootstrap")
        }));
    }
    handles.into_iter().map(|h| h.join().expect("bootstrap thread")).collect()
}

/// The deterministic mini-workload both the reference (simulated,
/// in-process) and the TCP multi-node cluster run: skewed pushes to a
/// replicated hot key, scattered integer pushes to relocated keys, and a
/// few localizes so ownership transfers really cross the wire.
const N_KEYS: u64 = 64;
const VALUE_LEN: usize = 2;
const ROUNDS: u64 = 40;

fn workload_cfg(topology: Topology) -> NupsConfig {
    NupsConfig::nups(topology, N_KEYS, VALUE_LEN)
        .with_replicated_keys(vec![0, 1])
        .with_sync_period(SimDuration::from_millis(1))
}

fn init_value(key: u64, v: &mut [f32]) {
    v.fill((key % 13) as f32);
}

fn drive_worker(w: &mut impl PsWorker, global: u64) {
    let mut buf = vec![0.0f32; VALUE_LEN];
    for round in 0..ROUNDS {
        // Hot replicated key: everyone hammers it.
        w.push(0, &[1.0; VALUE_LEN]);
        // Long tail, batched: two relocated keys per round.
        let k1 = 2 + (global * 7 + round) % (N_KEYS - 2);
        let k2 = 2 + (global * 13 + round * 3) % (N_KEYS - 2);
        if round % 10 == 5 {
            w.localize(&[k1]);
        }
        let keys = [k1, k2];
        let mut out = vec![0.0f32; 2 * VALUE_LEN];
        w.pull_many(&keys, &mut out);
        w.push_many(&keys, &[1.0, 1.0, 1.0, 1.0]);
        w.pull(1, &mut buf);
        w.push(1, &[2.0; VALUE_LEN]);
        w.charge_compute(100);
    }
}

/// The ground truth: the same workload on the deterministic simulator.
fn reference_model(topology: Topology) -> Vec<Vec<u32>> {
    let ps = ParameterServer::new(workload_cfg(topology), init_value);
    let mut workers = ps.workers();
    nups_core::system::run_epoch(&mut workers, |i, w| drive_worker(w, i as u64));
    drop(workers);
    ps.flush_replicas();
    let model: Vec<Vec<u32>> =
        ps.read_all().into_iter().map(|v| v.into_iter().map(f32::to_bits).collect()).collect();
    ps.shutdown();
    model
}

#[test]
fn multi_node_cluster_over_real_sockets_matches_the_simulator() {
    let topology = Topology::new(3, 2);
    let expected = reference_model(topology);

    let coordinator = rendezvous_addr();
    let mut handles = Vec::new();
    for node in topology.nodes() {
        let opts = ClusterOptions::new(node, topology, coordinator);
        handles.push(std::thread::spawn(move || {
            let metrics = Arc::new(ClusterMetrics::new(topology.n_nodes as usize));
            let obs = obs();
            let fabric = Arc::new(
                connect_cluster(&opts, Arc::clone(&metrics), Arc::clone(&obs)).expect("bootstrap"),
            );
            let cfg = workload_cfg(topology).with_backend(Backend::WallClock);
            let ps = ParameterServer::deploy(
                cfg,
                fabric,
                metrics,
                obs,
                Deployment::SingleNode(node),
                init_value,
            );
            let mut workers = ps.workers();
            let topo = topology;
            nups_core::system::run_epoch(&mut workers, |_, w| {
                let global = topo.worker_index(w.id()) as u64;
                drive_worker(w, global);
            });
            drop(workers);
            let outcome = ps.finalize_distributed(Duration::from_secs(30));
            ps.shutdown();
            (node, outcome)
        }));
    }
    let mut model = None;
    for h in handles {
        let (node, outcome) = h.join().expect("node thread");
        match outcome {
            FinalizeOutcome::Model(m) => {
                assert_eq!(node, NodeId(0), "only the coordinator assembles the model");
                model = Some(m);
            }
            FinalizeOutcome::Released => assert_ne!(node, NodeId(0)),
            FinalizeOutcome::TimedOut => panic!("node {node} timed out finalizing"),
        }
    }
    let got: Vec<Vec<u32>> = model
        .expect("coordinator returned the model")
        .into_iter()
        .map(|v| v.into_iter().map(f32::to_bits).collect())
        .collect();
    assert_eq!(got.len(), expected.len());
    let diverged = expected.iter().zip(&got).filter(|(a, b)| a != b).count();
    assert_eq!(diverged, 0, "TCP cluster model must be bit-identical to the simulator's");
}

/// The adaptive drive: the hot pair rotates mid-run, so promotions chase
/// keys that localize traffic is concurrently relocating, and batched
/// pushes land on keys mid-migration — all across real sockets.
fn drive_adaptive(w: &mut impl PsWorker, global: u64) {
    let mut out = vec![0.0f32; VALUE_LEN];
    let mut batch_out = vec![0.0f32; 2 * VALUE_LEN];
    let batch_delta = vec![1.0f32; 2 * VALUE_LEN];
    for round in 0..60 {
        let phase = round / 15;
        let hot = 2 + (phase * 2) % (N_KEYS - 2);
        w.pull(hot, &mut out);
        w.push(hot, &[1.0; VALUE_LEN]);
        // Relocate the next phase's hot key so its promotion has to chase
        // an in-flight ownership transfer.
        if round % 15 == 10 {
            w.localize(&[2 + ((phase + 1) * 2) % (N_KEYS - 2)]);
        }
        let keys = [hot, 2 + (global * 13 + round) % (N_KEYS - 2)];
        w.pull_many(&keys, &mut batch_out);
        w.push_many(&keys, &batch_delta);
        w.charge_compute(100);
    }
}

fn adaptive_cfg(topology: Topology) -> NupsConfig {
    workload_cfg(topology).with_adaptive(AdaptiveConfig {
        adapt_every: 1,
        promote_factor: 3.0,
        demote_factor: 1.0,
        max_replicated: 8,
        max_migrations_per_round: 4,
        sketch_bits: 10,
        decay: true,
    })
}

#[test]
fn adaptive_cluster_promotions_race_relocations_over_real_sockets() {
    // Ground truth: the same adaptive workload in one process. The two
    // runs make different promotion/demotion decisions (wall-clock timing
    // vs the in-process gate), but every delta is conserved through the
    // migrations, so the final models must agree bit for bit.
    let topology = Topology::new(3, 2);
    let expected: Vec<Vec<u32>> = {
        let ps = ParameterServer::new(adaptive_cfg(topology), init_value);
        let mut workers = ps.workers();
        nups_core::system::run_epoch(&mut workers, |i, w| drive_adaptive(w, i as u64));
        drop(workers);
        ps.flush_replicas();
        let model =
            ps.read_all().into_iter().map(|v| v.into_iter().map(f32::to_bits).collect()).collect();
        ps.shutdown();
        model
    };

    let coordinator = rendezvous_addr();
    let mut handles = Vec::new();
    for node in topology.nodes() {
        let opts = ClusterOptions::new(node, topology, coordinator);
        handles.push(std::thread::spawn(move || {
            let metrics = Arc::new(ClusterMetrics::new(topology.n_nodes as usize));
            let obs = obs();
            let fabric = Arc::new(
                connect_cluster(&opts, Arc::clone(&metrics), Arc::clone(&obs)).expect("bootstrap"),
            );
            let cfg = adaptive_cfg(topology).with_backend(Backend::WallClock);
            let ps = ParameterServer::deploy(
                cfg,
                fabric,
                metrics,
                obs,
                Deployment::SingleNode(node),
                init_value,
            );
            let mut workers = ps.workers();
            let topo = topology;
            nups_core::system::run_epoch(&mut workers, |_, w| {
                let global = topo.worker_index(w.id()) as u64;
                drive_adaptive(w, global);
            });
            drop(workers);
            let outcome = ps.finalize_distributed(Duration::from_secs(30));
            ps.shutdown();
            (node, outcome)
        }));
    }
    let mut model = None;
    for h in handles {
        let (node, outcome) = h.join().expect("node thread");
        match outcome {
            FinalizeOutcome::Model(m) => {
                assert_eq!(node, NodeId(0));
                model = Some(m);
            }
            FinalizeOutcome::Released => assert_ne!(node, NodeId(0)),
            FinalizeOutcome::TimedOut => panic!("node {node} timed out finalizing"),
        }
    }
    let got: Vec<Vec<u32>> = model
        .expect("coordinator returned the model")
        .into_iter()
        .map(|v| v.into_iter().map(f32::to_bits).collect())
        .collect();
    let diverged = expected.iter().zip(&got).filter(|(a, b)| a != b).count();
    assert_eq!(diverged, 0, "adaptive TCP cluster must conserve every delta");
}

#[test]
fn duplicate_node_id_is_a_typed_bootstrap_error() {
    // Three processes are expected, but two of them were (mis)launched
    // with --node-id 1. The coordinator must identify the duplicate
    // instead of hanging or panicking; the impostors fail with an I/O or
    // timeout error once the coordinator gives up.
    let topology = Topology::new(3, 1);
    let coordinator = rendezvous_addr();
    let coord = std::thread::spawn(move || {
        let mut opts = ClusterOptions::new(NodeId(0), topology, coordinator);
        opts.timeout = Duration::from_secs(10);
        connect_cluster(&opts, Arc::new(ClusterMetrics::new(3)), obs())
    });
    let peers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                // Short budget: once the coordinator bails out, the
                // membership these impostors wait for will never come.
                let mut opts = ClusterOptions::new(NodeId(1), topology, coordinator);
                opts.timeout = Duration::from_secs(5);
                connect_cluster(&opts, Arc::new(ClusterMetrics::new(3)), obs())
            })
        })
        .collect();
    match coord.join().expect("coordinator thread") {
        Err(BootstrapError::DuplicateNode(node)) => assert_eq!(node, NodeId(1)),
        Err(other) => panic!("expected DuplicateNode(1), got {other:?}"),
        Ok(_) => panic!("expected DuplicateNode(1), got a fabric"),
    }
    for p in peers {
        assert!(p.join().expect("peer thread").is_err(), "impostors must not get a fabric");
    }
}

#[test]
fn out_of_range_hello_is_a_typed_bootstrap_error() {
    // A foreign client introduces itself as node 7 of a 2-node cluster:
    // raw bytes in the bootstrap control encoding (tag 1 = hello, node id,
    // then an optional listener address), framed like any control frame.
    let topology = Topology::new(2, 1);
    let coordinator = rendezvous_addr();
    let coord = std::thread::spawn(move || {
        let mut opts = ClusterOptions::new(NodeId(0), topology, coordinator);
        opts.timeout = Duration::from_secs(10);
        connect_cluster(&opts, Arc::new(ClusterMetrics::new(2)), obs())
    });
    let mut payload = vec![1u8]; // tag: hello
    payload.extend_from_slice(&7u16.to_le_bytes()); // node 7
    let listen = "127.0.0.1:9";
    payload.push(1); // listener address present
    payload.extend_from_slice(&(listen.len() as u16).to_le_bytes());
    payload.extend_from_slice(listen.as_bytes());
    let frame = Frame {
        src: Addr { node: NodeId(7), port: u16::MAX },
        dst: Addr { node: NodeId(0), port: u16::MAX },
        sent_at: SimTime::ZERO,
        payload: Bytes::from(payload),
    };
    // The coordinator may not have bound the rendezvous listener yet.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match TcpStream::connect(coordinator) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("could not reach the rendezvous listener: {e}"),
        }
    };
    stream.write_all(&encode_frame(&frame)).expect("send rogue hello");
    match coord.join().expect("coordinator thread") {
        Err(BootstrapError::NodeOutOfRange { node, n_nodes }) => {
            assert_eq!(node, NodeId(7));
            assert_eq!(n_nodes, 2);
        }
        Err(other) => panic!("expected NodeOutOfRange, got {other:?}"),
        Ok(_) => panic!("expected NodeOutOfRange, got a fabric"),
    }
}

#[test]
fn bootstrap_times_out_against_an_absent_cluster() {
    // A peer dialing a rendezvous address nobody binds must give up once
    // its own timeout budget is spent — not after any built-in constant.
    let coordinator = rendezvous_addr();
    let mut opts = ClusterOptions::new(NodeId(1), Topology::new(2, 1), coordinator);
    opts.timeout = Duration::from_millis(300);
    let t0 = Instant::now();
    let err = connect_cluster(&opts, Arc::new(ClusterMetrics::new(2)), obs())
        .err()
        .expect("no cluster to join");
    assert!(
        matches!(err, BootstrapError::TimedOut { .. } | BootstrapError::Io(_)),
        "unexpected error: {err:?}"
    );
    assert!(t0.elapsed() < Duration::from_secs(5), "must honor the configured timeout");
}

#[test]
fn framing_survives_partial_writes_and_short_reads() {
    // A frame dribbled one byte at a time over a real socket must
    // reassemble exactly; several frames written in one burst must split
    // exactly.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let payloads: Vec<Vec<u8>> = vec![vec![7u8; 300], vec![], (0..=255u8).collect()];
    let frames: Vec<Frame> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| Frame {
            src: Addr::server(NodeId(1)),
            dst: Addr::worker(NodeId(0), i as u16),
            sent_at: SimTime(i as u64),
            payload: Bytes::copy_from_slice(p),
        })
        .collect();

    let sender_frames = frames.clone();
    let writer = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).expect("connect");
        // Frame 0: one byte at a time (worst-case partial writes).
        for b in encode_frame(&sender_frames[0]) {
            s.write_all(&[b]).expect("write byte");
            s.flush().expect("flush");
        }
        // Frames 1 and 2: one burst (reader must split them).
        let mut burst = encode_frame(&sender_frames[1]);
        burst.extend_from_slice(&encode_frame(&sender_frames[2]));
        s.write_all(&burst).expect("write burst");
    });

    let (mut conn, _) = listener.accept().expect("accept");
    for expect in &frames {
        let got = read_frame(&mut conn).expect("frame reassembles");
        assert_eq!(got.dst, expect.dst);
        assert_eq!(got.sent_at, expect.sent_at);
        assert_eq!(&got.payload[..], &expect.payload[..]);
    }
    writer.join().expect("writer");
}

#[test]
fn concurrent_multi_peer_sends_deliver_everything() {
    // Every node sends a burst to every other node's server port from two
    // threads at once; every frame must arrive intact (checksums verify
    // payloads) and nothing may be lost or duplicated.
    let topology = Topology::new(3, 1);
    let fabrics: Vec<Arc<TcpFabric>> = connect_mesh(topology).into_iter().map(Arc::new).collect();
    const PER_LINK: u64 = 500;

    let mut recv_handles = Vec::new();
    let mut send_handles = Vec::new();
    for (i, fabric) in fabrics.iter().enumerate() {
        let me = NodeId(i as u16);
        let port = fabric.bind(Addr::server(me));
        let n_expected = PER_LINK * 2 * (topology.n_nodes as u64 - 1);
        recv_handles.push(std::thread::spawn(move || {
            let mut counts = vec![0u64; 3];
            for _ in 0..n_expected {
                let f = port.recv().expect("frame before shutdown");
                // Payload: sender node tag repeated; length varies.
                assert!(f.payload.iter().all(|&b| b == f.src.node.0 as u8));
                counts[f.src.node.index()] += 1;
            }
            counts
        }));
        for lane in 0..2u64 {
            let fabric = Arc::clone(fabric);
            send_handles.push(std::thread::spawn(move || {
                for peer in topology.nodes().filter(|p| *p != me) {
                    for k in 0..PER_LINK {
                        let len = ((k + lane) % 96) as usize;
                        fabric.post(Frame {
                            src: Addr::worker(me, lane as u16),
                            dst: Addr::server(peer),
                            sent_at: SimTime(k),
                            payload: Bytes::copy_from_slice(&vec![me.0 as u8; len]),
                        });
                    }
                }
            }));
        }
    }
    for h in send_handles {
        h.join().expect("sender");
    }
    for (i, h) in recv_handles.into_iter().enumerate() {
        let counts = h.join().expect("receiver");
        for (from, &c) in counts.iter().enumerate() {
            if from == i {
                assert_eq!(c, 0, "no frames from self");
            } else {
                assert_eq!(c, PER_LINK * 2, "node {i} lost frames from {from}");
            }
        }
    }
    for f in &fabrics {
        f.close();
    }
}

#[test]
fn shutdown_unblocks_blocked_receivers() {
    let topology = Topology::new(2, 1);
    let fabrics = connect_mesh(topology);
    let port = fabrics[1].bind(Addr::server(NodeId(1)));

    // recv_deadline times out while the fabric is healthy …
    let t0 = Instant::now();
    assert!(matches!(
        port.recv_deadline(Instant::now() + Duration::from_millis(30)),
        RecvOutcome::TimedOut
    ));
    assert!(t0.elapsed() >= Duration::from_millis(25), "must actually wait");

    // … frames still flow …
    fabrics[0].post(Frame {
        src: Addr::server(NodeId(0)),
        dst: Addr::server(NodeId(1)),
        sent_at: SimTime::ZERO,
        payload: Bytes::from_static(b"ping"),
    });
    let f = port.recv().expect("frame delivered");
    assert_eq!(&f.payload[..], b"ping");

    // … and a blocked recv returns None the moment the fabric closes.
    let waiter = std::thread::spawn(move || port.recv());
    std::thread::sleep(Duration::from_millis(20));
    fabrics[1].close();
    assert!(waiter.join().expect("waiter").is_none(), "shutdown must unblock recv");

    // recv_deadline on a closed fabric reports Closed immediately.
    let port0 = fabrics[0].bind(Addr::server(NodeId(0)));
    fabrics[0].close();
    assert!(matches!(
        port0.recv_deadline(Instant::now() + Duration::from_secs(5)),
        RecvOutcome::Closed
    ));
}

#[test]
fn coalescing_counters_account_for_every_socket_frame() {
    // Every frame that crosses a socket must be counted by exactly one
    // coalesced write, and the frames-per-write histogram must tally with
    // the write counter — whichever mix of inline sends, combiner drains,
    // and writer-thread batches actually carried the burst.
    let topology = Topology::new(2, 1);
    let coordinator = rendezvous_addr();
    let mut handles = Vec::new();
    for node in topology.nodes() {
        let opts = ClusterOptions::new(node, topology, coordinator);
        handles.push(std::thread::spawn(move || {
            let metrics = Arc::new(ClusterMetrics::new(2));
            let fabric = connect_cluster(&opts, Arc::clone(&metrics), obs()).expect("bootstrap");
            (fabric, metrics)
        }));
    }
    let nodes: Vec<(TcpFabric, Arc<ClusterMetrics>)> =
        handles.into_iter().map(|h| h.join().expect("thread")).collect();

    // The bootstrap's own control frames already moved the counters;
    // measure the burst as a delta.
    let before = nodes[0].1.total();
    const BURST: u64 = 200;
    let port1 = nodes[1].0.bind(Addr::server(NodeId(1)));
    let recv = std::thread::spawn(move || {
        for _ in 0..BURST {
            port1.recv().expect("frame before shutdown");
        }
    });
    let port0 = nodes[0].0.bind(Addr::server(NodeId(0)));
    for k in 0..BURST {
        port0.send(Addr::server(NodeId(1)), SimTime(k), Bytes::copy_from_slice(&[k as u8; 16]));
    }
    recv.join().expect("receiver");
    let after = nodes[0].1.total();

    assert_eq!(after.fabric_frames - before.fabric_frames, BURST, "every frame counted once");
    let writes = after.fabric_writes - before.fabric_writes;
    assert!(writes >= 1, "the burst took at least one socket write");
    assert!(writes <= after.fabric_frames - before.fabric_frames, "writes never exceed frames");
    // The histogram is the write counter, bucketed.
    let buckets = after.frames_per_write_1
        + after.frames_per_write_2_3
        + after.frames_per_write_4_7
        + after.frames_per_write_8_15
        + after.frames_per_write_16_plus;
    assert_eq!(buckets, after.fabric_writes, "histogram buckets tally with fabric_writes");
    // Scratch buffers cycle through the pool: after the first few frames
    // every take is a hit, so misses stay bounded while hits track load.
    assert!(after.pool_hits > 0, "the pool must be reused across frames");
    assert!(
        after.pool_misses <= after.pool_hits,
        "a steady burst must mostly hit the pool (hits {} misses {})",
        after.pool_hits,
        after.pool_misses
    );
    for (f, _) in &nodes {
        f.close();
    }
}

#[test]
fn local_frames_never_touch_the_network_counters() {
    let topology = Topology::new(2, 1);
    let coordinator = rendezvous_addr();
    let mut handles = Vec::new();
    for node in topology.nodes() {
        let opts = ClusterOptions::new(node, topology, coordinator);
        handles.push(std::thread::spawn(move || {
            let metrics = Arc::new(ClusterMetrics::new(2));
            let fabric = connect_cluster(&opts, Arc::clone(&metrics), obs()).expect("bootstrap");
            (fabric, metrics)
        }));
    }
    let mut nodes: Vec<(TcpFabric, Arc<ClusterMetrics>)> =
        handles.into_iter().map(|h| h.join().expect("thread")).collect();
    let (f0, m0) = &mut nodes[0];
    let port = f0.bind(Addr::server(NodeId(0)));
    // Intra-node: shared memory, not network traffic.
    port.send(Addr::worker(NodeId(0), 0), SimTime::ZERO, Bytes::from_static(b"local"));
    assert_eq!(m0.total().msgs_sent, 0);
    assert_eq!(m0.total().bytes_sent, 0);
    // Remote: counted with the real on-the-wire size (payload + header).
    port.send(Addr::server(NodeId(1)), SimTime::ZERO, Bytes::from_static(b"abcde"));
    assert_eq!(m0.total().msgs_sent, 1);
    assert_eq!(m0.total().bytes_sent, (5 + nups_net::HEADER_BYTES) as u64);
    for (f, _) in &nodes {
        f.close();
    }
}
