//! Synthetic knowledge graph (the Wikidata5M substitute; see DESIGN.md).
//!
//! Wikidata5M is a real graph with heavily skewed entity degrees. What the
//! parameter server *sees* of it is (i) Zipf-skewed direct access to entity
//! and relation embeddings and (ii) uniform sampling access from negative
//! sampling. This generator reproduces both, and additionally *plants*
//! learnable structure so that model quality (filtered MRR) is a
//! meaningful, improving signal: entities belong to latent clusters and
//! each relation is a deterministic map between clusters. A ComplEx model
//! can represent such relational structure, so training recovers it and
//! MRR rises — while a broken parameter server (lost updates, wild
//! staleness) measurably hurts it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// One subject–relation–object triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    pub s: u32,
    pub r: u32,
    pub o: u32,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct KgConfig {
    pub n_entities: usize,
    pub n_relations: usize,
    pub n_train: usize,
    pub n_test: usize,
    /// Latent clusters planted into the graph.
    pub n_clusters: usize,
    /// Skew of entity popularity (Wikidata-like degree skew ≈ 1.0).
    pub popularity_alpha: f64,
    /// Fraction of triples that ignore the planted structure (noise).
    pub noise: f64,
    pub seed: u64,
}

impl Default for KgConfig {
    fn default() -> KgConfig {
        KgConfig {
            n_entities: 10_000,
            n_relations: 32,
            n_train: 100_000,
            n_test: 2_000,
            n_clusters: 16,
            popularity_alpha: 1.0,
            noise: 0.05,
            seed: 7,
        }
    }
}

/// A generated knowledge graph with train/test split.
#[derive(Debug)]
pub struct KnowledgeGraph {
    pub config: KgConfig,
    pub train: Vec<Triple>,
    pub test: Vec<Triple>,
    /// Entity cluster assignment (ground truth; evaluation only).
    pub entity_cluster: Vec<u16>,
    /// Relation cluster maps (ground truth; evaluation only).
    pub relation_map: Vec<Vec<u16>>,
}

impl KnowledgeGraph {
    pub fn generate(config: KgConfig) -> KnowledgeGraph {
        assert!(config.n_entities >= config.n_clusters && config.n_clusters > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Cluster assignment: round-robin so every cluster is populated,
        // then popularity is independent of cluster.
        let entity_cluster: Vec<u16> =
            (0..config.n_entities).map(|e| (e % config.n_clusters) as u16).collect();
        let mut cluster_members: Vec<Vec<u32>> = vec![Vec::new(); config.n_clusters];
        for (e, &c) in entity_cluster.iter().enumerate() {
            cluster_members[c as usize].push(e as u32);
        }

        // Each relation is a random permutation over clusters.
        let relation_map: Vec<Vec<u16>> = (0..config.n_relations)
            .map(|_| {
                let mut perm: Vec<u16> = (0..config.n_clusters as u16).collect();
                for i in (1..perm.len()).rev() {
                    perm.swap(i, rng.gen_range(0..=i));
                }
                perm
            })
            .collect();

        let popularity = Zipf::new(config.n_entities, config.popularity_alpha);
        // Relations are also skewed, but mildly.
        let relation_pop = Zipf::new(config.n_relations, 0.5);

        let mut triples = Vec::with_capacity(config.n_train + config.n_test);
        let total = config.n_train + config.n_test;
        let mut seen = rustc_hash::FxHashSet::default();
        while triples.len() < total {
            let s = popularity.sample(&mut rng) as u32;
            let r = relation_pop.sample(&mut rng) as u32;
            let o = if rng.gen::<f64>() < config.noise {
                popularity.sample(&mut rng) as u32
            } else {
                // Planted structure: object lies in the relation's image
                // cluster of the subject; popularity-biased within it.
                let target = relation_map[r as usize][entity_cluster[s as usize] as usize];
                let members = &cluster_members[target as usize];
                // Popularity-biased member pick: rejection against global
                // popularity, falling back to uniform.
                let mut pick = members[rng.gen_range(0..members.len())];
                for _ in 0..4 {
                    let cand = popularity.sample(&mut rng) as u32;
                    if entity_cluster[cand as usize] == target {
                        pick = cand;
                        break;
                    }
                }
                pick
            };
            let t = Triple { s, r, o };
            // Keep test triples unique so filtered ranking is meaningful.
            if triples.len() >= config.n_train && !seen.insert(t) {
                continue;
            }
            triples.push(t);
        }

        let test = triples.split_off(config.n_train);
        KnowledgeGraph { config, train: triples, test, entity_cluster, relation_map }
    }

    /// Direct-access frequency of every entity (subject + object
    /// occurrences in the training data). Input to the technique heuristic.
    pub fn entity_frequencies(&self) -> Vec<u64> {
        let mut f = vec![0u64; self.config.n_entities];
        for t in &self.train {
            f[t.s as usize] += 1;
            f[t.o as usize] += 1;
        }
        f
    }

    /// Direct-access frequency of every relation.
    pub fn relation_frequencies(&self) -> Vec<u64> {
        let mut f = vec![0u64; self.config.n_relations];
        for t in &self.train {
            f[t.r as usize] += 1;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KnowledgeGraph {
        KnowledgeGraph::generate(KgConfig {
            n_entities: 1000,
            n_relations: 8,
            n_train: 20_000,
            n_test: 500,
            n_clusters: 10,
            popularity_alpha: 1.0,
            noise: 0.05,
            seed: 42,
        })
    }

    #[test]
    fn sizes_and_ranges() {
        let kg = small();
        assert_eq!(kg.train.len(), 20_000);
        assert_eq!(kg.test.len(), 500);
        for t in kg.train.iter().chain(kg.test.iter()) {
            assert!((t.s as usize) < 1000);
            assert!((t.o as usize) < 1000);
            assert!((t.r as usize) < 8);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn entity_access_is_skewed() {
        // The paper measures: a small share of parameters receives a large
        // share of accesses (Figure 3a). Entity 0 (most popular) must be
        // orders of magnitude hotter than the median.
        let kg = small();
        let f = kg.entity_frequencies();
        let total: u64 = f.iter().sum();
        assert_eq!(total, 2 * kg.train.len() as u64);
        let mut sorted = f.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = sorted[..10].iter().sum();
        assert!(
            top10 as f64 > 0.15 * total as f64,
            "top-10 share {:.3}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn planted_structure_dominates_noise() {
        let kg = small();
        let consistent = kg
            .train
            .iter()
            .filter(|t| {
                kg.relation_map[t.r as usize][kg.entity_cluster[t.s as usize] as usize]
                    == kg.entity_cluster[t.o as usize]
            })
            .count();
        let share = consistent as f64 / kg.train.len() as f64;
        assert!(share > 0.9, "structure share {share}");
    }

    #[test]
    fn test_triples_are_unique() {
        let kg = small();
        let set: rustc_hash::FxHashSet<_> = kg.test.iter().collect();
        assert_eq!(set.len(), kg.test.len());
    }
}
