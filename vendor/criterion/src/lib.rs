//! Vendored stand-in for the `criterion` crate (the build environment has
//! no network access to crates.io). Provides the `Criterion` /
//! `BenchmarkGroup` / `Bencher` API surface the workspace's benches use.
//! Measurement is a simple warmup-plus-timed-loop that prints a per-bench
//! mean; it has none of criterion's statistics, but keeps `cargo bench`
//! runnable and the bench code compiling.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Things usable as a benchmark id: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Wall time the calibrated measurement loop aims for. Long enough that
/// `Instant` overhead and resolution are negligible even for
/// nanosecond-scale closures, short enough that whole-experiment closures
/// run exactly once.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(20);

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup, then a single-shot estimate to calibrate the iteration
        // count: fast closures get enough iterations to amortize timer
        // overhead; slow ones (whole simulated experiments) run once.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_MEASURE_TIME.as_nanos() / est.as_nanos()).clamp(1, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into_id(), self.sample_size, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_bench(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters: sample_size.max(1) as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = if b.elapsed.is_zero() {
        Duration::ZERO
    } else {
        Duration::from_nanos((b.elapsed.as_nanos() / b.iters as u128) as u64)
    };
    println!("bench {name:<60} {per_iter:>12.3?}/iter ({} iters)", b.iters);
}

/// Collect benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function(BenchmarkId::new("inc", 1), |b| b.iter(|| count += 1));
            g.finish();
        }
        assert!(count > 0);
    }
}
