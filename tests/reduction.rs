//! The paper's "no overhead" reduction property (Section 3.2): NuPS
//! configured as a single-technique PS must not pay for the technique it
//! does not use — no replication messages without replicated keys, no
//! relocation messages without relocation, no network at all on a single
//! node.

use nups::core::system::run_epoch;
use nups::core::{NupsConfig, ParameterServer, PsWorker};
use nups::sim::cost::CostModel;
use nups::sim::topology::Topology;

fn exercise(ps: &ParameterServer) {
    let mut workers = ps.workers();
    run_epoch(&mut workers, |i, w| {
        let mut buf = vec![0.0f32; 2];
        for k in 0..20u64 {
            if i % 2 == 0 {
                w.localize(&[k]);
            }
            w.pull(k, &mut buf);
            w.push(k, &[1.0, 1.0]);
            w.charge_compute(100);
        }
    });
    ps.flush_replicas();
}

#[test]
fn no_replicated_keys_means_no_sync_traffic() {
    let cfg = NupsConfig::lapse(Topology::new(4, 2), 40, 2).with_cost(CostModel::zero());
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    exercise(&ps);
    let m = ps.metrics();
    assert_eq!(m.sync_rounds, 0);
    assert_eq!(m.sync_bytes, 0);
    assert_eq!(m.replica_pulls + m.replica_pushes, 0);
    assert_eq!(ps.sync_stats().syncs_done, 0, "sync gate ran despite no replicas");
    ps.shutdown();
}

#[test]
fn all_keys_replicated_means_no_relocation_traffic() {
    let keys: Vec<u64> = (0..40).collect();
    let cfg = NupsConfig::nups(Topology::new(4, 2), 40, 2)
        .with_cost(CostModel::zero())
        .with_replicated_keys(keys);
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    exercise(&ps);
    let m = ps.metrics();
    assert_eq!(m.relocations, 0);
    assert_eq!(m.remote_pulls + m.remote_pushes, 0);
    assert_eq!(m.relocation_conflicts, 0);
    ps.shutdown();
}

#[test]
fn single_node_sends_nothing_over_the_network() {
    let cfg = NupsConfig::single_node(4, 40, 2).with_cost(CostModel::zero());
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    exercise(&ps);
    let m = ps.metrics();
    assert_eq!(m.msgs_sent, 0);
    assert_eq!(m.bytes_sent, 0);
    assert_eq!(m.remote_pulls + m.remote_pushes, 0);
    ps.shutdown();
}

#[test]
fn classic_never_relocates() {
    let cfg = NupsConfig::classic(Topology::new(4, 2), 40, 2).with_cost(CostModel::zero());
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    exercise(&ps);
    let m = ps.metrics();
    assert_eq!(m.relocations, 0, "classic PS must keep static allocation");
    assert!(m.remote_pulls > 0, "classic PS must access remote keys over the network");
    ps.shutdown();
}
