//! Eager replication for hot-spot parameters (Section 3.2).
//!
//! Every node holds a replica of every replicated key. Reads are served
//! from the local replica through shared memory. Writes are applied to the
//! local replica immediately (so a node observes its own updates) *and*
//! accumulated into a per-key update buffer. A background synchronization —
//! modelled as a sparse all-reduce using recursive doubling, as in the
//! paper — periodically exchanges the accumulated updates: afterwards every
//! replica has absorbed every node's deltas exactly once.
//!
//! Staleness is *time-based* (the paper's departure from clock-based SSP
//! bounds): the sync cadence is a virtual-time period, enforced by
//! [`crate::syncgate::SyncGate`].

use parking_lot::{Mutex, RwLock};

use nups_sim::cost::CostModel;
use nups_sim::metrics::ClusterMetrics;
use nups_sim::net::Frame;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::{Addr, NodeId, Topology};
use nups_sim::WireEncode;

use crate::key::Key;
use crate::messages::{KeyUpdate, Msg};
use crate::runtime::Fabric;
use crate::value::{add_assign, axpy, norm, ClipPolicy, ClipState};

struct Slot {
    /// The key currently living in this slot — the slot's *tenancy token*.
    /// Per-node deployments migrate keys while workers run, so every
    /// keyed access re-checks the token under the slot lock and fails out
    /// (caller re-routes) when the slot changed tenants underneath it.
    key: Option<Key>,
    /// The slot's replication *era*: the epoch of the adaptation plan
    /// that installed this tenancy (0 for keys replicated since startup,
    /// and always 0 when adaptation is off). A key demoted and later
    /// re-promoted gets a fresh era, so a sync delta from the previous
    /// tenancy — stamped with the era it was drained under — can never be
    /// mistaken for one of the current era.
    era: u64,
    value: Vec<f32>,
    /// Deltas accumulated locally since the last synchronization.
    accum: Vec<f32>,
    dirty: bool,
}

impl Slot {
    fn new(key: Option<Key>, value: Vec<f32>, era: u64) -> Slot {
        let accum = vec![0.0; value.len()];
        Slot { key, era, value, accum, dirty: false }
    }

    fn hole() -> Slot {
        Slot::new(None, Vec::new(), 0)
    }
}

/// One node's set of replicas, indexed by dense replica slot.
///
/// The slot vector grows when the adaptive technique manager promotes a key
/// past the current capacity; freed slots are cleared in place and reused.
/// In-process deployments grow only at synchronization rendezvous (workers
/// parked); per-node deployments mutate slots from the server thread while
/// workers run, which is what the per-slot tenancy keys are for. Server
/// threads may also serve late-chasing operations concurrently, so the
/// vector is behind an `RwLock` — an uncontended read on the hot path.
pub struct ReplicaSet {
    slots: RwLock<Vec<Mutex<Slot>>>,
    clip_policy: ClipPolicy,
    clip_state: Mutex<ClipState>,
}

impl ReplicaSet {
    /// Build with `initial[slot]` as the `(key, starting value)` of each
    /// replica. Every node must be initialized with identical values.
    pub fn new(initial: &[(Key, Vec<f32>)], clip_policy: ClipPolicy) -> ReplicaSet {
        ReplicaSet {
            slots: RwLock::new(
                initial
                    .iter()
                    .map(|(k, v)| Mutex::new(Slot::new(Some(*k), v.clone(), 0)))
                    .collect(),
            ),
            clip_policy,
            clip_state: Mutex::new(ClipState::new()),
        }
    }

    pub fn n_slots(&self) -> usize {
        self.slots.read().len()
    }

    /// Read the replica into `out` (shared-memory pull). `false` when the
    /// slot's tenant is no longer `key` (concurrent migration): the caller
    /// re-routes.
    #[inline]
    #[must_use]
    pub fn pull(&self, slot: u32, key: Key, out: &mut [f32]) -> bool {
        let slots = self.slots.read();
        let s = slots[slot as usize].lock();
        if s.key != Some(key) {
            return false;
        }
        out.copy_from_slice(&s.value);
        true
    }

    /// Apply `delta` locally and buffer it for synchronization. Replicated
    /// parameters are where the paper applies gradient-norm clipping
    /// (Section 5.1) to prevent exploding gradients under staleness.
    /// `false` on a tenancy mismatch (nothing applied).
    #[inline]
    #[must_use]
    pub fn push(&self, slot: u32, key: Key, delta: &[f32]) -> bool {
        let scale = {
            let mut clip = self.clip_state.lock();
            clip.observe(self.clip_policy, norm(delta))
        };
        let slots = self.slots.read();
        let mut s = slots[slot as usize].lock();
        if s.key != Some(key) {
            return false;
        }
        axpy(&mut s.value, scale, delta);
        axpy(&mut s.accum, scale, delta);
        s.dirty = true;
        true
    }

    /// Copy of the replica value (evaluation).
    pub fn get(&self, slot: u32) -> Vec<f32> {
        let slots = self.slots.read();
        let s = slots[slot as usize].lock();
        s.value.clone()
    }

    /// Install `value` as `key`'s replica in `slot`, growing the set — with
    /// empty hole slots if needed — when `slot` is beyond the current end.
    /// (In-process promotion fills slots densely; per-node deployments can
    /// complete promotions out of plan order, so a later slot may install
    /// first.) Resets the update buffer: the installed value is the
    /// authoritative post-migration state. `era` is the epoch of the plan
    /// installing this tenancy (0 outside the distributed-adaptive path).
    pub fn install_slot(&self, slot: u32, key: Key, value: Vec<f32>, era: u64) {
        let mut slots = self.slots.write();
        let i = slot as usize;
        while i > slots.len() {
            slots.push(Mutex::new(Slot::hole()));
        }
        if i == slots.len() {
            slots.push(Mutex::new(Slot::new(Some(key), value, era)));
        } else {
            *slots[i].lock() = Slot::new(Some(key), value, era);
        }
    }

    /// Clear a freed slot (demotion): zero value and buffer and evict the
    /// tenant so a stale delta cannot leak into the slot's next occupant.
    pub fn clear_slot(&self, slot: u32) {
        let slots = self.slots.read();
        let mut s = slots[slot as usize].lock();
        s.key = None;
        s.value.iter_mut().for_each(|x| *x = 0.0);
        s.accum.iter_mut().for_each(|x| *x = 0.0);
        s.dirty = false;
    }

    /// Atomically end `key`'s tenancy of `slot` and take its final
    /// `(value, accum)` (distributed demotion). The slot is left empty.
    /// `None` on a tenancy mismatch (the key was already evicted).
    pub fn seal_slot(&self, slot: u32, key: Key) -> Option<(Vec<f32>, Vec<f32>)> {
        let slots = self.slots.read();
        let mut s = slots[slot as usize].lock();
        if s.key != Some(key) {
            return None;
        }
        s.key = None;
        s.dirty = false;
        let value = std::mem::take(&mut s.value);
        let accum = std::mem::take(&mut s.accum);
        Some((value, accum))
    }

    /// Snapshot `(value, accum)` of one slot (demotion collapse).
    fn value_and_accum(&self, slot: u32) -> (Vec<f32>, Vec<f32>) {
        let slots = self.slots.read();
        let s = slots[slot as usize].lock();
        (s.value.clone(), s.accum.clone())
    }

    /// Take the accumulated deltas of all dirty slots, resetting them.
    fn drain(&self) -> Vec<(u32, Vec<f32>)> {
        let mut out = Vec::new();
        let slots = self.slots.read();
        for (i, slot) in slots.iter().enumerate() {
            let mut s = slot.lock();
            if s.dirty {
                let len = s.accum.len();
                let taken = std::mem::replace(&mut s.accum, vec![0.0; len]);
                s.dirty = false;
                out.push((i as u32, taken));
            }
        }
        out
    }

    /// Like [`ReplicaSet::drain`], but keyed by the slots' tenant keys and
    /// tagged with each slot's era — the shape the distributed
    /// [`Msg::ReplicaDeltas`] broadcast carries, so receivers can re-route
    /// around concurrent migrations. Era and accumulator are read under
    /// the same slot lock, so a drained delta's era tag is exact: the
    /// accumulator is emptied whenever a tenancy (and thus an era) ends.
    fn drain_keyed(&self) -> Vec<(u64, Key, Vec<f32>)> {
        let mut out = Vec::new();
        let slots = self.slots.read();
        for slot in slots.iter() {
            let mut s = slot.lock();
            if s.dirty {
                if let Some(key) = s.key {
                    let len = s.accum.len();
                    let taken = std::mem::replace(&mut s.accum, vec![0.0; len]);
                    let era = s.era;
                    s.dirty = false;
                    out.push((era, key, taken));
                }
            }
        }
        out
    }

    /// Absorb the sum of *other* nodes' deltas for `slot`. In per-node
    /// deployments the server calls this when a peer's
    /// [`Msg::ReplicaDeltas`] broadcast arrives. `false` on a tenancy or
    /// era mismatch (nothing applied; the caller conserves the delta
    /// through the relocation path or drops it, see
    /// `Server::dispatch_replica_delta`). The era check runs under the
    /// slot lock, so a delta from a previous replication era of the same
    /// key can never land in the current era's copy, no matter how the
    /// arrival interleaves with a demote/re-promote cycle.
    #[must_use]
    pub fn apply_foreign(&self, slot: u32, key: Key, era: u64, delta: &[f32]) -> bool {
        let slots = self.slots.read();
        let mut s = slots[slot as usize].lock();
        if s.key != Some(key) || s.era != era {
            return false;
        }
        add_assign(&mut s.value, delta);
        true
    }

    /// Unkeyed foreign-delta apply for the in-process all-reduce, where
    /// slot assignments cannot shift mid-merge (every worker is parked at
    /// the rendezvous and migrations run under the same gate).
    fn apply_foreign_slot(&self, slot: u32, delta: &[f32]) {
        let slots = self.slots.read();
        let mut s = slots[slot as usize].lock();
        debug_assert!(s.key.is_some(), "in-process merge over an unoccupied slot {slot}");
        add_assign(&mut s.value, delta);
    }
}

/// Cluster-wide synchronizer over all nodes' [`ReplicaSet`]s. The merge is
/// executed in-process (the rendezvous substitution described in DESIGN.md)
/// but *priced* as the recursive-doubling sparse all-reduce the paper
/// describes: `ceil(log2 n)` rounds, each carrying the union of dirty
/// updates.
pub struct ReplicaSync {
    sets: Vec<std::sync::Arc<ReplicaSet>>,
    topology: Topology,
    cost: CostModel,
    value_len: usize,
    /// Per-node deployments: this process hosts exactly one node, sibling
    /// replica sets live in other OS processes, and synchronization means
    /// broadcasting the drained deltas over the fabric.
    distributed: Option<DistributedSync>,
}

struct DistributedSync {
    node: NodeId,
    fabric: std::sync::Arc<dyn Fabric>,
}

impl ReplicaSync {
    pub fn new(
        sets: Vec<std::sync::Arc<ReplicaSet>>,
        topology: Topology,
        cost: CostModel,
        value_len: usize,
    ) -> ReplicaSync {
        assert_eq!(sets.len(), topology.n_nodes as usize);
        ReplicaSync { sets, topology, cost, value_len, distributed: None }
    }

    /// Build the synchronizer for a per-node deployment: only `node`'s own
    /// replica set lives in this process. [`ReplicaSync::sync_once`] then
    /// drains the local accumulation buffers and broadcasts them as
    /// [`Msg::ReplicaDeltas`] to every peer's server, which folds them in
    /// on receipt ([`ReplicaSet::apply_foreign`]). There is no cluster
    /// rendezvous — the exchange is asynchronous and never blocks on a
    /// peer — and it is exact: every delta is applied exactly once on
    /// every node, and integer-valued deltas sum to the same bits in any
    /// order.
    pub fn distributed(
        own: std::sync::Arc<ReplicaSet>,
        topology: Topology,
        node: NodeId,
        cost: CostModel,
        value_len: usize,
        fabric: std::sync::Arc<dyn Fabric>,
    ) -> ReplicaSync {
        ReplicaSync {
            sets: vec![own],
            topology,
            cost,
            value_len,
            distributed: Some(DistributedSync { node, fabric }),
        }
    }

    /// Broadcast this node's drained deltas to every peer (distributed
    /// mode). Byte/message accounting happens in the fabric like any other
    /// send; the sync counters mirror what the in-process merge records.
    ///
    /// Deltas are grouped by the replication era their slot carried at
    /// drain time (one [`Msg::ReplicaDeltas`] per era; normally a single
    /// group), so receivers can tell exactly which tenancy each delta
    /// belongs to however many migrations race the broadcast in flight.
    fn sync_once_distributed(&self, d: &DistributedSync, metrics: &ClusterMetrics) -> SimDuration {
        let drained = self.sets[0].drain_keyed();
        if drained.is_empty() {
            return SimDuration::ZERO;
        }
        let mut by_era: Vec<(u64, Vec<KeyUpdate>)> = Vec::new();
        for (era, key, delta) in drained {
            match by_era.iter_mut().find(|(e, _)| *e == era) {
                Some((_, batch)) => batch.push(KeyUpdate { key, delta }),
                None => by_era.push((era, vec![KeyUpdate { key, delta }])),
            }
        }
        let src = Addr { node: d.node, port: self.topology.sync_port() };
        let mut bytes = 0u64;
        for (epoch, updates) in by_era {
            let payload = Msg::ReplicaDeltas { from: d.node, epoch, updates }.to_bytes();
            for peer in self.topology.nodes().filter(|p| *p != d.node) {
                d.fabric.post(Frame {
                    src,
                    dst: Addr::server(peer),
                    sent_at: SimTime::ZERO,
                    payload: payload.clone(),
                });
                bytes += payload.len() as u64;
            }
        }
        let m = metrics.node(d.node);
        m.inc(|m| &m.sync_rounds);
        m.add(|m| &m.sync_bytes, bytes);
        // Real execution: the duration of the exchange is whatever the
        // wall clock observes, not a modelled figure.
        SimDuration::ZERO
    }

    /// Run one synchronization: exchange all accumulated deltas so that
    /// every replica has absorbed every node's updates. Returns the modelled
    /// duration of the round (zero when nothing was dirty).
    pub fn sync_once(&self, metrics: &ClusterMetrics) -> SimDuration {
        if let Some(d) = &self.distributed {
            return self.sync_once_distributed(d, metrics);
        }
        let n = self.sets.len();
        if n <= 1 {
            // Single node: drain buffers (they were already applied
            // locally) so they do not grow without bound.
            if n == 1 {
                let _ = self.sets[0].drain();
            }
            return SimDuration::ZERO;
        }

        // Drain every node's dirty deltas.
        let per_node: Vec<Vec<(u32, Vec<f32>)>> = self.sets.iter().map(|s| s.drain()).collect();

        // Union of dirty slots and per-slot totals.
        let mut totals: rustc_hash::FxHashMap<u32, Vec<f32>> = rustc_hash::FxHashMap::default();
        for deltas in &per_node {
            for (slot, d) in deltas {
                match totals.get_mut(slot) {
                    Some(t) => add_assign(t, d),
                    None => {
                        totals.insert(*slot, d.clone());
                    }
                }
            }
        }
        if totals.is_empty() {
            return SimDuration::ZERO;
        }

        // Apply `total - own` to each node (its own delta is already in its
        // replica value).
        for (node_idx, set) in self.sets.iter().enumerate() {
            let own: rustc_hash::FxHashMap<u32, &Vec<f32>> =
                per_node[node_idx].iter().map(|(s, d)| (*s, d)).collect();
            for (slot, total) in &totals {
                match own.get(slot) {
                    Some(own_d) => {
                        let mut foreign = total.clone();
                        for (f, o) in foreign.iter_mut().zip(own_d.iter()) {
                            *f -= o;
                        }
                        set.apply_foreign_slot(*slot, &foreign);
                    }
                    None => set.apply_foreign_slot(*slot, total),
                }
            }
        }

        // Price the exchange: recursive doubling, each round carrying the
        // union of dirty updates (slot id + delta vector per entry).
        let rounds = self.topology.sync_rounds();
        let bytes_per_round = totals.len() * (4 + 4 * self.value_len);
        let duration = self.cost.allreduce(rounds, bytes_per_round);
        for node in self.topology.nodes() {
            let m = metrics.node(node);
            m.inc(|m| &m.sync_rounds);
            m.add(|m| &m.sync_bytes, (rounds as usize * bytes_per_round) as u64);
        }
        duration
    }

    pub fn sets(&self) -> &[std::sync::Arc<ReplicaSet>] {
        &self.sets
    }

    /// Install `value` as `key`'s replica in `slot` on every node (key
    /// promotion). Not priced here — the adaptive manager prices the
    /// promote broadcast. In a per-node deployment `sets` holds only this
    /// process's node, which is the whole cluster exactly when `n_nodes ==
    /// 1` (larger clusters promote via the leader-plan protocol instead).
    pub fn install_slot(&self, slot: u32, key: Key, value: &[f32]) {
        // Hard assert: in release builds a rendezvous-path install in a
        // multi-node per-node deployment would silently desync slot state
        // across processes, and the call is cold.
        assert!(
            self.distributed.is_none() || self.topology.n_nodes == 1,
            "multi-node per-node deployments migrate via AdaptPlan, not the rendezvous path"
        );
        for set in &self.sets {
            // The rendezvous path never races a sync broadcast (workers
            // and migrations are gated together), so eras stay at 0.
            set.install_slot(slot, key, value.to_vec(), 0);
        }
    }

    /// Collapse `slot` into the single authoritative value for demotion:
    /// the synced common state plus *every* node's unsynced local deltas
    /// (exactly the result a final all-reduce of the slot would produce).
    /// Clears the slot on every node afterwards. Callers normally run this
    /// right after [`ReplicaSync::sync_once`], where all buffers are empty
    /// — the accumulation makes the collapse exact even if a late-chasing
    /// server operation snuck a delta in between.
    pub fn collapse_slot(&self, slot: u32) -> Vec<f32> {
        assert!(
            self.distributed.is_none() || self.topology.n_nodes == 1,
            "multi-node per-node deployments migrate via AdaptPlan, not the rendezvous path"
        );
        let (mut value, own_accum) = self.sets[0].value_and_accum(slot);
        // set 0's value already contains its own accum; add the others'.
        for set in &self.sets[1..] {
            let (_, accum) = set.value_and_accum(slot);
            add_assign(&mut value, &accum);
        }
        let _ = own_accum; // value_0 = common + accum_0, already included
        for set in &self.sets {
            set.clear_slot(slot);
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // Slot `i` is occupied by key `i`, as `ReplicaSet::new` numbers them.
    fn make_sets(n_nodes: usize, n_slots: usize, len: usize) -> Vec<Arc<ReplicaSet>> {
        let init: Vec<(Key, Vec<f32>)> = (0..n_slots).map(|i| (i as Key, vec![0.0; len])).collect();
        (0..n_nodes).map(|_| Arc::new(ReplicaSet::new(&init, ClipPolicy::None))).collect()
    }

    fn push(set: &ReplicaSet, slot: u32, delta: &[f32]) {
        assert!(set.push(slot, slot as Key, delta), "tenancy of slot {slot} changed unexpectedly");
    }

    #[test]
    fn local_push_visible_immediately() {
        let sets = make_sets(2, 1, 2);
        push(&sets[0], 0, &[1.0, 2.0]);
        let mut out = vec![0.0; 2];
        assert!(sets[0].pull(0, 0, &mut out));
        assert_eq!(out, vec![1.0, 2.0]);
        // Other node has not seen it yet (stale until sync).
        assert!(sets[1].pull(0, 0, &mut out));
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn keyed_access_fails_on_tenancy_mismatch() {
        let set = ReplicaSet::new(&[(7, vec![1.0])], ClipPolicy::None);
        let mut out = vec![0.0];
        assert!(set.pull(0, 7, &mut out));
        assert!(!set.pull(0, 8, &mut out), "wrong key must not read the slot");
        assert!(!set.push(0, 8, &[5.0]));
        assert!(!set.apply_foreign(0, 8, 0, &[5.0]));
        assert_eq!(set.get(0), vec![1.0], "failed accesses must not mutate");
        // After a seal the old tenant's accesses fail too.
        assert_eq!(set.seal_slot(0, 7), Some((vec![1.0], vec![0.0])));
        assert!(!set.pull(0, 7, &mut out));
        assert_eq!(set.seal_slot(0, 7), None, "double seal is a clean miss");
    }

    #[test]
    fn seal_slot_captures_value_and_accum() {
        let set = ReplicaSet::new(&[(3, vec![2.0, 2.0])], ClipPolicy::None);
        assert!(set.push(0, 3, &[1.0, 0.5]));
        let (value, accum) = set.seal_slot(0, 3).unwrap();
        assert_eq!(value, vec![3.0, 2.5]);
        assert_eq!(accum, vec![1.0, 0.5]);
        // Sealed slots drain nothing and accept a new tenant cleanly.
        assert!(set.drain_keyed().is_empty());
        set.install_slot(0, 9, vec![7.0, 7.0], 0);
        assert!(set.push(0, 9, &[1.0, 1.0]));
        assert_eq!(set.drain_keyed(), vec![(0, 9, vec![1.0, 1.0])]);
    }

    #[test]
    fn install_slot_grows_with_holes() {
        let set = ReplicaSet::new(&[(0, vec![1.0])], ClipPolicy::None);
        set.install_slot(3, 42, vec![5.0], 0);
        assert_eq!(set.n_slots(), 4);
        assert_eq!(set.get(3), vec![5.0]);
        let mut out = vec![0.0];
        assert!(!set.pull(1, 1, &mut out), "hole slots have no tenant");
        assert!(set.pull(3, 42, &mut out));
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn drain_keyed_reports_tenant_keys_and_eras() {
        let init: Vec<(Key, Vec<f32>)> = vec![(10, vec![0.0]), (20, vec![0.0])];
        let set = ReplicaSet::new(&init, ClipPolicy::None);
        assert!(set.push(1, 20, &[2.0]));
        assert_eq!(set.drain_keyed(), vec![(0, 20, vec![2.0])]);
        assert!(set.drain_keyed().is_empty(), "drain resets dirtiness");
        // A re-installed tenancy drains under the installing plan's era.
        set.install_slot(0, 10, vec![0.0], 7);
        assert!(set.push(0, 10, &[3.0]));
        assert_eq!(set.drain_keyed(), vec![(7, 10, vec![3.0])]);
    }

    #[test]
    fn apply_foreign_rejects_stale_and_future_eras() {
        let set = ReplicaSet::new(&[(5, vec![1.0])], ClipPolicy::None);
        assert!(set.apply_foreign(0, 5, 0, &[1.0]), "matching era applies");
        assert_eq!(set.get(0), vec![2.0]);
        // Re-promotion by plan 3: the same key, a fresh era.
        set.install_slot(0, 5, vec![9.0], 3);
        assert!(!set.apply_foreign(0, 5, 0, &[1.0]), "stale-era delta must be rejected");
        assert!(!set.apply_foreign(0, 5, 4, &[1.0]), "future-era delta must be rejected");
        assert_eq!(set.get(0), vec![9.0], "rejected deltas must not mutate");
        assert!(set.apply_foreign(0, 5, 3, &[1.0]));
        assert_eq!(set.get(0), vec![10.0]);
    }

    #[test]
    fn sync_converges_all_replicas_to_sum_of_deltas() {
        let topo = Topology::new(4, 1);
        let sets = make_sets(4, 3, 2);
        let sync = ReplicaSync::new(sets.clone(), topo, CostModel::zero(), 2);
        let metrics = ClusterMetrics::new(4);

        // Each node pushes a distinct delta to slot 0; node 2 also to slot 2.
        for (i, s) in sets.iter().enumerate() {
            push(s, 0, &[i as f32 + 1.0, 0.0]);
        }
        push(&sets[2], 2, &[0.5, 0.5]);

        let d = sync.sync_once(&metrics);
        assert_eq!(d, SimDuration::ZERO, "zero cost model");

        // slot 0 must equal 1+2+3+4 = 10 on every node.
        for s in &sets {
            assert_eq!(s.get(0), vec![10.0, 0.0]);
            assert_eq!(s.get(2), vec![0.5, 0.5]);
            assert_eq!(s.get(1), vec![0.0, 0.0]);
        }
        // Second sync with no new updates is free and changes nothing.
        assert_eq!(sync.sync_once(&metrics), SimDuration::ZERO);
        assert_eq!(sets[0].get(0), vec![10.0, 0.0]);
    }

    #[test]
    fn repeated_pushes_between_syncs_accumulate_once() {
        let topo = Topology::new(2, 1);
        let sets = make_sets(2, 1, 1);
        let sync = ReplicaSync::new(sets.clone(), topo, CostModel::zero(), 1);
        let metrics = ClusterMetrics::new(2);
        for _ in 0..10 {
            push(&sets[0], 0, &[1.0]);
            push(&sets[1], 0, &[2.0]);
        }
        sync.sync_once(&metrics);
        for s in &sets {
            assert_eq!(s.get(0), vec![30.0]);
        }
        // Deltas must not be double-applied by a further sync.
        sync.sync_once(&metrics);
        for s in &sets {
            assert_eq!(s.get(0), vec![30.0]);
        }
    }

    #[test]
    fn sync_exact_under_odd_node_counts() {
        // Recursive-doubling pricing rounds up to the next power of two,
        // but the merge itself must stay exact for any cluster size —
        // including odd ones where some nodes idle in some rounds.
        for n_nodes in [3usize, 5, 7] {
            let topo = Topology::new(n_nodes as u16, 1);
            let sets = make_sets(n_nodes, 2, 3);
            let sync = ReplicaSync::new(sets.clone(), topo, CostModel::zero(), 3);
            let metrics = ClusterMetrics::new(n_nodes);
            // Every node contributes a distinct delta to slot 0; only the
            // last node touches slot 1.
            for (i, s) in sets.iter().enumerate() {
                push(s, 0, &[(i + 1) as f32, 0.0, 1.0]);
            }
            push(&sets[n_nodes - 1], 1, &[0.0, 2.0, 0.0]);
            sync.sync_once(&metrics);
            let total: f32 = (1..=n_nodes).map(|i| i as f32).sum();
            for (i, s) in sets.iter().enumerate() {
                assert_eq!(s.get(0), vec![total, 0.0, n_nodes as f32], "slot 0 on node {i}");
                assert_eq!(s.get(1), vec![0.0, 2.0, 0.0], "slot 1 on node {i}");
            }
            // A second sync must be a no-op (no deltas double-applied).
            sync.sync_once(&metrics);
            assert_eq!(sets[0].get(0), vec![total, 0.0, n_nodes as f32]);
        }
    }

    #[test]
    fn install_and_collapse_slot_roundtrip() {
        let topo = Topology::new(3, 1);
        let sets = make_sets(3, 1, 2);
        let sync = ReplicaSync::new(sets.clone(), topo, CostModel::zero(), 2);
        let metrics = ClusterMetrics::new(3);
        // Promote installs a fresh slot 1 on every node.
        sync.install_slot(1, 1, &[4.0, 4.0]);
        for s in &sets {
            assert_eq!(s.get(1), vec![4.0, 4.0]);
        }
        // Pushes on two nodes, one synced, one straggling after the sync.
        push(&sets[0], 1, &[1.0, 0.0]);
        push(&sets[2], 1, &[0.0, 1.0]);
        sync.sync_once(&metrics);
        push(&sets[1], 1, &[0.5, 0.5]); // straggler between sync and collapse
        let v = sync.collapse_slot(1);
        assert_eq!(v, vec![5.5, 5.5], "collapse must fold unsynced stragglers in");
        // Slot cleared everywhere; reuse by a later promotion starts clean.
        for s in &sets {
            assert_eq!(s.get(1), vec![0.0, 0.0]);
        }
        assert_eq!(sync.sync_once(&metrics), SimDuration::ZERO, "no dirty state left behind");
    }

    #[test]
    fn install_slot_grows_by_one() {
        let set = ReplicaSet::new(&[(0, vec![1.0])], ClipPolicy::None);
        assert_eq!(set.n_slots(), 1);
        set.install_slot(1, 1, vec![2.0], 0);
        assert_eq!(set.n_slots(), 2);
        assert_eq!(set.get(1), vec![2.0]);
        // Reinstall over an existing slot resets value and buffer.
        push(&set, 1, &[5.0]);
        set.install_slot(1, 1, vec![9.0], 0);
        assert_eq!(set.get(1), vec![9.0]);
        assert!(set.drain().is_empty(), "install clears the dirty buffer");
    }

    #[test]
    fn sync_prices_rounds_and_counts_bytes() {
        let topo = Topology::new(4, 1);
        let sets = make_sets(4, 8, 10);
        let cost = CostModel::cluster_default();
        let sync = ReplicaSync::new(sets.clone(), topo, cost, 10);
        let metrics = ClusterMetrics::new(4);
        push(&sets[0], 3, &[1.0; 10]);
        let d = sync.sync_once(&metrics);
        // One dirty slot: 4 + 40 bytes per round, 2 rounds.
        let expect = cost.allreduce(2, 44);
        assert_eq!(d, expect);
        let t = metrics.total();
        assert_eq!(t.sync_rounds, 4); // one per node
        assert_eq!(t.sync_bytes, 4 * 2 * 44);
    }

    #[test]
    fn clipping_limits_outlier_updates_on_replicas() {
        let init = vec![(0, vec![0.0; 4])];
        let set = ReplicaSet::new(&init, ClipPolicy::AverageNorm { factor: 2.0 });
        for _ in 0..100 {
            push(&set, 0, &[0.1, 0.0, 0.0, 0.0]);
        }
        let before = set.get(0)[0];
        push(&set, 0, &[1000.0, 0.0, 0.0, 0.0]); // exploding gradient
        let after = set.get(0)[0];
        assert!(after - before < 1.0, "outlier push not clipped: {}", after - before);
    }

    #[test]
    fn single_node_sync_is_free_and_drains() {
        let topo = Topology::new(1, 1);
        let sets = make_sets(1, 1, 1);
        let sync = ReplicaSync::new(sets.clone(), topo, CostModel::cluster_default(), 1);
        let metrics = ClusterMetrics::new(1);
        push(&sets[0], 0, &[5.0]);
        assert_eq!(sync.sync_once(&metrics), SimDuration::ZERO);
        assert_eq!(sets[0].get(0), vec![5.0]);
        assert_eq!(metrics.total().sync_bytes, 0);
    }
}
