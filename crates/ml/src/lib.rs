//! # nups-ml — the paper's ML tasks on the PsWorker API
//!
//! The three training tasks of the NuPS evaluation (Table 2), written
//! against [`nups_core::api::PsWorker`] so the identical task code runs on
//! every system variant the paper compares (single node, Classic, SSP,
//! ESSP, Lapse, NuPS):
//!
//! * [`kge`] — ComplEx knowledge-graph embeddings with AdaGrad and uniform
//!   negative sampling; quality = filtered MRR.
//! * [`word2vec`] — skip-gram word vectors with unigram^0.75 negative
//!   sampling and frequent-word subsampling; quality = planted-topic
//!   coherence.
//! * [`mf`] — matrix factorization with L2 regularization and the
//!   bold-driver learning-rate heuristic; quality = test RMSE.
//!
//! Supporting modules: [`complex`] (the ComplEx model), [`optimizer`]
//! (SGD / inline-state AdaGrad / bold driver), [`eval`], [`util`]
//! (deterministic key-addressed initialization), and [`task`] (the
//! `TrainTask` abstraction the experiment harness drives).

pub mod complex;
pub mod eval;
pub mod kge;
pub mod mf;
pub mod optimizer;
pub mod task;
pub mod util;
pub mod word2vec;

pub use kge::{KgeConfig, KgeTask};
pub use mf::{MfConfig, MfTask};
pub use optimizer::{BoldDriver, Optimizer};
pub use task::{DistSpec, QualityDirection, TrainTask};
pub use word2vec::{W2vConfig, W2vTask};
