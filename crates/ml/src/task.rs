//! The task abstraction: one interface for all three of the paper's ML
//! tasks, so every experiment can run any task on any system variant.

use nups_core::api::PsWorker;
use nups_core::key::Key;
use nups_core::sampling::{ConformityLevel, DistributionKind};

/// A sampling distribution a task wants registered with the PS before
/// training (Section 4.3's `register_distribution`).
pub struct DistSpec {
    pub base_key: Key,
    pub n: u64,
    pub kind: DistributionKind,
    pub level: ConformityLevel,
}

/// Whether larger or smaller quality values are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QualityDirection {
    HigherIsBetter,
    LowerIsBetter,
}

impl QualityDirection {
    /// The "90% of best" threshold used for effective speedups
    /// (Section 5.1's *Measures*): for higher-is-better metrics this is
    /// `0.9 × best`; for lower-is-better, reaching within ~11% above best.
    pub fn effective_threshold(self, best: f64) -> f64 {
        match self {
            QualityDirection::HigherIsBetter => 0.9 * best,
            QualityDirection::LowerIsBetter => best / 0.9,
        }
    }

    /// True if `quality` meets `threshold` under this direction.
    pub fn meets(self, quality: f64, threshold: f64) -> bool {
        match self {
            QualityDirection::HigherIsBetter => quality >= threshold,
            QualityDirection::LowerIsBetter => quality <= threshold,
        }
    }

    /// True if `a` is at least as good as `b`.
    pub fn at_least_as_good(self, a: f64, b: f64) -> bool {
        self.meets(a, b)
    }
}

/// One of the paper's training tasks, pre-partitioned for a fixed number
/// of workers.
pub trait TrainTask: Send + Sync {
    fn name(&self) -> &'static str;

    /// Key universe the task needs.
    fn n_keys(&self) -> u64;

    /// Parameter value length (weights plus any inline optimizer state).
    fn value_len(&self) -> usize;

    /// Deterministic initial value of `key`.
    fn init_value(&self, key: Key, out: &mut [f32]);

    /// Sampling distributions to register, in `DistId` order.
    fn distributions(&self) -> Vec<DistSpec>;

    /// Number of data partitions (= workers) this task was built for.
    fn n_partitions(&self) -> usize;

    /// Run one epoch of partition `part` against `worker`. Returns the
    /// summed training loss over the partition (for bold-driver style
    /// schedules and sanity checks).
    fn run_epoch(&self, worker: &mut dyn PsWorker, part: usize, epoch: usize) -> f64;

    /// Evaluate model quality from a full value snapshot (index = key).
    fn evaluate(&self, model: &[Vec<f32>]) -> f64;

    fn quality_direction(&self) -> QualityDirection;

    /// Direct-access frequency per key (input to the technique heuristic;
    /// computed from dataset statistics, as in Section 5.1).
    fn direct_frequencies(&self) -> Vec<u64>;

    /// Hook called after every epoch with the cluster-wide training loss
    /// (bold driver for MF; default no-op).
    fn end_of_epoch(&self, _epoch: usize, _total_loss: f64) {}

    /// Gradient clipping for replicated keys. The paper clips in the WV
    /// and MF tasks; KGE relies on AdaGrad instead (Section 5.1).
    fn clip_policy(&self) -> nups_core::value::ClipPolicy {
        nups_core::value::ClipPolicy::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_by_direction() {
        let h = QualityDirection::HigherIsBetter;
        assert!((h.effective_threshold(0.2) - 0.18).abs() < 1e-12);
        assert!(h.meets(0.19, 0.18));
        assert!(!h.meets(0.17, 0.18));

        let l = QualityDirection::LowerIsBetter;
        let t = l.effective_threshold(0.9);
        assert!(t > 0.9 && t < 1.01);
        assert!(l.meets(0.95, t));
        assert!(!l.meets(1.05, t));
    }
}
