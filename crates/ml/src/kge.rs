//! The knowledge-graph-embeddings task (paper Section 5.1, Table 2 row 1).
//!
//! Trains ComplEx with AdaGrad and negative sampling: for every positive
//! triple, `n_neg` negatives perturb the subject and `n_neg` perturb the
//! object, drawn uniformly over all entities via the PS sampling API.
//! AdaGrad accumulators live inside the parameter values (layout
//! `[emb; 2dc | acc; 2dc]`). Quality is filtered MRR on held-out triples.
//!
//! Key layout: entity `e` → key `e`; relation `r` → key `n_entities + r`.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;
use std::sync::Arc;

use nups_core::api::PsWorker;
use nups_core::key::Key;
use nups_core::sampling::{ConformityLevel, DistId, DistributionKind};
use nups_workloads::kg::{KnowledgeGraph, Triple};
use nups_workloads::partition::partition_random;

use crate::complex::{
    add_score_gradients, embedding_len, flops_per_scored_triple, logistic_loss, score, sigmoid,
};
use crate::optimizer::Optimizer;
use crate::task::{DistSpec, QualityDirection, TrainTask};
use crate::util::init_embedding;

/// KGE task configuration.
#[derive(Debug, Clone)]
pub struct KgeConfig {
    /// Complex dimension (the paper uses 250 complex = 500 real floats).
    pub dc: usize,
    /// Negatives per side per triple (paper: 100).
    pub n_neg: usize,
    /// AdaGrad learning rate.
    pub lr: f32,
    pub init_scale: f32,
    /// Localize-ahead window, in triples.
    pub prefetch: usize,
    /// Conformity level requested for negative sampling.
    pub level: ConformityLevel,
    /// Cap on test triples scored per evaluation (full entity ranking is
    /// O(test × entities)).
    pub eval_triples: usize,
    pub seed: u64,
}

impl Default for KgeConfig {
    fn default() -> KgeConfig {
        KgeConfig {
            dc: 8,
            n_neg: 4,
            lr: 0.1,
            init_scale: 0.2,
            prefetch: 32,
            level: ConformityLevel::Bounded,
            eval_triples: 500,
            seed: 23,
        }
    }
}

/// The task, pre-partitioned over workers (triples partitioned randomly,
/// as in the paper).
pub struct KgeTask {
    kg: Arc<KnowledgeGraph>,
    cfg: KgeConfig,
    opt: Optimizer,
    partitions: Vec<Vec<Triple>>,
    /// All known (s, r, o) for filtered ranking.
    filter: FxHashSet<(u32, u32, u32)>,
    /// Per-partition epoch losses are summed under this (cheap; once per
    /// epoch per worker).
    epoch_loss: Mutex<f64>,
}

impl KgeTask {
    pub fn new(kg: Arc<KnowledgeGraph>, cfg: KgeConfig, n_partitions: usize) -> KgeTask {
        let partitions = partition_random(&kg.train, n_partitions, cfg.seed ^ 0xA11CE);
        let filter: FxHashSet<(u32, u32, u32)> =
            kg.train.iter().chain(kg.test.iter()).map(|t| (t.s, t.r, t.o)).collect();
        let opt = Optimizer::AdaGrad { lr: cfg.lr, eps: 1e-8 };
        KgeTask { kg, cfg, opt, partitions, filter, epoch_loss: Mutex::new(0.0) }
    }

    #[inline]
    fn n_entities(&self) -> u64 {
        self.kg.config.n_entities as u64
    }

    #[inline]
    fn relation_key(&self, r: u32) -> Key {
        self.n_entities() + r as Key
    }

    fn emb_len(&self) -> usize {
        embedding_len(self.cfg.dc)
    }

    fn triple_keys(&self, t: &Triple) -> [Key; 3] {
        [t.s as Key, self.relation_key(t.r), t.o as Key]
    }

    /// Score a triple from a model snapshot.
    fn snapshot_score(&self, model: &[Vec<f32>], s: u32, r: u32, o: u32) -> f32 {
        let e = self.emb_len();
        score(
            &model[s as usize][..e],
            &model[self.relation_key(r) as usize][..e],
            &model[o as usize][..e],
        )
    }
}

impl TrainTask for KgeTask {
    fn name(&self) -> &'static str {
        "kge"
    }

    fn n_keys(&self) -> u64 {
        self.n_entities() + self.kg.config.n_relations as u64
    }

    fn value_len(&self) -> usize {
        self.opt.value_len(self.emb_len())
    }

    fn init_value(&self, key: Key, out: &mut [f32]) {
        init_embedding(key, self.cfg.seed, self.emb_len(), self.cfg.init_scale, out);
    }

    fn distributions(&self) -> Vec<DistSpec> {
        // Negative sampling draws uniformly over all entities (Section 2.2).
        vec![DistSpec {
            base_key: 0,
            n: self.n_entities(),
            kind: DistributionKind::Uniform,
            level: self.cfg.level,
        }]
    }

    fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn run_epoch(&self, worker: &mut dyn PsWorker, part: usize, epoch: usize) -> f64 {
        let triples = &self.partitions[part];
        let dc = self.cfg.dc;
        let emb = self.emb_len();
        let vl = self.value_len();
        let n_neg = self.cfg.n_neg;
        let dist = DistId(0);
        let mut rng =
            SmallRng::seed_from_u64(self.cfg.seed ^ (part as u64) ^ ((epoch as u64) << 32));

        // Visit order reshuffles every epoch.
        let mut order: Vec<u32> = (0..triples.len() as u32).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }

        // Scratch buffers reused across the epoch (hot loop: no allocs).
        // Subject, relation and object travel together through the batched
        // API; all of a triple's pushes coalesce into one multi-key update.
        let mut sro = vec![0.0f32; 3 * vl];
        let mut gs = vec![0.0f32; emb];
        let mut gr = vec![0.0f32; emb];
        let mut go = vec![0.0f32; emb];
        let mut gneg = vec![0.0f32; emb];
        let mut delta = vec![0.0f32; vl];
        let mut push_keys: Vec<Key> = Vec::with_capacity(2 * n_neg + 3);
        let mut push_deltas: Vec<f32> = Vec::with_capacity((2 * n_neg + 3) * vl);
        let mut loss = 0.0f64;

        // Prefetch the head of the visit order.
        for &oi in order.iter().take(self.cfg.prefetch) {
            worker.localize(&self.triple_keys(&triples[oi as usize]));
        }

        for (pos, &oi) in order.iter().enumerate() {
            let t = &triples[oi as usize];
            if let Some(&ahead) = order.get(pos + self.cfg.prefetch) {
                worker.localize(&self.triple_keys(&triples[ahead as usize]));
            }
            // PrepareSample for both perturbation sides; pulled in two
            // partial pulls, which gives the postponing scheme room to
            // reorder (Section 4.3).
            let mut handle = worker.prepare_sample(dist, 2 * n_neg);

            let triple_keys = self.triple_keys(t);
            let [sk, rk, ok] = triple_keys;
            worker.pull_many(&triple_keys, &mut sro);
            let (s_val, ro) = sro.split_at(vl);
            let (r_val, o_val) = ro.split_at(vl);

            gs.fill(0.0);
            gr.fill(0.0);
            go.fill(0.0);
            push_keys.clear();
            push_deltas.clear();

            // Positive triple, label 1.
            let sc = score(&s_val[..emb], &r_val[..emb], &o_val[..emb]);
            loss += logistic_loss(sc, 1.0) as f64;
            let g = sigmoid(sc) - 1.0;
            add_score_gradients(
                &s_val[..emb],
                &r_val[..emb],
                &o_val[..emb],
                g,
                &mut gs,
                &mut gr,
                &mut go,
            );

            // Object perturbations: (s, r, n), label 0.
            for (nk, nv) in worker.pull_sample(&mut handle, n_neg) {
                let sc = score(&s_val[..emb], &r_val[..emb], &nv[..emb]);
                loss += logistic_loss(sc, 0.0) as f64;
                let g = sigmoid(sc);
                gneg.fill(0.0);
                add_score_gradients(
                    &s_val[..emb],
                    &r_val[..emb],
                    &nv[..emb],
                    g,
                    &mut gs,
                    &mut gr,
                    &mut gneg,
                );
                delta.fill(0.0);
                self.opt.delta(&nv, &gneg, &mut delta);
                push_keys.push(nk);
                push_deltas.extend_from_slice(&delta);
            }
            // Subject perturbations: (n, r, o), label 0.
            for (nk, nv) in worker.pull_sample(&mut handle, n_neg) {
                let sc = score(&nv[..emb], &r_val[..emb], &o_val[..emb]);
                loss += logistic_loss(sc, 0.0) as f64;
                let g = sigmoid(sc);
                gneg.fill(0.0);
                add_score_gradients(
                    &nv[..emb],
                    &r_val[..emb],
                    &o_val[..emb],
                    g,
                    &mut gneg,
                    &mut gr,
                    &mut go,
                );
                delta.fill(0.0);
                self.opt.delta(&nv, &gneg, &mut delta);
                push_keys.push(nk);
                push_deltas.extend_from_slice(&delta);
            }

            // The accumulated direct-access deltas join the same batch:
            // one multi-key push per triple.
            for (key, val, grad) in [(sk, s_val, &gs), (rk, r_val, &gr), (ok, o_val, &go)] {
                delta.fill(0.0);
                self.opt.delta(val, grad, &mut delta);
                push_keys.push(key);
                push_deltas.extend_from_slice(&delta);
            }
            worker.push_many(&push_keys, &push_deltas);

            worker.charge_compute(
                (1 + 2 * n_neg as u64) * flops_per_scored_triple(dc)
                    + (3 + 2 * n_neg as u64) * 8 * dc as u64,
            );
            worker.advance_clock();
        }

        *self.epoch_loss.lock() += loss;
        loss
    }

    fn evaluate(&self, model: &[Vec<f32>]) -> f64 {
        // Filtered MRR over both subject and object ranking, as standard.
        let n_e = self.kg.config.n_entities as u32;
        let mut rr_sum = 0.0f64;
        let mut n_ranked = 0u64;
        for t in self.kg.test.iter().take(self.cfg.eval_triples) {
            let true_score = self.snapshot_score(model, t.s, t.r, t.o);
            // Object side.
            let mut rank = 1u64;
            for e in 0..n_e {
                if e != t.o
                    && !self.filter.contains(&(t.s, t.r, e))
                    && self.snapshot_score(model, t.s, t.r, e) > true_score
                {
                    rank += 1;
                }
            }
            rr_sum += 1.0 / rank as f64;
            n_ranked += 1;
            // Subject side.
            let mut rank = 1u64;
            for e in 0..n_e {
                if e != t.s
                    && !self.filter.contains(&(e, t.r, t.o))
                    && self.snapshot_score(model, e, t.r, t.o) > true_score
                {
                    rank += 1;
                }
            }
            rr_sum += 1.0 / rank as f64;
            n_ranked += 1;
        }
        if n_ranked == 0 {
            return 0.0;
        }
        rr_sum / n_ranked as f64
    }

    fn quality_direction(&self) -> QualityDirection {
        QualityDirection::HigherIsBetter
    }

    fn direct_frequencies(&self) -> Vec<u64> {
        let mut f = self.kg.entity_frequencies();
        f.extend(self.kg.relation_frequencies());
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nups_core::config::NupsConfig;
    use nups_core::system::{run_epoch, ParameterServer};
    use nups_sim::cost::CostModel;
    use nups_workloads::kg::KgConfig;

    fn tiny_task(n_parts: usize) -> KgeTask {
        let kg = Arc::new(KnowledgeGraph::generate(KgConfig {
            n_entities: 200,
            n_relations: 4,
            n_train: 3000,
            n_test: 100,
            n_clusters: 4,
            popularity_alpha: 0.8,
            noise: 0.05,
            seed: 5,
        }));
        KgeTask::new(
            kg,
            KgeConfig { dc: 4, n_neg: 2, eval_triples: 50, ..KgeConfig::default() },
            n_parts,
        )
    }

    #[test]
    fn partitions_cover_training_data() {
        let task = tiny_task(4);
        let total: usize = task.partitions.iter().map(|p| p.len()).sum();
        assert_eq!(total, 3000);
        assert_eq!(task.n_partitions(), 4);
        assert_eq!(task.n_keys(), 204);
        assert_eq!(task.value_len(), 4 * 4); // 2dc emb + 2dc adagrad
    }

    #[test]
    fn single_node_training_improves_mrr() {
        let task = tiny_task(2);
        let cfg = NupsConfig::single_node(2, task.n_keys(), task.value_len())
            .with_cost(CostModel::zero());
        let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));
        for d in task.distributions() {
            ps.register_distribution(d.base_key, d.n, d.kind, d.level);
        }
        let mut workers = ps.workers();
        let before = task.evaluate(&ps.read_all());
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for epoch in 0..4 {
            run_epoch(&mut workers, |i, w| {
                task.run_epoch(w, i, epoch);
            });
            ps.flush_replicas();
            let loss = *task.epoch_loss.lock();
            *task.epoch_loss.lock() = 0.0;
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        let after = task.evaluate(&ps.read_all());
        assert!(after > before + 0.05, "MRR did not improve: {before:.4} → {after:.4}");
        assert!(last_loss < first_loss.unwrap(), "training loss did not fall");
        ps.shutdown();
    }
}
