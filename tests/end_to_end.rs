//! End-to-end training across system variants: every PS configuration the
//! paper compares must actually *learn* on every task — the whole point of
//! weakened consistency is that SGD still converges.

use std::sync::Arc;

use nups::core::system::run_epoch;
use nups::core::{NupsConfig, ParameterServer, SspConfig, SspProtocol, SspPs};
use nups::ml::kge::{KgeConfig, KgeTask};
use nups::ml::mf::{MfConfig, MfTask};
use nups::ml::task::TrainTask;
use nups::sim::cost::CostModel;
use nups::sim::topology::Topology;
use nups::workloads::kg::{KgConfig, KnowledgeGraph};
use nups::workloads::matrix::{MatrixConfig, MatrixData};

fn tiny_kge(workers: usize) -> KgeTask {
    let kg = Arc::new(KnowledgeGraph::generate(KgConfig {
        n_entities: 300,
        n_relations: 6,
        n_train: 5_000,
        n_test: 120,
        n_clusters: 6,
        popularity_alpha: 0.9,
        noise: 0.05,
        seed: 5,
    }));
    KgeTask::new(
        kg,
        KgeConfig { dc: 4, n_neg: 2, eval_triples: 60, ..KgeConfig::default() },
        workers,
    )
}

fn train_nups(task: &dyn TrainTask, cfg: NupsConfig, epochs: usize) -> (f64, f64) {
    let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));
    for d in task.distributions() {
        ps.register_distribution(d.base_key, d.n, d.kind, d.level);
    }
    let mut workers = ps.workers();
    let before = task.evaluate(&ps.read_all());
    for epoch in 0..epochs {
        run_epoch(&mut workers, |i, w| {
            task.run_epoch(w, i, epoch);
        });
    }
    drop(workers);
    ps.flush_replicas();
    let after = task.evaluate(&ps.read_all());
    ps.shutdown();
    (before, after)
}

#[test]
fn kge_learns_on_classic_ps() {
    let topo = Topology::new(2, 2);
    let task = tiny_kge(topo.total_workers());
    let cfg =
        NupsConfig::classic(topo, task.n_keys(), task.value_len()).with_cost(CostModel::zero());
    let (before, after) = train_nups(&task, cfg, 3);
    assert!(after > before + 0.03, "classic: MRR {before:.4} → {after:.4}");
}

#[test]
fn kge_learns_on_lapse() {
    let topo = Topology::new(2, 2);
    let task = tiny_kge(topo.total_workers());
    let cfg = NupsConfig::lapse(topo, task.n_keys(), task.value_len()).with_cost(CostModel::zero());
    let (before, after) = train_nups(&task, cfg, 3);
    assert!(after > before + 0.03, "lapse: MRR {before:.4} → {after:.4}");
}

#[test]
fn kge_learns_on_nups_with_replication() {
    let topo = Topology::new(2, 2);
    let task = tiny_kge(topo.total_workers());
    // Replicate the hottest keys explicitly (tiny datasets may not trip
    // the 100x heuristic).
    let replicated = nups::core::top_k_by_frequency(&task.direct_frequencies(), 20);
    let cfg = NupsConfig::nups(topo, task.n_keys(), task.value_len())
        .with_cost(CostModel::zero())
        .with_replicated_keys(replicated);
    let (before, after) = train_nups(&task, cfg, 3);
    assert!(after > before + 0.03, "nups: MRR {before:.4} → {after:.4}");
}

#[test]
fn kge_learns_on_ssp_and_essp() {
    for protocol in [SspProtocol::Ssp, SspProtocol::Essp] {
        let topo = Topology::new(2, 2);
        let task = tiny_kge(topo.total_workers());
        let cfg = SspConfig::new(topo, task.n_keys(), task.value_len(), protocol)
            .with_cost(CostModel::zero())
            .with_staleness(10);
        let ps = SspPs::new(cfg, |k, v| task.init_value(k, v));
        for d in task.distributions() {
            ps.register_distribution(d.base_key, d.n, d.kind, d.level);
        }
        let mut workers = ps.workers();
        let before = task.evaluate(&ps.read_all());
        for epoch in 0..3 {
            run_epoch(&mut workers, |i, w| {
                task.run_epoch(w, i, epoch);
            });
            // Let async flushes drain before the next epoch reads.
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        drop(workers);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let after = task.evaluate(&ps.read_all());
        ps.shutdown();
        assert!(after > before + 0.02, "{protocol:?}: MRR {before:.4} → {after:.4}");
    }
}

#[test]
fn mf_learns_on_distributed_nups() {
    let topo = Topology::new(2, 2);
    let data = Arc::new(MatrixData::generate(MatrixConfig {
        n_rows: 400,
        n_cols: 80,
        n_train: 20_000,
        n_test: 1_000,
        rank_gt: 4,
        zipf_alpha: 1.1,
        noise_std: 0.05,
        seed: 19,
    }));
    let task = MfTask::new(
        data,
        MfConfig { rank: 4, ..MfConfig::default() },
        topo.n_nodes,
        topo.workers_per_node,
    );
    let replicated = nups::core::top_k_by_frequency(&task.direct_frequencies(), 10);
    let cfg = NupsConfig::nups(topo, task.n_keys(), task.value_len())
        .with_cost(CostModel::zero())
        .with_replicated_keys(replicated)
        .with_clip(task.clip_policy());
    let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));
    let mut workers = ps.workers();
    let before = task.evaluate(&ps.read_all());
    for epoch in 0..10 {
        let loss = parking_lot::Mutex::new(0.0);
        run_epoch(&mut workers, |i, w| {
            *loss.lock() += task.run_epoch(w, i, epoch);
        });
        task.end_of_epoch(epoch, *loss.lock());
    }
    drop(workers);
    ps.flush_replicas();
    let after = task.evaluate(&ps.read_all());
    ps.shutdown();
    assert!(after < before * 0.75, "distributed MF: RMSE {before:.4} → {after:.4}");
}
