//! Property-based tests of the workload generators: partitioners preserve
//! data, samplers respect their weights, traces aggregate consistently.

use proptest::prelude::*;

use nups_workloads::partition::{
    column_visit_order, partition_by, partition_contiguous, partition_random,
};
use nups_workloads::trace::AccessTrace;
use nups_workloads::zipf::{zipf_weights, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Every partitioner is a permutation-preserving split: nothing lost,
    /// nothing duplicated.
    #[test]
    fn partitioners_preserve_multiset(
        items in proptest::collection::vec(0u32..1000, 0..500),
        parts in 1usize..9,
        seed in any::<u64>(),
    ) {
        for split in [
            partition_random(&items, parts, seed),
            partition_contiguous(&items, parts),
            partition_by(&items, parts, |&x| x as usize),
        ] {
            prop_assert_eq!(split.len(), parts);
            let mut merged: Vec<u32> = split.concat();
            merged.sort_unstable();
            let mut expect = items.clone();
            expect.sort_unstable();
            prop_assert_eq!(merged, expect);
        }
    }

    /// Column visiting preserves the multiset and keeps each column
    /// contiguous.
    #[test]
    fn column_visit_preserves_and_groups(
        cells in proptest::collection::vec((0u32..12, 0u32..1000), 0..300),
        seed in any::<u64>(),
    ) {
        let visit = column_visit_order(&cells, |&(c, _)| c, seed);
        let mut a = visit.clone();
        let mut b = cells.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        let mut seen = std::collections::HashSet::new();
        let mut current = None;
        for (c, _) in visit {
            if Some(c) != current {
                prop_assert!(seen.insert(c), "column {c} split into two runs");
                current = Some(c);
            }
        }
    }

    /// Zipf weights are positive, decreasing, and the sampler only emits
    /// valid outcomes with hotter outcomes at lower ranks (statistically).
    #[test]
    fn zipf_weights_decrease(n in 2usize..2000, alpha in 0.0f64..2.5) {
        let w = zipf_weights(n, alpha);
        prop_assert_eq!(w.len(), n);
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1]);
            prop_assert!(pair[1] > 0.0);
        }
    }

    #[test]
    fn zipf_sampler_stays_in_range(n in 1usize..500, alpha in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        let p_total: f64 = (0..n).map(|k| z.probability(k)).sum();
        prop_assert!((p_total - 1.0).abs() < 1e-9);
    }

    /// Trace algebra: merge adds, share_of_top is monotone in the share
    /// and reaches 1, sampling share stays in [0, 1].
    #[test]
    fn trace_shares_are_consistent(
        direct in proptest::collection::vec(0u64..1000, 1..100),
        sampling in proptest::collection::vec(0u64..1000, 1..100),
    ) {
        let n = direct.len().min(sampling.len());
        let mut t = AccessTrace::new(n);
        for k in 0..n {
            t.record_direct(k, direct[k]);
            t.record_sampling(k, sampling[k]);
        }
        let share = t.sampling_share();
        prop_assert!((0.0..=1.0).contains(&share));
        let s_small = t.share_of_top(0.1);
        let s_big = t.share_of_top(0.5);
        prop_assert!(s_small <= s_big + 1e-12);
        let total: u64 = t.totals().iter().sum();
        if total > 0 {
            prop_assert!((t.share_of_top(1.0) - 1.0).abs() < 1e-9);
        }
        let mut merged = AccessTrace::new(n);
        merged.merge(&t);
        merged.merge(&t);
        prop_assert_eq!(merged.total_direct(), 2 * t.total_direct());
        prop_assert_eq!(merged.total_sampling(), 2 * t.total_sampling());
    }
}
