//! Throughput on both runtime backends: the same skewed minibatch
//! workload on the deterministic virtual-time simulator and on the
//! wall-clock backend, where waits block for real and the numbers are
//! actual keys/sec and wall-clock epoch times.
//!
//! The two backends must also *agree*: with integer-valued deltas every
//! partial sum is exact, so the final model is identical bit-for-bit no
//! matter how real scheduling interleaved the updates. `--check` gates on
//! that equivalence (the CI wall-clock smoke job runs it).
//!
//! Usage: cargo run --release -p nups-bench --bin throughput -- \
//!   [--scale tiny|small|medium] [--nodes 4] [--workers 2] \
//!   [--backend sim|wall|both] [--json PATH] [--check]
//!
//! `--json` writes a report in the standard bench shape. The wall-backend
//! numbers are real measurements and vary run to run, so this report is
//! uploaded as a CI artifact but not gated against a baseline.

use nups_bench::json::Json;
use nups_bench::report::print_table;
use nups_bench::{Args, Scale};
use nups_core::runtime::Backend;
use nups_core::system::run_epoch;
use nups_core::technique::heuristic_replicated_keys;
use nups_core::{NupsConfig, ParameterServer, PsWorker};
use nups_sim::metrics::MetricsSnapshot;
use nups_sim::time::SimDuration;
use nups_sim::topology::Topology;
use nups_workloads::drift::{DriftConfig, DriftingHotspots};

const VALUE_LEN: usize = 8;

fn workload_for(scale: Scale) -> DriftingHotspots {
    let (n_keys, hot_keys, phases, batches_per_phase) = match scale {
        Scale::Tiny => (1024, 4, 3, 40),
        Scale::Small => (4096, 8, 4, 150),
        Scale::Medium => (16384, 16, 5, 300),
    };
    DriftingHotspots::new(DriftConfig {
        n_keys,
        hot_keys,
        hot_share: 0.9,
        phases,
        batches_per_phase,
        batch: 8,
        seed: 0x7490,
    })
}

struct BackendRun {
    backend: Backend,
    /// Total run time on the backend's timeline (virtual or wall-clock).
    elapsed: SimDuration,
    /// Per-epoch times on the backend's timeline.
    epoch_times: Vec<SimDuration>,
    /// Key accesses performed (pulls + pushes).
    accesses: u64,
    metrics: MetricsSnapshot,
    /// Bit patterns of the final model, for the cross-backend check.
    model: Vec<Vec<u32>>,
}

impl BackendRun {
    fn keys_per_sec(&self) -> f64 {
        self.accesses as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn mean_epoch(&self) -> SimDuration {
        let n = self.epoch_times.len().max(1) as u64;
        self.epoch_times.iter().copied().sum::<SimDuration>() / n
    }
}

fn run_backend(workload: &DriftingHotspots, topology: Topology, backend: Backend) -> BackendRun {
    let cfg = workload.config();
    let freqs = workload.phase_frequencies(0, topology.total_workers());
    let ps_cfg = NupsConfig::nups(topology, cfg.n_keys, VALUE_LEN)
        .with_replicated_keys(heuristic_replicated_keys(&freqs))
        .with_sync_period(SimDuration::from_millis(1))
        .with_backend(backend);
    let ps = ParameterServer::new(ps_cfg, |k, v| v.fill((k % 97) as f32));
    let mut workers = ps.workers();
    let mut epoch_times = Vec::with_capacity(cfg.phases);
    let mut accesses = 0u64;
    let mut last = ps.virtual_time();
    // One epoch per drift phase: each batch is pulled, updated with an
    // exact integer delta, and pushed back through the batched paths.
    for phase in 0..cfg.phases {
        for worker in 0..topology.total_workers() {
            for batch in workload.worker_batches(phase, worker) {
                accesses += 2 * batch.len() as u64;
            }
        }
        run_epoch(&mut workers, |i, w| {
            for keys in workload.worker_batches(phase, i) {
                let mut out = vec![0.0f32; keys.len() * VALUE_LEN];
                w.pull_many(&keys, &mut out);
                let deltas = vec![1.0f32; keys.len() * VALUE_LEN];
                w.push_many(&keys, &deltas);
                w.charge_compute(500 * keys.len() as u64);
            }
        });
        let now = ps.virtual_time();
        epoch_times.push(now.saturating_since(last));
        last = now;
    }
    drop(workers);
    ps.flush_replicas();
    let model: Vec<Vec<u32>> =
        ps.read_all().into_iter().map(|v| v.into_iter().map(f32::to_bits).collect()).collect();
    let run = BackendRun {
        backend,
        elapsed: epoch_times.iter().copied().sum(),
        epoch_times,
        accesses,
        metrics: ps.metrics(),
        model,
    };
    ps.shutdown();
    run
}

fn backend_json(r: &BackendRun) -> Json {
    Json::obj()
        .set("elapsed_us", r.elapsed.as_nanos() / 1_000)
        .set("mean_epoch_us", r.mean_epoch().as_nanos() / 1_000)
        .set("accesses", r.accesses)
        .set("keys_per_sec", r.keys_per_sec())
        .set("msgs", r.metrics.msgs_sent)
        .set("bytes", r.metrics.bytes_sent)
        .set("relocations", r.metrics.relocations)
        .set("sync_rounds", r.metrics.sync_rounds)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let topology = args.topology();
    let workload = workload_for(scale);

    let backends: Vec<Backend> = match args.get("backend") {
        None => vec![Backend::Virtual, Backend::WallClock],
        Some("both") => vec![Backend::Virtual, Backend::WallClock],
        Some(s) => match Backend::parse(s) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown --backend {s:?} (expected sim, wall or both)");
                std::process::exit(2);
            }
        },
    };

    let runs: Vec<BackendRun> = backends
        .iter()
        .map(|&b| {
            eprintln!("[throughput] running {} backend", b.name());
            run_backend(&workload, topology, b)
        })
        .collect();

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.backend.name().to_string(),
                r.elapsed.to_string(),
                r.mean_epoch().to_string(),
                format!("{}", r.accesses),
                format!("{:.0}", r.keys_per_sec()),
                format!("{}", r.metrics.msgs_sent),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Throughput — same workload per backend ({} epochs, {} keys)",
            workload.config().phases,
            workload.config().n_keys
        ),
        &["backend", "run time", "mean epoch", "accesses", "keys/sec", "messages"],
        &rows,
    );

    if let Some(path) = args.get("json") {
        let mut report = Json::obj().set("bench", "throughput").set("scale", scale.name()).set(
            "topology",
            format!("{}x{}", topology.n_nodes, topology.workers_per_node).as_str(),
        );
        for r in &runs {
            report = report.set(r.backend.name(), backend_json(r));
        }
        std::fs::write(path, report.render()).expect("write json report");
        eprintln!("[throughput] wrote {path}");
    }

    if args.get_flag("check") {
        let sim = runs.iter().find(|r| r.backend == Backend::Virtual);
        let wall = runs.iter().find(|r| r.backend == Backend::WallClock);
        match (sim, wall) {
            (Some(s), Some(w)) if s.model == w.model => {
                eprintln!("[throughput] OK: backends agree on the final model");
            }
            (Some(s), Some(w)) => {
                let diverged = s.model.iter().zip(&w.model).filter(|(a, b)| a != b).count();
                eprintln!("FAIL: {diverged} parameter(s) differ between sim and wall backends");
                std::process::exit(1);
            }
            _ => {
                eprintln!("FAIL: --check needs both backends (drop --backend or use both)");
                std::process::exit(1);
            }
        }
    }
}
