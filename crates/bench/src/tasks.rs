//! Task builders at the scales the experiments run at.
//!
//! The paper's full-scale datasets (4.8 B values, 375 M sentences, 1 B
//! cells) do not fit a 1-core reproduction budget; these presets keep the
//! *shape* — skew exponents, sampling shares, negative-sample counts —
//! while shrinking counts. Scale can be raised via `--scale` on every
//! experiment binary.

use std::sync::Arc;

use nups_ml::kge::{KgeConfig, KgeTask};
use nups_ml::mf::{MfConfig, MfTask};
use nups_ml::task::TrainTask;
use nups_ml::word2vec::{W2vConfig, W2vTask};
use nups_sim::topology::Topology;
use nups_workloads::corpus::{Corpus, CorpusConfig};
use nups_workloads::kg::{KgConfig, KnowledgeGraph};
use nups_workloads::matrix::{MatrixConfig, MatrixData};

/// Which of the paper's tasks to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    Kge,
    Wv,
    Mf,
}

impl TaskKind {
    pub fn parse(s: &str) -> Option<TaskKind> {
        match s {
            "kge" => Some(TaskKind::Kge),
            "wv" => Some(TaskKind::Wv),
            "mf" => Some(TaskKind::Mf),
            _ => None,
        }
    }

    pub fn all() -> [TaskKind; 3] {
        [TaskKind::Kge, TaskKind::Wv, TaskKind::Mf]
    }

    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Kge => "kge",
            TaskKind::Wv => "wv",
            TaskKind::Mf => "mf",
        }
    }
}

/// Dataset/model scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment: unit tests and criterion benches.
    Tiny,
    /// Default for the experiment binaries.
    Small,
    /// A few minutes per experiment.
    Medium,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
        }
    }
}

/// Build a task partitioned for `topology`.
pub fn build_task(kind: TaskKind, scale: Scale, topology: Topology) -> Arc<dyn TrainTask> {
    let workers = topology.total_workers();
    match kind {
        TaskKind::Kge => {
            // Keep the paper's access density: Wikidata5M has ~9 direct
            // accesses per entity per epoch; denser scales make boundary
            // keys thrash and distort the relocation/replication trade-off.
            let (e, r, train, test, dc, n_neg) = match scale {
                Scale::Tiny => (3_000, 8, 6_000, 100, 4, 2),
                Scale::Small => (20_000, 16, 40_000, 200, 8, 4),
                Scale::Medium => (80_000, 32, 200_000, 400, 8, 8),
            };
            let kg = Arc::new(KnowledgeGraph::generate(KgConfig {
                n_entities: e,
                n_relations: r,
                n_train: train,
                n_test: test,
                n_clusters: 16.min(e / 8),
                popularity_alpha: 1.0,
                noise: 0.05,
                seed: 7,
            }));
            Arc::new(KgeTask::new(
                kg,
                KgeConfig { dc, n_neg, eval_triples: test.min(200), ..KgeConfig::default() },
                workers,
            ))
        }
        TaskKind::Wv => {
            let (v, s, len, dim, n_neg) = match scale {
                Scale::Tiny => (600, 1_200, 8, 8, 2),
                Scale::Small => (4_000, 6_000, 12, 16, 3),
                Scale::Medium => (20_000, 30_000, 14, 16, 3),
            };
            let corpus = Arc::new(Corpus::generate(CorpusConfig {
                vocab_size: v,
                n_sentences: s,
                sentence_len: len,
                n_topics: 20.min(v / 10),
                zipf_alpha: 1.0,
                noise: 0.1,
                seed: 11,
            }));
            Arc::new(W2vTask::new(
                corpus,
                W2vConfig { dim, n_neg, eval_pairs: 4000, ..W2vConfig::default() },
                workers,
            ))
        }
        TaskKind::Mf => {
            // Enough cells per (column, node) pair that a column visit
            // amortizes its relocation, as in the paper's 1B-cell setup.
            let (rows, cols, train, test, rank) = match scale {
                Scale::Tiny => (600, 60, 12_000, 500, 4),
                Scale::Small => (5_000, 250, 150_000, 2_000, 16),
                Scale::Medium => (20_000, 500, 600_000, 5_000, 16),
            };
            let data = Arc::new(MatrixData::generate(MatrixConfig {
                n_rows: rows,
                n_cols: cols,
                n_train: train,
                n_test: test,
                rank_gt: rank.min(8),
                zipf_alpha: 1.1,
                noise_std: 0.1,
                seed: 13,
            }));
            Arc::new(MfTask::new(
                data,
                MfConfig { rank, ..MfConfig::default() },
                topology.n_nodes,
                topology.workers_per_node,
            ))
        }
    }
}
