//! The sampling manager in isolation: conformity levels, scheme selection,
//! dependency bounds, and what the schemes cost — without any ML task.
//!
//! Run with: cargo run --release --example sampling_schemes

use nups::core::{
    ConformityLevel, DistributionKind, NupsConfig, ParameterServer, PsWorker, ReuseParams,
    SamplingScheme,
};
use nups::sim::topology::{NodeId, Topology, WorkerId};
use rustc_hash::FxHashMap;

fn main() {
    // Scheme selection: the manager picks the cheapest scheme satisfying
    // the requested level (paper Table 1 / Figure 5).
    println!("conformity level -> selected scheme");
    let reuse = ReuseParams::default();
    for level in [
        ConformityLevel::Conform,
        ConformityLevel::Bounded,
        ConformityLevel::LongTerm,
        ConformityLevel::NonConform,
    ] {
        let scheme = SamplingScheme::for_level(level, reuse);
        println!("  {level:?} -> {scheme:?} (dependency bound: {:?})", scheme.dependency_bound());
    }

    // Drive each scheme on a 2-node cluster and compare what it cost.
    let n_keys = 10_000u64;
    println!("\nscheme cost on a 2-node cluster, 5000 samples each:");
    for (name, scheme) in [
        ("Manual (baseline PS)", SamplingScheme::Manual),
        ("Independent (CONFORM)", SamplingScheme::Independent),
        ("Reuse U=16 (BOUNDED)", SamplingScheme::Reuse(reuse)),
        ("Postponing (LONG-TERM)", SamplingScheme::ReuseWithPostponing(reuse)),
        ("Local (NON-CONFORM)", SamplingScheme::Local),
    ] {
        let cfg = NupsConfig::nups(Topology::new(2, 1), n_keys, 16);
        let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
        let dist =
            ps.register_distribution_with_scheme(0, n_keys, DistributionKind::Uniform, scheme);
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });

        let mut seen: FxHashMap<u64, u32> = FxHashMap::default();
        for _ in 0..50 {
            let mut handle = w.prepare_sample(dist, 100);
            // Partial pulls give the postponing scheme room to reorder.
            for _ in 0..4 {
                for (k, _v) in w.pull_sample(&mut handle, 25) {
                    *seen.entry(k).or_default() += 1;
                }
            }
        }
        let distinct = seen.len();
        let max_uses = seen.values().max().copied().unwrap_or(0);
        let m = ps.metrics();
        println!(
            "  {name:<24} virtual time {:>11}  distinct keys {distinct:>5}  max uses {max_uses:>3}  remote {:>5}  postponed {:>4}",
            w.now(),
            m.samples_remote,
            m.samples_postponed,
        );
        drop(w);
        ps.shutdown();
    }
    println!("\n(note: reuse draws fewer distinct keys — each is used U times —");
    println!(" and local sampling never touches the network.)");
}
