//! The top-level parameter server: construction, worker hand-out, epoch
//! orchestration helpers, evaluation access, and shutdown.

use std::sync::Arc;
use std::thread::JoinHandle;

use nups_sim::clock::ClusterClocks;
use nups_sim::metrics::{ClusterMetrics, MetricsSnapshot};
use nups_sim::net::{Frame, Network};
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId, WorkerId};
use nups_sim::trace::{actor, Observability};
use nups_sim::WireEncode;

use crate::adaptive::{AdaptiveManager, DistAdaptive};
use crate::api::PsWorker;
use crate::config::NupsConfig;
use crate::key::{Key, KeySpace};
use crate::messages::{KeyUpdate, Msg};
use crate::node::{Directory, NodeState, Shared};
use crate::replication::{ReplicaSet, ReplicaSync};
use crate::runtime::{build_runtime, Backend, Fabric, RecvOutcome, SimFabric};
use crate::sampling::scheme::SamplingScheme;
use crate::sampling::{ConformityLevel, DistId, Distribution, DistributionKind};
use crate::server::Server;
use crate::store::Store;
use crate::syncgate::{SyncGate, SyncStats};
use crate::technique::{Technique, TechniqueMap};
use crate::worker::NupsWorker;

/// How the nodes of one cluster map onto OS processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Deployment {
    /// Every node of the topology lives in this process (the default):
    /// server threads for all nodes, workers for all nodes, and replica
    /// synchronization as an in-process merge.
    #[default]
    AllInProcess,
    /// This process hosts exactly one node; its peers are separate OS
    /// processes reached through the fabric (e.g. the TCP fabric). Only
    /// the local node's server thread and workers run here, and replica
    /// synchronization broadcasts real [`Msg::ReplicaDeltas`] messages.
    SingleNode(NodeId),
}

impl Deployment {
    /// Whether `node`'s server and workers run in this process.
    #[inline]
    pub fn is_local(&self, node: NodeId) -> bool {
        match self {
            Deployment::AllInProcess => true,
            Deployment::SingleNode(me) => *me == node,
        }
    }
}

/// Outcome of [`ParameterServer::finalize_distributed`].
#[derive(Debug, Clone, PartialEq)]
pub enum FinalizeOutcome {
    /// Coordinator (node 0): the fully assembled final model, one value
    /// per key, bit-identical to what an in-process run of the same
    /// workload produces.
    Model(Vec<Vec<f32>>),
    /// Peer: the model part was delivered and the coordinator released the
    /// cluster; safe to shut down.
    Released,
    /// The deadline passed before the cluster quiesced (a peer died or
    /// never finished).
    TimedOut,
}

/// A running NuPS-family parameter server (NuPS, Lapse, Classic and the
/// single-node baseline are all configurations of this one system — the
/// paper's "reduces to a single-technique PS" property).
pub struct ParameterServer {
    shared: Arc<Shared>,
    config: NupsConfig,
    deployment: Deployment,
    servers: Vec<JoinHandle<()>>,
}

impl ParameterServer {
    /// Build and start the server. `init` provides the initial value of
    /// every key (called once per key; must be deterministic in `key` if
    /// runs are to be reproducible).
    pub fn new(config: NupsConfig, init: impl FnMut(Key, &mut [f32])) -> ParameterServer {
        let topo = config.topology;
        let metrics = Arc::new(ClusterMetrics::new(topo.n_nodes as usize));
        let network = Network::new(topo, Arc::clone(&metrics));
        let fabric: Arc<dyn Fabric> = Arc::new(SimFabric::new(network));
        let obs = Arc::new(Observability::new());
        Self::deploy(config, fabric, metrics, obs, Deployment::AllInProcess, init)
    }

    /// Build and start the server on an explicit fabric and deployment.
    /// This is how a per-node OS process joins a multi-process cluster:
    /// every process constructs the same configuration (the technique map,
    /// key space and initial values are derived deterministically, so all
    /// processes agree without exchanging them) and passes
    /// [`Deployment::SingleNode`] with its own node id plus a fabric
    /// connected to the peers. `metrics` must be the same instance the
    /// fabric accounts its sends to.
    ///
    /// Single-node deployments require the wall-clock backend (virtual
    /// time is a per-process construct). Adaptive technique management
    /// runs as a distributed leader-driven epoch protocol (see
    /// [`crate::adaptive`]): node 0 scores from merged sketch reports and
    /// broadcasts versioned migration plans over the fabric.
    /// `obs` is the process-wide observability bundle; a TCP-fabric
    /// process passes the same instance the fabric records its queue-wait
    /// and flush histograms into, so one flight record covers both layers.
    pub fn deploy(
        config: NupsConfig,
        fabric: Arc<dyn Fabric>,
        metrics: Arc<ClusterMetrics>,
        obs: Arc<Observability>,
        deployment: Deployment,
        mut init: impl FnMut(Key, &mut [f32]),
    ) -> ParameterServer {
        let topo = config.topology;
        if let Deployment::SingleNode(me) = deployment {
            assert!(me.0 < topo.n_nodes, "node {me} outside the topology");
            assert_eq!(
                config.backend,
                Backend::WallClock,
                "single-node deployments require the wall-clock backend"
            );
        }
        let keyspace = KeySpace::new(config.n_keys, topo.n_nodes);
        let technique = TechniqueMap::from_replicated_keys(config.n_keys, &config.replicated_keys);

        let runtime =
            build_runtime(config.backend, config.cost, Arc::new(ClusterClocks::new(topo)));

        // Identical initial replica values on every node.
        let mut scratch = vec![0.0f32; config.value_len];
        let replica_init: Vec<(Key, Vec<f32>)> = technique
            .replicated_keys()
            .iter()
            .map(|&k| {
                scratch.iter_mut().for_each(|x| *x = 0.0);
                init(k, &mut scratch);
                (k, scratch.clone())
            })
            .collect();

        let mut nodes = Vec::with_capacity(topo.n_nodes as usize);
        for node in topo.nodes() {
            let store = Store::new(config.store_shards);
            let range = keyspace.range_of(node);
            // Seed only the nodes this process hosts: a remote node's
            // store stays empty here, so its keys route as remote instead
            // of silently serving a stale local copy.
            if deployment.is_local(node) {
                for key in range.clone() {
                    if technique.technique(key) == Technique::Relocated {
                        scratch.iter_mut().for_each(|x| *x = 0.0);
                        init(key, &mut scratch);
                        store.seed(key, scratch.clone());
                    }
                }
            }
            nodes.push(Arc::new(NodeState {
                node,
                store,
                directory: Directory::new(range, node),
                replicas: Arc::new(ReplicaSet::new(&replica_init, config.clip)),
                background_busy: std::sync::atomic::AtomicU64::new(0),
            }));
        }

        let sync = Arc::new(match deployment {
            Deployment::AllInProcess => ReplicaSync::new(
                nodes.iter().map(|n| Arc::clone(&n.replicas)).collect(),
                topo,
                config.cost,
                config.value_len,
            ),
            Deployment::SingleNode(me) => ReplicaSync::distributed(
                Arc::clone(&nodes[me.index()].replicas),
                topo,
                me,
                config.cost,
                config.value_len,
                Arc::clone(&fabric),
            ),
        });
        // The gate must also run for adaptive servers that start with no
        // replicated keys: the rendezvous is where adaptation happens.
        let gate_enabled = technique.n_replicated() > 0 || config.adaptive.is_some();
        let gate = Arc::new(SyncGate::new(config.sync_period, gate_enabled));
        let adaptive = config.adaptive.clone().map(AdaptiveManager::new);
        // Multi-node per-node deployments migrate through the distributed
        // epoch protocol; a single-node "cluster" can keep the in-process
        // path (its gate parks every worker that exists).
        let dist_adaptive = match deployment {
            Deployment::SingleNode(me) if adaptive.is_some() && topo.n_nodes > 1 => {
                Some(DistAdaptive::new(me, topo.n_nodes))
            }
            _ => None,
        };

        let shared = Arc::new(Shared {
            topology: topo,
            keyspace,
            technique,
            value_len: config.value_len,
            relocation_enabled: config.relocation_enabled,
            metrics,
            obs,
            journal_node: match deployment {
                Deployment::AllInProcess => NodeId(0),
                Deployment::SingleNode(me) => me,
            },
            runtime,
            fabric,
            gate,
            sync,
            adaptive,
            dist_adaptive,
            nodes,
            dists: parking_lot::Mutex::new(Vec::new()),
            sync_fins: std::sync::atomic::AtomicU64::new(0),
            fin_fences: std::sync::atomic::AtomicU64::new(0),
        });

        let servers = topo
            .nodes()
            .filter(|node| deployment.is_local(*node))
            .map(|node| {
                let endpoint = shared.fabric.bind(Addr::server(node));
                let server = Server::new(
                    Arc::clone(&shared),
                    Arc::clone(&shared.nodes[node.index()]),
                    endpoint,
                );
                std::thread::Builder::new()
                    .name(format!("nups-server-{node}"))
                    .spawn(move || server.run())
                    .expect("spawn server thread")
            })
            .collect();

        ParameterServer { shared, config, deployment, servers }
    }

    /// Register a sampling distribution (Section 4.3's
    /// `register_distribution(π, L)`). Must happen before workers are
    /// created. The sampling manager selects the scheme for the level.
    pub fn register_distribution(
        &self,
        base_key: Key,
        n: u64,
        kind: DistributionKind,
        level: ConformityLevel,
    ) -> DistId {
        let dist = Distribution::new(base_key, n, kind, level);
        let scheme = SamplingScheme::for_level(level, self.config.reuse);
        let mut dists = self.shared.dists.lock();
        dists.push(Arc::new((dist, scheme)));
        DistId(dists.len() - 1)
    }

    /// Register a distribution with an explicitly chosen scheme (the
    /// Section 5.5 experiments sweep schemes directly).
    pub fn register_distribution_with_scheme(
        &self,
        base_key: Key,
        n: u64,
        kind: DistributionKind,
        scheme: SamplingScheme,
    ) -> DistId {
        let dist = Distribution::new(base_key, n, kind, scheme.provides());
        let mut dists = self.shared.dists.lock();
        dists.push(Arc::new((dist, scheme)));
        DistId(dists.len() - 1)
    }

    /// Create the worker handle for `id`. Each worker may be created once.
    pub fn worker(&self, id: WorkerId) -> NupsWorker {
        assert!(id.node.0 < self.config.topology.n_nodes);
        assert!(id.local < self.config.topology.workers_per_node);
        assert!(
            self.deployment.is_local(id.node),
            "worker {id} belongs to a node hosted by another process"
        );
        let endpoint = self.shared.fabric.bind(Addr::worker(id.node, id.local));
        let clock = self.shared.runtime.clock(id);
        let seed = self.config.seed.wrapping_add(
            0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + self.shared.topology.worker_index(id) as u64),
        );
        NupsWorker::new(id, Arc::clone(&self.shared), endpoint, clock, seed)
    }

    /// All worker handles this process hosts, in topology order (every
    /// worker for in-process deployments, the local node's workers for
    /// per-node deployments).
    pub fn workers(&self) -> Vec<NupsWorker> {
        self.config
            .topology
            .workers()
            .filter(|w| self.deployment.is_local(w.node))
            .map(|w| self.worker(w))
            .collect()
    }

    /// How this process maps onto the cluster.
    pub fn deployment(&self) -> Deployment {
        self.deployment
    }

    /// Force one replica synchronization (epoch boundaries / evaluation).
    pub fn flush_replicas(&self) {
        if self.shared.technique.n_replicated() > 0 {
            let _ = self.shared.sync.sync_once(&self.shared.metrics);
        }
    }

    /// Read the current value of one key (evaluation; not priced). A key
    /// mid-relocation parks on the runtime's progress wait until a server
    /// installs it (the install wakes us; no spin-sleep backoff).
    pub fn read_value(&self, key: Key) -> Vec<f32> {
        assert_eq!(
            self.deployment,
            Deployment::AllInProcess,
            "read_value needs every store in-process; per-node deployments assemble \
             the model with finalize_distributed"
        );
        if let Some(slot) = self.shared.technique.replica_slot(key) {
            return self.shared.sync.sets()[0].get(slot);
        }
        let mut found: Option<Vec<f32>> = None;
        self.shared.runtime.wait_until(std::time::Duration::from_secs(30), &mut || {
            // The technique may flip while we wait: an adaptation round can
            // promote the key mid-relocation, leaving every store with a
            // tombstone and the value in the replica sets.
            if let Some(slot) = self.shared.technique.replica_slot(key) {
                found = Some(self.shared.sync.sets()[0].get(slot));
                return true;
            }
            for node in &self.shared.nodes {
                if let Some(v) = node.store.get(key) {
                    found = Some(v);
                    return true;
                }
            }
            false
        });
        found.unwrap_or_else(|| panic!("key {key} not found on any node (lost in transit?)"))
    }

    /// Snapshot every key's value (evaluation; not priced).
    pub fn read_all(&self) -> Vec<Vec<f32>> {
        assert_eq!(
            self.deployment,
            Deployment::AllInProcess,
            "read_all needs every store in-process; per-node deployments assemble \
             the model with finalize_distributed"
        );
        let n = self.config.n_keys;
        let mut out: Vec<Option<Vec<f32>>> = vec![None; n as usize];
        // Replicated keys from node 0 (all replicas equal after a flush).
        for (slot, key) in self.shared.technique.slot_entries() {
            out[key as usize] = Some(self.shared.sync.sets()[0].get(slot));
        }
        // Owned keys per node.
        for node in &self.shared.nodes {
            for key in node.store.local_keys() {
                if let Some(v) = node.store.get(key) {
                    out[key as usize] = Some(v);
                }
            }
        }
        // Stragglers (mid-relocation) individually.
        out.iter_mut()
            .enumerate()
            .map(|(k, v)| match v.take() {
                Some(v) => v,
                None => self.read_value(k as Key),
            })
            .collect()
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.total()
    }

    /// The process-wide observability bundle: latency histograms, the
    /// event journal, and the flight recorder.
    pub fn observability(&self) -> &Arc<Observability> {
        &self.shared.obs
    }

    pub fn metrics_of(&self, node: NodeId) -> MetricsSnapshot {
        self.shared.metrics.snapshot_node(node)
    }

    pub fn sync_stats(&self) -> SyncStats {
        self.shared.gate.stats()
    }

    pub fn technique_map(&self) -> &TechniqueMap {
        &self.shared.technique
    }

    /// The technique-assignment epoch (bumps once per adaptation round
    /// that migrated at least one key; 0 on static servers).
    pub fn technique_epoch(&self) -> u64 {
        self.shared.technique.epoch()
    }

    /// The adaptive technique manager, when enabled.
    pub fn adaptive_manager(&self) -> Option<&AdaptiveManager> {
        self.shared.adaptive.as_ref()
    }

    pub fn config(&self) -> &NupsConfig {
        &self.config
    }

    /// The cluster-wide elapsed time on the runtime's timeline — the
    /// slowest worker's virtual clock on the simulator, real time since
    /// startup on the wall-clock backend — folded with any modelled
    /// background busy time (epoch "run time" reads).
    pub fn virtual_time(&self) -> SimTime {
        let mut t = self.shared.runtime.elapsed();
        for node in &self.shared.nodes {
            t = t.max(SimTime::ZERO + node.background_busy());
        }
        t
    }

    /// The backend this server executes on.
    pub fn backend(&self) -> crate::runtime::Backend {
        self.shared.runtime.backend()
    }

    /// Finish a per-node deployment's run and assemble the final model at
    /// the coordinator (node 0). Call after every local worker joined.
    ///
    /// The protocol (all on the fabric, no side channels):
    ///
    /// 1. Wait until no relocation is in flight toward this node, then
    ///    drain and broadcast the final replica deltas. With adaptation
    ///    enabled, follow them with a [`Msg::FinFence`] to every peer's
    ///    server port: per-link FIFO makes the fence prove that every sync
    ///    delta this node ever broadcast has been *folded* at the
    ///    receiver. Peers send [`Msg::SyncFin`] to the coordinator on the
    ///    same ordered channel, so the fin proves their deltas arrived
    ///    there first.
    /// 2. With adaptation enabled, each peer then waits until all `n - 1`
    ///    fences reached it *and* its own migration state is settled — no
    ///    stashed or held delta, no unacknowledged fold or residue it
    ///    forwarded to another node's store — and announces the drain with
    ///    a second [`Msg::SyncFin`]. This is the happens-before edge that
    ///    keeps a late pre-demotion broadcast (or a fold the home chased
    ///    onto another owner) from racing the model snapshots: every
    ///    cross-node store mutation is acknowledged before the fin leaves.
    /// 3. The coordinator counts the fins (each sent after that node's
    ///    workers joined, and every push is applied before its worker
    ///    unblocks, so the cluster's stores are final). With adaptation
    ///    enabled it additionally waits for every peer's fence and drained
    ///    fin, for its own state to settle, and for every node to have
    ///    acknowledged the last issued plan — no migration traffic is in
    ///    flight anywhere — then broadcasts [`Msg::Release`] carrying that
    ///    plan epoch.
    /// 4. Each peer answers the release with a [`Msg::ModelPart`] snapshot
    ///    of the relocated keys its store owns, then returns
    ///    [`FinalizeOutcome::Released`]. With adaptation enabled the peer
    ///    first waits for its own state to catch up to the released epoch,
    ///    flushes its replicas once more (migration fallbacks can strand
    ///    deltas in the accumulators after the first flush), and sends a
    ///    third [`Msg::SyncFin`] — same-link FIFO proves those deltas
    ///    reached the coordinator before its part does.
    /// 5. The coordinator merges its own replicas and store with the
    ///    parts, checks every key is covered, and returns
    ///    [`FinalizeOutcome::Model`].
    pub fn finalize_distributed(&self, timeout: std::time::Duration) -> FinalizeOutcome {
        let Deployment::SingleNode(me) = self.deployment else {
            panic!("finalize_distributed requires a single-node deployment");
        };
        let topo = self.config.topology;
        let deadline = std::time::Instant::now() + timeout;
        let store = &self.shared.nodes[me.index()].store;
        let ctl_addr = Addr { node: me, port: topo.sync_port() };
        let ctl = self.shared.fabric.bind(ctl_addr);
        let adaptive = self.shared.dist_adaptive.as_ref();
        let n_peers = topo.n_nodes as u64 - 1;

        // Every stage spends from the same deadline: the caller's budget
        // bounds the whole protocol, not each step separately.
        let remaining = |deadline: std::time::Instant| {
            deadline.saturating_duration_since(std::time::Instant::now())
        };
        // Journal each phase transition, and on any timeout dump the
        // flight record to stderr before giving up: the last window of
        // events is the post-mortem timeline of what this node (and the
        // peers it heard from) was doing when the protocol wedged.
        let mark = |name: &'static str, a: u64| {
            self.shared.obs.event(self.shared.runtime.elapsed(), me.0, actor::CONTROL, name, a, 0);
        };
        let fail = |phase: &'static str| {
            mark("finalize_timeout", 0);
            eprintln!("{}", self.shared.obs.flight_record(&format!("finalize timed out: {phase}")));
            FinalizeOutcome::TimedOut
        };
        mark("finalize_start", n_peers);

        // 1. Quiesce locally: a key mid-transfer toward us is owned by
        // nobody until its install, which also wakes this wait.
        if !self.shared.runtime.wait_until(remaining(deadline), &mut || store.n_inflight() == 0) {
            return fail("local relocation quiesce");
        }
        mark("finalize_quiesced", 0);
        self.flush_replicas();
        if adaptive.is_some() {
            // Fence the final broadcast on every outgoing link: a receiver
            // that saw the fence has folded everything we ever sent it.
            for peer in topo.nodes().filter(|p| *p != me) {
                self.post_ctl(ctl_addr, Addr::server(peer), &Msg::FinFence { from: me });
            }
            mark("fin_fence_bcast", n_peers);
        }
        let coordinator = NodeId(0);
        if me != coordinator {
            self.post_ctl(ctl_addr, Addr::server(coordinator), &Msg::SyncFin { from: me });
            mark("sync_fin_sent", 1);
            if let Some(dist) = adaptive {
                // 2. Drain: every peer's broadcasts folded here, and every
                // fold or residue we forwarded to another node's store
                // acknowledged back. Only then may the coordinator release
                // the snapshots.
                if !self.shared.runtime.wait_until(remaining(deadline), &mut || {
                    self.shared.fin_fences() >= n_peers && dist.state().settled()
                }) {
                    return fail("peer drain (fences + settled migration state)");
                }
                self.post_ctl(ctl_addr, Addr::server(coordinator), &Msg::SyncFin { from: me });
                mark("sync_fin_sent", 2);
            }
            // Wait for the cluster-wide quiescence announcement, then
            // contribute our share of the model.
            let released_epoch = loop {
                match ctl.recv_deadline(deadline) {
                    RecvOutcome::Frame(f) => {
                        let mut payload = f.payload;
                        if let Ok(Msg::Release { epoch }) = Msg::decode(&mut payload) {
                            break epoch;
                        }
                    }
                    RecvOutcome::TimedOut | RecvOutcome::Closed => {
                        return fail("release wait");
                    }
                }
            };
            mark("release_recv", released_epoch);
            if let Some(dist) = adaptive {
                // Catch up to the released plan, then push any deltas a
                // migration fallback stranded in the replica accumulators
                // since the first flush; the third fin fences them ahead
                // of our model part on the coordinator's server link.
                if !self
                    .shared
                    .runtime
                    .wait_until(remaining(deadline), &mut || dist.quiesced(released_epoch))
                {
                    return fail("catch-up to released plan epoch");
                }
                self.flush_replicas();
                self.post_ctl(ctl_addr, Addr::server(coordinator), &Msg::SyncFin { from: me });
                mark("sync_fin_sent", 3);
            }
            let part = Msg::ModelPart { from: me, entries: self.local_model_part() };
            self.post_ctl(ctl_addr, Addr { node: coordinator, port: topo.sync_port() }, &part);
            mark("model_part_sent", 0);
            return FinalizeOutcome::Released;
        }

        // 3. Coordinator: barrier on every peer's fin(s) — with
        // adaptation, on the drained fins, every peer's fence toward us,
        // our own settled state, and cluster-wide plan quiescence.
        let released_epoch = match adaptive {
            Some(dist) => {
                let epoch = dist.last_issued();
                if !self.shared.runtime.wait_until(remaining(deadline), &mut || {
                    self.shared.sync_fins() >= 2 * n_peers
                        && self.shared.fin_fences() >= n_peers
                        && dist.quiesced(epoch)
                        && dist.all_acked(epoch)
                }) {
                    return fail("coordinator barrier (fins + fences + plan quiescence)");
                }
                epoch
            }
            None => {
                if !self
                    .shared
                    .runtime
                    .wait_until(remaining(deadline), &mut || self.shared.sync_fins() >= n_peers)
                {
                    return fail("coordinator barrier (peer fins)");
                }
                0
            }
        };
        // … release the quiesced cluster and collect the model parts.
        for peer in topo.nodes().filter(|p| *p != me) {
            let release = Msg::Release { epoch: released_epoch };
            self.post_ctl(ctl_addr, Addr { node: peer, port: topo.sync_port() }, &release);
        }
        mark("release_bcast", released_epoch);
        if adaptive.is_some() {
            // Absorb every peer's post-release flush before snapshotting:
            // the third fins prove the deltas are applied locally.
            let want = 3 * n_peers;
            if !self
                .shared
                .runtime
                .wait_until(remaining(deadline), &mut || self.shared.sync_fins() >= want)
            {
                return fail("post-release peer flush fins");
            }
            self.flush_replicas();
        }
        let mut seen = vec![false; topo.n_nodes as usize];
        let mut parts: Vec<Vec<KeyUpdate>> = Vec::new();
        while (parts.len() as u64) < n_peers {
            match ctl.recv_deadline(deadline) {
                RecvOutcome::Frame(f) => {
                    let mut payload = f.payload;
                    if let Ok(Msg::ModelPart { from, entries }) = Msg::decode(&mut payload) {
                        if !std::mem::replace(&mut seen[from.index()], true) {
                            parts.push(entries);
                        }
                    }
                }
                RecvOutcome::TimedOut | RecvOutcome::Closed => {
                    return fail("model part collection")
                }
            }
        }
        mark("model_parts_recv", n_peers);
        let n = self.config.n_keys as usize;
        let mut out: Vec<Option<Vec<f32>>> = vec![None; n];
        for (slot, key) in self.shared.technique.slot_entries() {
            out[key as usize] = Some(self.shared.sync.sets()[0].get(slot));
        }
        for u in self.local_model_part().into_iter().chain(parts.into_iter().flatten()) {
            out[u.key as usize] = Some(u.delta);
        }
        let model = out
            .into_iter()
            .enumerate()
            .map(|(k, v)| v.unwrap_or_else(|| panic!("key {k} missing from every model part")))
            .collect();
        FinalizeOutcome::Model(model)
    }

    /// This node's share of the final model: one `(key, value)` entry per
    /// relocation-managed key its store owns, in key order.
    fn local_model_part(&self) -> Vec<KeyUpdate> {
        let Deployment::SingleNode(me) = self.deployment else {
            panic!("local_model_part requires a single-node deployment");
        };
        let store = &self.shared.nodes[me.index()].store;
        let mut keys = store.local_keys();
        keys.sort_unstable();
        keys.into_iter()
            .map(|key| KeyUpdate { key, delta: store.get(key).expect("local key has a value") })
            .collect()
    }

    fn post_ctl(&self, src: Addr, dst: Addr, msg: &Msg) {
        self.shared.fabric.post(Frame {
            src,
            dst,
            sent_at: SimTime::ZERO,
            payload: msg.to_bytes(),
        });
    }

    /// Stop the server threads. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.servers.is_empty() {
            return;
        }
        for node in self.config.topology.nodes().filter(|n| self.deployment.is_local(*n)) {
            self.shared.fabric.post(Frame {
                src: Addr::server(node),
                dst: Addr::server(node),
                sent_at: SimTime::ZERO,
                payload: Msg::Stop.to_bytes(),
            });
        }
        for h in self.servers.drain(..) {
            let _ = h.join();
        }
        // Per-node deployments own their fabric: tear the connections down
        // so peer readers unblock (the in-process fabric's default is a
        // no-op).
        if self.deployment != Deployment::AllInProcess {
            self.shared.fabric.shutdown();
        }
    }
}

impl Drop for ParameterServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Run one epoch: spawn a thread per worker, call `body(worker_index,
/// worker)` inside the epoch bracket, and join. The bracket registers each
/// worker with the replica-sync gate so time-based synchronization can
/// rendezvous.
pub fn run_epoch<W, F>(workers: &mut [W], body: F)
where
    W: PsWorker,
    F: Fn(usize, &mut W) + Sync,
{
    std::thread::scope(|s| {
        for (i, w) in workers.iter_mut().enumerate() {
            let body = &body;
            s.spawn(move || {
                w.begin_epoch();
                body(i, w);
                w.end_epoch();
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nups_sim::cost::CostModel;
    use nups_sim::topology::Topology;

    fn zero_cost(cfg: NupsConfig) -> NupsConfig {
        cfg.with_cost(CostModel::zero())
    }

    #[test]
    fn single_node_pull_push_roundtrip() {
        let cfg = zero_cost(NupsConfig::single_node(2, 10, 4));
        let ps = ParameterServer::new(cfg, |k, v| v.fill(k as f32));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0; 4];
        w.pull(3, &mut buf);
        assert_eq!(buf, vec![3.0; 4]);
        w.push(3, &[1.0; 4]);
        w.pull(3, &mut buf);
        assert_eq!(buf, vec![4.0; 4]);
        assert_eq!(ps.read_value(3), vec![4.0; 4]);
        ps.shutdown();
    }

    #[test]
    fn remote_access_without_relocation_goes_over_network() {
        // Classic PS on 2 nodes: keys homed at node 1 are always remote
        // for node 0's worker.
        let topo = Topology::new(2, 1);
        let cfg = zero_cost(NupsConfig::classic(topo, 10, 2));
        let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
        let mut w0 = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0; 2];
        // Key 7 is homed at node 1 (keyspace 10 over 2 nodes → 5..10).
        w0.pull(7, &mut buf);
        assert_eq!(buf, vec![1.0; 2]);
        w0.push(7, &[0.5, 0.5]);
        w0.pull(7, &mut buf);
        assert_eq!(buf, vec![1.5; 2]);
        let m = ps.metrics();
        assert_eq!(m.remote_pulls, 2);
        assert_eq!(m.remote_pushes, 1);
        assert_eq!(m.relocations, 0, "classic never relocates");
        assert!(m.msgs_sent >= 6);
        ps.shutdown();
    }

    #[test]
    fn localize_relocates_and_subsequent_access_is_local() {
        // Real cost model: the transfer takes virtual time, so a pull
        // issued right after localize is a relocation conflict no matter
        // which side of the real-time install race it lands on.
        let topo = Topology::new(2, 1);
        let cfg = NupsConfig::lapse(topo, 10, 2);
        let ps = ParameterServer::new(cfg, |_, v| v.fill(2.0));
        let mut w0 = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        w0.localize(&[7]);
        let mut buf = vec![0.0; 2];
        w0.pull(7, &mut buf); // waits for the transfer, then local
        assert_eq!(buf, vec![2.0; 2]);
        let m = ps.metrics();
        assert_eq!(m.relocations, 1);
        assert_eq!(m.remote_pulls, 0);
        assert_eq!(m.local_pulls, 1);
        assert_eq!(m.relocation_conflicts, 1, "pull overlapped the virtual transfer");
        // Second access: plain local, no further conflict (the worker's
        // clock is now past the transfer's completion).
        w0.pull(7, &mut buf);
        let m = ps.metrics();
        assert_eq!(m.local_pulls, 2);
        assert_eq!(m.relocation_conflicts, 1);
        ps.shutdown();
    }

    #[test]
    fn replicated_key_visible_on_other_node_after_flush() {
        let topo = Topology::new(2, 1);
        let cfg = zero_cost(NupsConfig::nups(topo, 10, 2).with_replicated_keys(vec![0]));
        let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
        let mut w0 = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut w1 = ps.worker(WorkerId { node: NodeId(1), local: 0 });
        w0.push(0, &[1.0, 1.0]);
        let mut buf = vec![0.0; 2];
        w1.pull(0, &mut buf);
        assert_eq!(buf, vec![0.0; 2], "stale before sync");
        ps.flush_replicas();
        w1.pull(0, &mut buf);
        assert_eq!(buf, vec![1.0; 2]);
        let m = ps.metrics();
        assert_eq!(m.replica_pushes, 1);
        assert_eq!(m.replica_pulls, 2);
        ps.shutdown();
    }

    #[test]
    fn read_all_covers_replicated_and_relocated() {
        let topo = Topology::new(2, 1);
        let cfg = zero_cost(NupsConfig::nups(topo, 6, 1).with_replicated_keys(vec![2]));
        let ps = ParameterServer::new(cfg, |k, v| v.fill(k as f32 * 10.0));
        let all = ps.read_all();
        assert_eq!(all.len(), 6);
        for (k, v) in all.iter().enumerate() {
            assert_eq!(v, &vec![k as f32 * 10.0], "key {k}");
        }
        ps.shutdown();
    }

    #[test]
    fn concurrent_pushes_from_all_nodes_sum_exactly() {
        // Per-key sequential consistency for relocated keys under real
        // concurrency: pushes from all workers must all be applied.
        let topo = Topology::new(2, 2);
        let cfg = zero_cost(NupsConfig::lapse(topo, 4, 1));
        let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
        let mut workers = ps.workers();
        run_epoch(&mut workers, |i, w| {
            for round in 0..100 {
                // Workers fight over key 0; odd workers localize first.
                if i % 2 == 1 && round % 10 == 0 {
                    w.localize(&[0]);
                }
                w.push(0, &[1.0]);
            }
        });
        assert_eq!(ps.read_value(0), vec![400.0]);
        ps.shutdown();
    }

    #[test]
    fn sampling_conform_draws_from_registered_distribution() {
        let cfg = zero_cost(NupsConfig::single_node(1, 100, 1));
        let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
        let dist =
            ps.register_distribution(50, 50, DistributionKind::Uniform, ConformityLevel::Conform);
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut h = w.prepare_sample(dist, 40);
        assert_eq!(h.remaining(), 40);
        let s1 = w.pull_sample(&mut h, 15);
        let s2 = w.pull_sample(&mut h, 25);
        assert_eq!(s1.len(), 15);
        assert_eq!(s2.len(), 25);
        assert_eq!(h.remaining(), 0);
        for (k, v) in s1.iter().chain(s2.iter()) {
            assert!((50..100).contains(k), "sample {k} outside range");
            assert_eq!(v, &vec![1.0]);
        }
        assert_eq!(ps.metrics().samples_drawn, 40);
        ps.shutdown();
    }

    #[test]
    fn virtual_time_prices_remote_traffic() {
        // With the real cost model, a remote pull must advance the
        // worker's clock by at least a round trip.
        let topo = Topology::new(2, 1);
        let cfg = NupsConfig::classic(topo, 10, 2);
        let cost = cfg.cost;
        let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
        let mut w0 = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0; 2];
        w0.pull(7, &mut buf);
        assert!(w0.now() >= SimTime::ZERO + cost.round_trip(0, 0));
        // A local pull is orders of magnitude cheaper.
        let before = w0.now();
        w0.pull(0, &mut buf);
        let local_cost = w0.now() - before;
        assert!(local_cost.as_nanos() < cost.one_way_latency.as_nanos());
        ps.shutdown();
    }
}
