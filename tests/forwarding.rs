//! Forwarding-chain pricing: an operation that chases a moved key must
//! charge the requester's virtual clock for exactly the message chain the
//! servers produced — `hops > 2` means intermediate forwards, priced as
//! repeats of the request payload.

use nups::core::messages::Msg;
use nups::core::worker::NupsWorker;
use nups::core::{NupsConfig, ParameterServer, PsWorker};
use nups::sim::codec::WireEncode;
use nups::sim::time::SimDuration;
use nups::sim::topology::{NodeId, Topology, WorkerId};

fn worker(ps: &ParameterServer, node: u16) -> NupsWorker {
    ps.worker(WorkerId { node: NodeId(node), local: 0 })
}

/// Build a 3-node Lapse cluster (keys 0, 1, 2 — one homed per node) and
/// leave node 0 with a *stale* tombstone for key 0: the key moved
/// 0 → 1 → 2, but node 0's store still points at node 1. An operation from
/// node 0 then really chases the tombstone chain: request to node 1,
/// forward to node 2, response — 3 messages, hops = 3.
fn cluster_with_stale_tombstone() -> (ParameterServer, NupsWorker) {
    let topo = Topology::new(3, 1);
    let cfg = NupsConfig::lapse(topo, 3, 2);
    let ps = ParameterServer::new(cfg, |_, v| v.fill(5.0));
    let mut buf = [0.0f32; 2];
    let mut w1 = worker(&ps, 1);
    w1.localize(&[0]);
    w1.pull(0, &mut buf); // blocks until installed at node 1
    let mut w2 = worker(&ps, 2);
    w2.localize(&[0]);
    w2.pull(0, &mut buf); // node 1 leaves a tombstone → node 2
    let w0 = worker(&ps, 0);
    drop(w1);
    drop(w2);
    (ps, w0)
}

/// The congestion multiplier is 1.0 here (no replicated keys, so no sync
/// traffic); apply it the way the worker does so the equality is exact.
fn expected_charge(cfg: &NupsConfig, request_len: usize, response_len: usize) -> SimDuration {
    (cfg.cost.message(request_len) * 2 + cfg.cost.message(response_len)) * 1.0
}

#[test]
fn forwarded_pull_through_tombstone_chain_charges_three_messages() {
    let (ps, mut w0) = cluster_with_stale_tombstone();
    let before_t = w0.now();
    let before_m = ps.metrics();
    let mut buf = [0.0f32; 2];
    w0.pull(0, &mut buf);
    assert_eq!(buf, [5.0; 2]);
    let d = ps.metrics() - before_m;
    assert_eq!(d.msgs_sent, 3, "request + tombstone forward + response");
    assert_eq!(d.remote_pulls, 1);
    let resp_len = Msg::PullResp { key: 0, value: vec![0.0; 2], hops: 3 }.encoded_len();
    let expected = expected_charge(ps.config(), Msg::pull_req_len(), resp_len);
    assert_eq!(w0.now() - before_t, expected, "charge must match the 3-message chain");
    ps.shutdown();
}

#[test]
fn forwarded_push_through_tombstone_chain_charges_three_messages() {
    let (ps, mut w0) = cluster_with_stale_tombstone();
    let before_t = w0.now();
    let before_m = ps.metrics();
    w0.push(0, &[1.0, 2.0]);
    let d = ps.metrics() - before_m;
    assert_eq!(d.msgs_sent, 3, "request + tombstone forward + ack");
    assert_eq!(d.remote_pushes, 1);
    let ack_len = Msg::PushAck { key: 0, hops: 3 }.encoded_len();
    let expected = expected_charge(ps.config(), Msg::push_req_len(2), ack_len);
    assert_eq!(w0.now() - before_t, expected, "charge must match the 3-message chain");
    drop(w0);
    assert_eq!(ps.read_value(0), vec![6.0, 7.0], "the forwarded push landed exactly once");
    ps.shutdown();
}

#[test]
fn directory_forward_at_home_also_prices_the_full_chain() {
    // A requester with no local entry routes via the home node, whose
    // directory detours the request to the current owner: same 3-message
    // chain, reached through the directory instead of a tombstone.
    let topo = Topology::new(3, 1);
    let cfg = NupsConfig::lapse(topo, 3, 2);
    let ps = ParameterServer::new(cfg, |_, v| v.fill(5.0));
    let mut buf = [0.0f32; 2];
    let mut w2 = worker(&ps, 2);
    w2.localize(&[1]); // key 1 is homed at node 1; node 2 takes it
    w2.pull(1, &mut buf);
    drop(w2);
    let mut w0 = worker(&ps, 0);
    let before_t = w0.now();
    let before_m = ps.metrics();
    w0.pull(1, &mut buf);
    assert_eq!(buf, [5.0; 2]);
    let d = ps.metrics() - before_m;
    assert_eq!(d.msgs_sent, 3, "request to home + directory forward + response");
    let resp_len = Msg::PullResp { key: 1, value: vec![0.0; 2], hops: 3 }.encoded_len();
    let expected = expected_charge(ps.config(), Msg::pull_req_len(), resp_len);
    assert_eq!(w0.now() - before_t, expected);
    ps.shutdown();
}
