//! Minimal JSON emission for CI bench reports.
//!
//! The `bench-regression` CI job diffs these reports against a committed
//! baseline, so the format is deliberately tiny and dependency-free (the
//! workspace builds offline): ordered objects of integers, floats and
//! strings, rendered with stable key order so reports diff cleanly.

use std::fmt::Write as _;

/// A JSON value (only the shapes bench reports need).
#[derive(Debug, Clone)]
pub enum Json {
    U64(u64),
    F64(f64),
    Str(String),
    /// Ordered object — keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a field; returns `self` for chaining.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(fields) = &mut self else { panic!("set on non-object JSON") };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => fields.push((key.to_string(), value.into())),
        }
        self
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                // Finite, locale-independent rendering; NaN/inf are bugs.
                assert!(v.is_finite(), "non-finite value in bench report");
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                let pad = "  ".repeat(indent + 1);
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{k}\": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{}}}", "  ".repeat(indent));
            }
        }
    }
}

/// Extract an integer field from one of our own flat reports. Not a JSON
/// parser — just enough to read back the machine-written reports the
/// benches themselves emit (the workspace builds offline, so no serde).
pub fn field_u64(report: &str, key: &str) -> u64 {
    report
        .split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|rest| {
            let digits: String =
                rest.trim_start().chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects_in_insertion_order() {
        let j = Json::obj()
            .set("b", 2u64)
            .set("a", Json::obj().set("x", 1.5).set("s", "hi\"there"))
            .set("b", 3u64); // replacement keeps position
        let s = j.render();
        assert_eq!(
            s,
            "{\n  \"b\": 3,\n  \"a\": {\n    \"x\": 1.5,\n    \"s\": \"hi\\\"there\"\n  }\n}\n"
        );
    }

    #[test]
    fn empty_object_renders_braces() {
        assert_eq!(Json::obj().render(), "{}\n");
    }

    #[test]
    fn field_extraction_reads_back_rendered_reports() {
        let s = Json::obj().set("msgs", 42u64).set("nested", Json::obj().set("x", 7u64)).render();
        assert_eq!(field_u64(&s, "msgs"), 42);
        assert_eq!(field_u64(&s, "x"), 7);
        assert_eq!(field_u64(&s, "missing"), 0);
    }
}
