//! The TCP fabric: [`nups_core::runtime::Fabric`] over real sockets.
//!
//! One fabric instance is one node's view of the cluster. For every peer
//! it holds one *outbound* connection driven by a dedicated writer thread
//! behind a bounded frame queue (backpressure instead of unbounded memory
//! when a peer stalls), and one *inbound* connection drained by a reader
//! thread that reassembles frames ([`crate::frame`]) and demultiplexes
//! them into per-port inboxes — exactly the (node, port) mailbox shape the
//! in-process [`nups_sim::net::Network`] provides, so `nups-core` runs on
//! either without knowing which.
//!
//! Frames addressed to the local node never touch a socket (the paper
//! co-locates servers and workers in one process; intra-node traffic is
//! shared memory) and are not counted as network traffic, mirroring the
//! simulated fabric's accounting.
//!
//! Shutdown is cooperative and total: closing the fabric closes the send
//! queues (writers drain what was already queued, then the sockets close),
//! unblocks every reader, and marks every inbox closed so blocked
//! [`Port::recv`] calls return `None` instead of hanging a process.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use nups_core::runtime::{Fabric, Port, RecvOutcome};
use nups_sim::metrics::ClusterMetrics;
use nups_sim::net::Frame;
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId, Topology};

use crate::frame::{read_frame, write_frame, ReadError};

/// Reserved port for fabric-internal control frames (the bootstrap
/// handshake's hello/barrier). Never collides with protocol ports, which
/// are dense from zero.
pub const CTRL_PORT: u16 = u16::MAX;

/// Outbound frames queued per peer before senders block (backpressure).
const SEND_QUEUE_FRAMES: usize = 1024;

struct InboxState {
    queue: VecDeque<Frame>,
    closed: bool,
    bound: bool,
}

struct Inbox {
    state: Mutex<InboxState>,
    cv: Condvar,
}

impl Inbox {
    fn new() -> Inbox {
        Inbox {
            state: Mutex::new(InboxState { queue: VecDeque::new(), closed: false, bound: false }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, frame: Frame) {
        let mut st = self.state.lock();
        if st.closed {
            return;
        }
        st.queue.push_back(frame);
        drop(st);
        self.cv.notify_all();
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

struct SendQueueState {
    queue: VecDeque<Frame>,
    closed: bool,
}

/// Bounded MPSC frame queue feeding one peer's writer thread.
struct SendQueue {
    state: Mutex<SendQueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl SendQueue {
    fn new() -> SendQueue {
        SendQueue {
            state: Mutex::new(SendQueueState { queue: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue, blocking while the queue is full. Frames offered after
    /// close are dropped (shutdown races lose messages by design, exactly
    /// like the channel fabric).
    fn push(&self, frame: Frame) {
        let mut st = self.state.lock();
        while !st.closed && st.queue.len() >= SEND_QUEUE_FRAMES {
            self.not_full.wait(&mut st);
        }
        if st.closed {
            return;
        }
        st.queue.push_back(frame);
        drop(st);
        self.not_empty.notify_one();
    }

    /// Dequeue, blocking while empty. `None` once closed *and* drained:
    /// the writer flushes everything accepted before close.
    fn pop(&self) -> Option<Frame> {
        let mut st = self.state.lock();
        loop {
            if let Some(f) = st.queue.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(f);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

struct PeerLink {
    queue: Arc<SendQueue>,
    /// Clone of the writer's stream, kept to force-close it at shutdown.
    stream: TcpStream,
    writer: Mutex<Option<JoinHandle<()>>>,
}

struct FabricInner {
    node: NodeId,
    metrics: Arc<ClusterMetrics>,
    inboxes: Vec<Inbox>,
    /// Indexed by peer node id; `None` for self.
    peers: Vec<Option<PeerLink>>,
    open: AtomicBool,
    /// Inbound streams, kept to unblock their readers at shutdown.
    reader_streams: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Bootstrap barrier acknowledgements received so far.
    barrier_seen: Mutex<u32>,
    barrier_cv: Condvar,
}

impl FabricInner {
    fn send(&self, frame: Frame) {
        if frame.dst.node == self.node {
            self.deliver_local(frame);
            return;
        }
        // Account real network traffic on the sending node, excluding
        // fabric-internal control frames (bootstrap barrier).
        if frame.dst.port != CTRL_PORT {
            let m = self.metrics.node(self.node);
            m.inc(|m| &m.msgs_sent);
            m.add(|m| &m.bytes_sent, frame.wire_bytes() as u64);
        }
        match self.peers.get(frame.dst.node.index()).and_then(|p| p.as_ref()) {
            Some(p) => p.queue.push(frame),
            None => debug_assert!(false, "no link to node {}", frame.dst.node),
        }
    }

    fn deliver_local(&self, frame: Frame) {
        if frame.dst.port == CTRL_PORT {
            self.note_barrier();
            return;
        }
        match self.inboxes.get(frame.dst.port as usize) {
            Some(inbox) => inbox.push(frame),
            None => debug_assert!(false, "frame for unknown port {}", frame.dst),
        }
    }

    fn note_barrier(&self) {
        *self.barrier_seen.lock() += 1;
        self.barrier_cv.notify_all();
    }

    /// Wait until `n` barrier control frames arrived (bootstrap).
    fn wait_barrier(&self, n: u32, deadline: Instant) -> bool {
        let mut seen = self.barrier_seen.lock();
        while *seen < n {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.barrier_cv.wait_for(&mut seen, deadline - now);
        }
        true
    }

    fn close(&self) {
        if self.open.swap(false, Ordering::SeqCst) {
            // Stop accepting outbound work; writers drain what is queued.
            for p in self.peers.iter().flatten() {
                p.queue.close();
            }
            // Give the writers a bounded grace period to flush (the normal
            // case: a few frames to a live peer). A writer wedged in
            // write_all on a dead or stalled peer must not hang shutdown
            // forever, so after the grace the socket is closed under it,
            // which errors the write out, and the join is then safe.
            let grace = Instant::now() + Duration::from_secs(5);
            for p in self.peers.iter().flatten() {
                let handle = p.writer.lock().take();
                if let Some(h) = handle {
                    while !h.is_finished() && Instant::now() < grace {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    let _ = p.stream.shutdown(Shutdown::Both);
                    let _ = h.join();
                } else {
                    let _ = p.stream.shutdown(Shutdown::Both);
                }
            }
            // Unblock and collect the readers.
            for s in self.reader_streams.lock().drain(..) {
                let _ = s.shutdown(Shutdown::Both);
            }
            for h in self.readers.lock().drain(..) {
                let _ = h.join();
            }
            // Wake everything still parked on an inbox or the barrier.
            for inbox in &self.inboxes {
                inbox.close();
            }
            self.barrier_cv.notify_all();
        }
    }
}

/// Spawn the writer thread draining `queue` into `stream` (one per
/// outbound link). Failure is an `io::Error` the connect path reports.
fn spawn_writer(
    node: NodeId,
    peer: NodeId,
    mut stream: TcpStream,
    queue: Arc<SendQueue>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(format!("nups-net-tx-{node}-to-{peer}")).spawn(move || {
        while let Some(frame) = queue.pop() {
            if write_frame(&mut stream, &frame).is_err() {
                // Peer gone: stop accepting frames so senders do not
                // block on a queue nobody drains.
                queue.close();
                break;
            }
        }
    })
}

/// Close the queues and sockets of the links assembled before a
/// construction failure, so their writer threads exit.
fn teardown_links(peers: &[Option<PeerLink>]) {
    for p in peers.iter().flatten() {
        p.queue.close();
        let _ = p.stream.shutdown(Shutdown::Both);
    }
}

/// One node's TCP fabric (see module docs). Construct via
/// [`crate::bootstrap::connect_cluster`].
pub struct TcpFabric {
    inner: Arc<FabricInner>,
}

impl TcpFabric {
    /// Assemble a fabric from established, hello-validated connections.
    /// `outbound[i]` carries frames to node `i`; `inbound` streams are
    /// drained by reader threads. Used by the bootstrap (and directly by
    /// tests that build meshes by hand).
    pub(crate) fn assemble(
        node: NodeId,
        topology: Topology,
        metrics: Arc<ClusterMetrics>,
        outbound: Vec<(NodeId, TcpStream)>,
        inbound: Vec<TcpStream>,
    ) -> std::io::Result<TcpFabric> {
        let inboxes = (0..topology.ports_per_node()).map(|_| Inbox::new()).collect();
        let mut peers: Vec<Option<PeerLink>> = (0..topology.n_nodes).map(|_| None).collect();
        for (peer, stream) in outbound {
            assert_ne!(peer, node, "a node does not dial itself");
            let queue = Arc::new(SendQueue::new());
            // A clone or spawn failure (fd or thread exhaustion) surfaces
            // as the connect path's error; tear down the links built so
            // far so their writer threads exit instead of leaking.
            let writer_stream = stream.try_clone().inspect_err(|_| teardown_links(&peers))?;
            let writer =
                spawn_writer(node, peer, writer_stream, Arc::clone(&queue)).inspect_err(|_| {
                    let _ = stream.shutdown(Shutdown::Both);
                    teardown_links(&peers);
                })?;
            peers[peer.index()] =
                Some(PeerLink { queue, stream, writer: Mutex::new(Some(writer)) });
        }

        let inner = Arc::new(FabricInner {
            node,
            metrics,
            inboxes,
            peers,
            open: AtomicBool::new(true),
            reader_streams: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            barrier_seen: Mutex::new(0),
            barrier_cv: Condvar::new(),
        });

        for stream in inbound {
            let reader_inner = Arc::clone(&inner);
            let reader_stream = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    inner.close();
                    return Err(e);
                }
            };
            inner.reader_streams.lock().push(stream);
            let spawned =
                std::thread::Builder::new().name(format!("nups-net-rx-{node}")).spawn(move || {
                    let mut r = BufReader::new(reader_stream);
                    loop {
                        match read_frame(&mut r) {
                            Ok(frame) => {
                                debug_assert_eq!(
                                    frame.dst.node, reader_inner.node,
                                    "peer routed a frame to the wrong node"
                                );
                                if frame.dst.node == reader_inner.node {
                                    reader_inner.deliver_local(frame);
                                }
                            }
                            // Clean close or socket teardown: the link is
                            // done, silently (shutdown is the normal case).
                            Err(ReadError::Eof) | Err(ReadError::Io(_)) => break,
                            // A protocol violation must be *observable* —
                            // a silently dead link shows up only as a
                            // worker hung in recv with no diagnostics.
                            Err(ReadError::Frame(e)) => {
                                eprintln!(
                                    "[nups-net {}] dropping inbound link: {e}",
                                    reader_inner.node
                                );
                                debug_assert!(false, "bad frame from peer: {e}");
                                break;
                            }
                        }
                    }
                });
            match spawned {
                Ok(handle) => inner.readers.lock().push(handle),
                Err(e) => {
                    // `close` shuts every stream and queue, so the writers
                    // and readers spawned so far all exit before we report.
                    inner.close();
                    return Err(e);
                }
            }
        }

        Ok(TcpFabric { inner })
    }

    /// Internal handle for bootstrap coordination.
    pub(crate) fn wait_barrier(&self, n: u32, deadline: Instant) -> bool {
        self.inner.wait_barrier(n, deadline)
    }

    /// Close connections and unblock every reader and bound port.
    /// Idempotent; also runs on drop.
    pub fn close(&self) {
        self.inner.close();
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.inner.close();
    }
}

impl Fabric for TcpFabric {
    fn bind(&self, addr: Addr) -> Box<dyn Port> {
        assert_eq!(addr.node, self.inner.node, "cannot bind a remote node's port");
        let inbox = self
            .inner
            .inboxes
            .get(addr.port as usize)
            .unwrap_or_else(|| panic!("address {addr} outside this topology's port range"));
        let mut st = inbox.state.lock();
        assert!(!st.bound, "address {addr} bound twice");
        st.bound = true;
        drop(st);
        Box::new(TcpPort { inner: Arc::clone(&self.inner), addr })
    }

    fn post(&self, frame: Frame) {
        self.inner.send(frame);
    }

    fn shutdown(&self) {
        self.inner.close();
    }
}

/// One bound (node, port) inbox on the TCP fabric.
pub struct TcpPort {
    inner: Arc<FabricInner>,
    addr: Addr,
}

impl TcpPort {
    #[inline]
    fn inbox(&self) -> &Inbox {
        &self.inner.inboxes[self.addr.port as usize]
    }
}

impl Port for TcpPort {
    fn addr(&self) -> Addr {
        self.addr
    }

    fn send(&self, dst: Addr, sent_at: SimTime, payload: bytes::Bytes) {
        self.inner.send(Frame { src: self.addr, dst, sent_at, payload });
    }

    fn recv(&self) -> Option<Frame> {
        let inbox = self.inbox();
        let mut st = inbox.state.lock();
        loop {
            if let Some(f) = st.queue.pop_front() {
                return Some(f);
            }
            if st.closed {
                return None;
            }
            inbox.cv.wait(&mut st);
        }
    }

    fn recv_deadline(&self, deadline: Instant) -> RecvOutcome {
        let inbox = self.inbox();
        let mut st = inbox.state.lock();
        loop {
            if let Some(f) = st.queue.pop_front() {
                return RecvOutcome::Frame(f);
            }
            if st.closed {
                return RecvOutcome::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvOutcome::TimedOut;
            }
            let _ = inbox.cv.wait_for(&mut st, deadline - now);
        }
    }
}
