//! Figure 7: ablation of NuPS's two features — multi-technique parameter
//! management and sampling integration — on KGE and WV (MF has no
//! sampling access, so its entire gain is multi-technique management).
//!
//! Usage: cargo run --release -p nups-bench --bin fig7_ablation -- \
//!   [--task kge|wv] [--nodes 4] [--workers 2] [--epochs 5] [--scale small]

use nups_bench::report::{
    fmt_duration, fmt_quality, fmt_speedup, print_series, print_table, raw_speedup,
};
use nups_bench::{build_task, run, Args, RunConfig, TaskKind, VariantSpec};

fn main() {
    let args = Args::parse();
    let topology = args.topology();
    let epochs = args.epochs(5);

    for kind in args.tasks() {
        if kind == TaskKind::Mf {
            continue; // no sampling access in MF (see Figure 6c instead)
        }
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);
        let cfg = RunConfig::new(topology, epochs);

        let variants = vec![
            VariantSpec::lapse(),
            VariantSpec::ablation_relocation_replication(),
            VariantSpec::ablation_relocation_sampling(),
            VariantSpec::nups_untuned(),
        ];

        println!("\n##### Figure 7 — ablation on {} #####", kind.name());
        let mut results = Vec::new();
        for v in &variants {
            eprintln!("[fig7] {} / {}", kind.name(), v.name);
            let r = run(&factory, v, &cfg);
            print_series(&r);
            results.push(r);
        }
        let lapse = &results[0];
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    fmt_duration(r.epoch_time()),
                    fmt_quality(r.final_quality()),
                    fmt_speedup(Some(raw_speedup(lapse, r))),
                    format!("{:.1}", r.metrics.bytes_sent as f64 / 1e6),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 7 summary — {} (speedup vs Lapse)", kind.name()),
            &["variant", "epoch time", "final quality", "epoch speedup", "MB sent"],
            &rows,
        );
    }
}
