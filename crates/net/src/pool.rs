//! A small free-list of byte buffers shared by the fabric's I/O threads.
//!
//! The hot wire path used to pay one heap allocation per frame on each
//! side: the writer allocated a fresh encode buffer per frame, the reader
//! a fresh (zeroed) payload buffer. Both now borrow scratch space from one
//! per-fabric [`BufferPool`] and hand it back when the frame is on the
//! wire (or in its inbox), so steady-state traffic recycles a handful of
//! warm buffers instead of hammering the allocator.
//!
//! The pool is deliberately tiny: a mutex-guarded stack of `Vec<u8>`s.
//! Buffers that grew beyond [`BufferPool::max_retain_bytes`] are dropped
//! on return instead of pinning a rare jumbo frame's worth of memory
//! forever, and the free list is capped at [`BufferPool::max_buffers`] so
//! a transient burst of threads cannot balloon it. Hit/miss counts are
//! kept internally; the fabric mirrors them into the cluster metrics
//! ([`nups_sim::metrics::Metrics::pool_hits`]) at every take.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Free buffers retained by default. Sized for one fabric's worth of I/O
/// threads (one writer per peer + one reader per inbound link) with room
/// for overlap.
pub const DEFAULT_MAX_BUFFERS: usize = 32;

/// Default cap on the capacity a returned buffer may retain (larger ones
/// are dropped). Comfortably above the drift workload's biggest batched
/// transfer, far below [`crate::frame::MAX_PAYLOAD`].
pub const DEFAULT_MAX_RETAIN_BYTES: usize = 1 << 20;

/// A shared free-list of reusable byte buffers (see module docs).
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    max_buffers: usize,
    max_retain_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new(DEFAULT_MAX_BUFFERS, DEFAULT_MAX_RETAIN_BYTES)
    }
}

impl BufferPool {
    pub fn new(max_buffers: usize, max_retain_bytes: usize) -> BufferPool {
        BufferPool {
            free: Mutex::new(Vec::new()),
            max_buffers,
            max_retain_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Borrow a buffer (always empty; capacity is whatever its previous
    /// life grew it to). The boolean reports whether the request was
    /// served from the free list (`true`) or had to allocate.
    pub fn take(&self) -> (Vec<u8>, bool) {
        let reused = self.free.lock().pop();
        match reused {
            Some(mut buf) => {
                buf.clear();
                self.hits.fetch_add(1, Ordering::Relaxed);
                (buf, true)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (Vec::new(), false)
            }
        }
    }

    /// Return a borrowed buffer. Oversized or surplus buffers are dropped
    /// instead of retained (see module docs).
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() > self.max_retain_bytes {
            return;
        }
        let mut free = self.free.lock();
        if free.len() < self.max_buffers {
            free.push(buf);
        }
    }

    /// Requests served from the free list so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that allocated fresh.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Buffers currently parked on the free list.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_take_misses_then_reuses() {
        let pool = BufferPool::default();
        let (mut a, hit) = pool.take();
        assert!(!hit, "empty pool cannot hit");
        a.extend_from_slice(b"grow me");
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let (b, hit) = pool.take();
        assert!(hit, "returned buffer must be reused");
        assert!(b.is_empty(), "reused buffers come back empty");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
    }

    #[test]
    fn concurrent_borrowers_never_alias() {
        let pool = BufferPool::default();
        let (mut a, _) = pool.take();
        let (mut b, _) = pool.take();
        a.extend_from_slice(b"aaaa");
        b.extend_from_slice(b"bbbb");
        // Distinct allocations: writing one cannot disturb the other.
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!(&a, b"aaaa");
        assert_eq!(&b, b"bbbb");
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.idle(), 2);
        let (c, _) = pool.take();
        let (d, _) = pool.take();
        assert_ne!(c.as_ptr(), d.as_ptr(), "pooled buffers stay distinct");
    }

    #[test]
    fn oversized_and_surplus_buffers_are_dropped() {
        let pool = BufferPool::new(2, 64);
        pool.put(Vec::with_capacity(1024));
        assert_eq!(pool.idle(), 0, "oversized buffer must not be retained");
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(16));
        assert_eq!(pool.idle(), 2, "free list is capped");
    }

    #[test]
    fn reuse_across_many_frames_is_steady_state() {
        let pool = BufferPool::default();
        for round in 0..100 {
            let (mut buf, hit) = pool.take();
            assert_eq!(hit, round > 0, "only the first frame allocates");
            buf.extend_from_slice(&[round as u8; 33]);
            pool.put(buf);
        }
        assert_eq!(pool.hits(), 99);
        assert_eq!(pool.misses(), 1);
    }
}
