//! Backend equivalence: the same seeded workload must produce identical
//! final parameter values on the virtual-time simulator and on the
//! wall-clock backend. The two backends schedule real threads differently
//! and merge replicas at different boundaries, so the workload uses
//! integer-valued deltas — every partial sum is exactly representable in
//! f32, making the final state order-independent and therefore a pure
//! function of *which* updates landed, which the protocols guarantee.

use std::time::{Duration, Instant};

use nups::core::runtime::Backend;
use nups::core::system::run_epoch;
use nups::core::{NupsConfig, ParameterServer, PsWorker};
use nups::sim::time::{SimDuration, SimTime};
use nups::sim::topology::Topology;

const N_KEYS: u64 = 24;
const VALUE_LEN: usize = 2;

/// Run a mixed workload — replicated and relocated keys, single-key and
/// batched access with duplicates, localizes mid-stream — and return the
/// bit patterns of the final model.
fn final_model(backend: Backend) -> Vec<Vec<u32>> {
    let topo = Topology::new(2, 2);
    let cfg = NupsConfig::nups(topo, N_KEYS, VALUE_LEN)
        .with_replicated_keys(vec![0, 1])
        .with_sync_period(SimDuration::from_micros(500))
        .with_seed(99)
        .with_backend(backend);
    let ps = ParameterServer::new(cfg, |k, v| v.fill(k as f32));
    let mut workers = ps.workers();
    run_epoch(&mut workers, |i, w| {
        let mut buf = vec![0.0f32; VALUE_LEN];
        for round in 0..40usize {
            let key = ((i * 7 + round) % N_KEYS as usize) as u64;
            if round % 9 == i {
                w.localize(&[key]);
            }
            w.pull(key, &mut buf);
            w.push(key, &[1.0, 2.0]);
            // Batched access with a duplicate key exercises the coalesced
            // wire path on both backends.
            let batch = [key, (key + 3) % N_KEYS, key];
            let mut out = vec![0.0f32; batch.len() * VALUE_LEN];
            w.pull_many(&batch, &mut out);
            let deltas = vec![1.0f32; batch.len() * VALUE_LEN];
            w.push_many(&batch, &deltas);
            w.charge_compute(2_000);
        }
    });
    drop(workers);
    ps.flush_replicas();
    let model: Vec<Vec<u32>> =
        ps.read_all().into_iter().map(|v| v.into_iter().map(f32::to_bits).collect()).collect();
    ps.shutdown();
    model
}

#[test]
fn same_seed_same_final_values_on_both_backends() {
    let sim = final_model(Backend::Virtual);
    let wall = final_model(Backend::WallClock);
    assert_eq!(sim.len(), N_KEYS as usize);
    assert_eq!(sim, wall, "backends must agree on every final parameter value");
    // Guard against a trivially empty workload: values moved off their
    // initialization.
    assert_ne!(sim[2], vec![2.0f32.to_bits(); VALUE_LEN], "workload must touch the model");
}

#[test]
fn wall_clock_backend_finishes_within_bounded_wall_time() {
    // Smoke bound: the tiny workload must complete promptly in real time —
    // a wall-clock backend that inherited a spin-sleep or a stuck gate
    // boundary would blow far past this.
    let start = Instant::now();
    let _ = final_model(Backend::WallClock);
    let elapsed = start.elapsed();
    assert!(elapsed < Duration::from_secs(60), "wall-clock run took {elapsed:?}");
}

#[test]
fn wall_clock_backend_reports_real_elapsed_time() {
    let cfg = NupsConfig::single_node(1, 4, 1).with_backend(Backend::WallClock);
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    let t0 = ps.virtual_time();
    std::thread::sleep(Duration::from_millis(5));
    let t1 = ps.virtual_time();
    assert!(t1 > t0, "elapsed time must move on its own on the wall clock");
    assert!(
        t1.saturating_since(t0) >= SimDuration::from_millis(4),
        "elapsed must track real time: {t0} -> {t1}"
    );
    // A worker's clock reads the same timeline.
    let w =
        ps.worker(nups::sim::topology::WorkerId { node: nups::sim::topology::NodeId(0), local: 0 });
    assert!(w.now() > SimTime::ZERO);
    drop(w);
    ps.shutdown();
}
