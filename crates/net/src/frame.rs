//! The on-wire frame format.
//!
//! Every message crossing a TCP connection is one *frame*: a fixed 32-byte
//! header followed by the payload bytes the [`nups_core::messages::Msg`]
//! codec produced. The header is versioned and checksummed so a desynced,
//! truncated or corrupted stream is rejected with a typed error instead of
//! feeding garbage into the message decoder:
//!
//! ```text
//! offset size field
//! 0      4    magic "NUPS" (little-endian u32)
//! 4      2    protocol version (currently 1)
//! 6      2    reserved, must be zero
//! 8      2    src node    ─┐
//! 10     2    src port     │ the simulator's Addr pair, verbatim
//! 12     2    dst node     │
//! 14     2    dst port    ─┘
//! 16     8    sent_at (nanoseconds, sender's timeline)
//! 24     4    payload length
//! 28     4    CRC-32 (IEEE) of the payload
//! ```
//!
//! The header is exactly [`WIRE_HEADER_BYTES`] long — the framing overhead
//! the cost model has charged per message all along — so the byte counters
//! of a simulated run and the bytes a TCP run actually puts on loopback
//! sockets agree by construction.

use std::io::{self, IoSlice, Read, Write};

use bytes::Bytes;
use nups_sim::net::Frame;
use nups_sim::time::SimTime;
use nups_sim::topology::{Addr, NodeId};

/// `b"NUPS"` as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"NUPS");

/// Current protocol version. Bumped on any incompatible frame or message
/// change; the handshake rejects mismatched peers at connect time.
pub const PROTOCOL_VERSION: u16 = 1;

/// Size of the fixed frame header. Kept equal to the cost model's
/// modelled framing overhead (asserted in the tests below).
pub const HEADER_BYTES: usize = 32;

/// Upper bound on a frame payload. Far above anything the protocol emits
/// (the largest messages are batched value transfers); primarily a guard
/// against a corrupt length field committing us to a huge allocation.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// A malformed frame header or corrupted payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not the protocol magic: the stream is
    /// desynchronized or the peer is not a NuPS node.
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    UnsupportedVersion(u16),
    /// Reserved header bits were set (sent by a future version?).
    ReservedBitsSet(u16),
    /// The length field exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge { len: u32, max: u32 },
    /// The payload did not hash to the header's checksum.
    ChecksumMismatch { expected: u32, actual: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::ReservedBitsSet(r) => write!(f, "reserved header bits set: {r:#06x}"),
            FrameError::PayloadTooLarge { len, max } => {
                write!(f, "payload length {len} exceeds maximum {max}")
            }
            FrameError::ChecksumMismatch { expected, actual } => {
                write!(f, "payload checksum {actual:#010x} != header {expected:#010x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Why reading the next frame off a stream failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The socket failed (or closed mid-frame).
    Io(io::Error),
    /// The bytes arrived but did not form a valid frame.
    Frame(FrameError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::Io(e) => write!(f, "socket error: {e}"),
            ReadError::Frame(e) => write!(f, "bad frame: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// The decoded fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub src: Addr,
    pub dst: Addr,
    pub sent_at: SimTime,
    pub payload_len: u32,
    pub checksum: u32,
}

impl FrameHeader {
    /// The header describing `frame`.
    pub fn of(frame: &Frame) -> FrameHeader {
        FrameHeader {
            src: frame.src,
            dst: frame.dst,
            sent_at: frame.sent_at,
            payload_len: frame.payload.len() as u32,
            checksum: crc32(&frame.payload),
        }
    }

    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        b[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        // b[6..8] reserved, zero.
        b[8..10].copy_from_slice(&self.src.node.0.to_le_bytes());
        b[10..12].copy_from_slice(&self.src.port.to_le_bytes());
        b[12..14].copy_from_slice(&self.dst.node.0.to_le_bytes());
        b[14..16].copy_from_slice(&self.dst.port.to_le_bytes());
        b[16..24].copy_from_slice(&self.sent_at.as_nanos().to_le_bytes());
        b[24..28].copy_from_slice(&self.payload_len.to_le_bytes());
        b[28..32].copy_from_slice(&self.checksum.to_le_bytes());
        b
    }

    /// Parse and validate a header. The payload checksum is verified later
    /// (by [`read_frame`], once the payload bytes are in).
    pub fn decode(b: &[u8; HEADER_BYTES]) -> Result<FrameHeader, FrameError> {
        let u16_at = |i: usize| u16::from_le_bytes([b[i], b[i + 1]]);
        let u32_at = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let magic = u32_at(0);
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let version = u16_at(4);
        if version != PROTOCOL_VERSION {
            return Err(FrameError::UnsupportedVersion(version));
        }
        let reserved = u16_at(6);
        if reserved != 0 {
            return Err(FrameError::ReservedBitsSet(reserved));
        }
        let payload_len = u32_at(24);
        if payload_len > MAX_PAYLOAD {
            return Err(FrameError::PayloadTooLarge { len: payload_len, max: MAX_PAYLOAD });
        }
        Ok(FrameHeader {
            src: Addr { node: NodeId(u16_at(8)), port: u16_at(10) },
            dst: Addr { node: NodeId(u16_at(12)), port: u16_at(14) },
            sent_at: SimTime(u64::from_le_bytes(b[16..24].try_into().expect("8 bytes"))),
            payload_len,
            checksum: u32_at(28),
        })
    }
}

/// Append a frame's wire encoding (header + payload) to `out` — the
/// allocation-free building block the coalescing writer drains batches
/// through.
pub fn encode_frame_into(frame: &Frame, out: &mut Vec<u8>) {
    out.extend_from_slice(&FrameHeader::of(frame).encode());
    out.extend_from_slice(&frame.payload);
}

/// Encode a frame into one contiguous buffer (header + payload), ready for
/// a single `write_all`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + frame.payload.len());
    encode_frame_into(frame, &mut out);
    out
}

/// Write one frame to `w` (no flush; callers batch or flush as they like).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Batches whose total wire size fits under this bound are copied into the
/// scratch buffer and flushed with one `write_all`. Larger batches skip
/// the payload copy and go out as vectored writes instead: past this size
/// the memcpy costs more than the extra iovec bookkeeping.
pub const COALESCE_COPY_MAX: usize = 16 << 10;

/// Slices handed to each `write_vectored` call — comfortably under every
/// platform's `IOV_MAX` (1024 on Linux), and a whole drained send queue is
/// at most twice this many slices.
const VECTORED_CHUNK: usize = 512;

/// Write a whole drained batch of frames as one coalesced flush.
///
/// Small batches are encoded back to back into `scratch` (cleared first,
/// grown as needed, never shrunk — pair it with a buffer pool) and pushed
/// with a single `write_all`; batches past [`COALESCE_COPY_MAX`] encode
/// only their 32-byte headers into `scratch` and hand the kernel an
/// alternating header/payload iovec via `write_vectored`, so N queued
/// frames cost one syscall either way instead of N.
pub fn write_batch(w: &mut impl Write, frames: &[Frame], scratch: &mut Vec<u8>) -> io::Result<()> {
    scratch.clear();
    if frames.is_empty() {
        return Ok(());
    }
    let total: usize = frames.iter().map(|f| f.wire_bytes()).sum();
    if total <= COALESCE_COPY_MAX {
        for f in frames {
            encode_frame_into(f, scratch);
        }
        return w.write_all(scratch);
    }
    scratch.reserve(frames.len() * HEADER_BYTES);
    for f in frames {
        scratch.extend_from_slice(&FrameHeader::of(f).encode());
    }
    let mut slices: Vec<&[u8]> = Vec::with_capacity(frames.len() * 2);
    for (i, f) in frames.iter().enumerate() {
        slices.push(&scratch[i * HEADER_BYTES..(i + 1) * HEADER_BYTES]);
        if !f.payload.is_empty() {
            slices.push(&f.payload);
        }
    }
    write_all_vectored(w, &slices)
}

/// Write every byte of `slices` in order, vectored, tolerating arbitrarily
/// short writes (a socket under memory pressure, or a plain `Write` whose
/// default `write_vectored` forwards one slice at a time). No slice may be
/// empty.
fn write_all_vectored(w: &mut impl Write, slices: &[&[u8]]) -> io::Result<()> {
    let mut idx = 0; // first slice with unwritten bytes
    let mut offset = 0; // bytes of slices[idx] already written
    while idx < slices.len() {
        let chunk = VECTORED_CHUNK.min(slices.len() - idx);
        let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(chunk);
        iov.push(IoSlice::new(&slices[idx][offset..]));
        iov.extend(slices[idx + 1..idx + chunk].iter().map(|s| IoSlice::new(s)));
        let mut n = match w.write_vectored(&iov) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write the batched frames",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while n > 0 {
            let remaining = slices[idx].len() - offset;
            if n >= remaining {
                n -= remaining;
                idx += 1;
                offset = 0;
            } else {
                offset += n;
                n = 0;
            }
        }
    }
    Ok(())
}

/// Read exactly `buf.len()` bytes, reporting a clean EOF *before the first
/// byte* as `Ok(false)`. An EOF mid-buffer is an error: the peer died in
/// the middle of a frame.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, ReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(ReadError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(true)
}

/// Read the next frame off `r`, however the bytes are chunked: short reads
/// and partial writes reassemble here. Returns [`ReadError::Eof`] on a
/// clean close at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ReadError> {
    read_frame_pooled(r, &mut Vec::new())
}

/// [`read_frame`] with the payload staged in `scratch` instead of a fresh
/// zeroed allocation per frame: `scratch` is grown as needed and its
/// contents reused across calls (pair it with a buffer pool). The decoded
/// frame is byte-identical to the allocating path — a proptest below holds
/// the two equal.
pub fn read_frame_pooled(r: &mut impl Read, scratch: &mut Vec<u8>) -> Result<Frame, ReadError> {
    let mut header_bytes = [0u8; HEADER_BYTES];
    if !read_exact_or_eof(r, &mut header_bytes)? {
        return Err(ReadError::Eof);
    }
    let header = FrameHeader::decode(&header_bytes).map_err(ReadError::Frame)?;
    let len = header.payload_len as usize;
    if scratch.len() < len {
        scratch.resize(len, 0);
    }
    let payload = &mut scratch[..len];
    if !payload.is_empty() && !read_exact_or_eof(r, payload)? {
        return Err(ReadError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the payload",
        )));
    }
    let actual = crc32(payload);
    if actual != header.checksum {
        return Err(ReadError::Frame(FrameError::ChecksumMismatch {
            expected: header.checksum,
            actual,
        }));
    }
    Ok(Frame {
        src: header.src,
        dst: header.dst,
        sent_at: header.sent_at,
        payload: Bytes::copy_from_slice(payload),
    })
}

/// Tables for slice-by-8 CRC: `CRC_TABLES[j][b]` is the CRC contribution
/// of byte `b` positioned `j` bytes before the end of an 8-byte block.
/// Table 0 alone is the classic byte-at-a-time table.
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        j += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`. Every frame is
/// checksummed twice (once per side of the wire), so this runs slice-by-8
/// — eight table lookups per 8-byte block instead of one per byte.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = u32::MAX;
    let mut blocks = data.chunks_exact(8);
    for b in &mut blocks {
        let lo = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) ^ c;
        let hi = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in blocks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;
    use nups_sim::cost::WIRE_HEADER_BYTES;
    use proptest::prelude::*;

    fn frame(src: Addr, dst: Addr, sent_at: u64, payload: &[u8]) -> Frame {
        Frame { src, dst, sent_at: SimTime(sent_at), payload: Bytes::copy_from_slice(payload) }
    }

    #[test]
    fn header_matches_the_cost_models_framing_overhead() {
        assert_eq!(HEADER_BYTES, WIRE_HEADER_BYTES, "byte accounting must stay exact");
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slice_by_8_matches_bytewise() {
        fn bytewise(data: &[u8]) -> u32 {
            let mut c = u32::MAX;
            for &b in data {
                c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            c ^ u32::MAX
        }
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        // Every alignment of the block/remainder split, plus a long run.
        for len in 0..64 {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
        assert_eq!(crc32(&data), bytewise(&data));
    }

    #[test]
    fn roundtrip_through_a_buffer() {
        let f = frame(Addr::server(NodeId(2)), Addr::worker(NodeId(0), 3), 42, b"payload");
        let bytes = encode_frame(&f);
        assert_eq!(bytes.len(), HEADER_BYTES + 7);
        let back = read_frame(&mut &bytes[..]).expect("valid frame");
        assert_eq!(back.src, f.src);
        assert_eq!(back.dst, f.dst);
        assert_eq!(back.sent_at, f.sent_at);
        assert_eq!(&back.payload[..], &f.payload[..]);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"");
        let bytes = encode_frame(&f);
        assert_eq!(bytes.len(), HEADER_BYTES);
        let back = read_frame(&mut &bytes[..]).expect("valid frame");
        assert!(back.payload.is_empty());
    }

    #[test]
    fn clean_eof_between_frames() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut &empty[..]), Err(ReadError::Eof)));
    }

    #[test]
    fn eof_mid_header_is_an_io_error() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"xyz");
        let bytes = encode_frame(&f);
        let truncated = &bytes[..HEADER_BYTES / 2];
        assert!(matches!(read_frame(&mut &truncated[..]), Err(ReadError::Io(_))));
        let no_payload = &bytes[..HEADER_BYTES + 1];
        assert!(matches!(read_frame(&mut &no_payload[..]), Err(ReadError::Io(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"x");
        let mut bytes = encode_frame(&f);
        bytes[0] ^= 0xFF;
        match read_frame(&mut &bytes[..]) {
            Err(ReadError::Frame(FrameError::BadMagic(_))) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"x");
        let mut bytes = encode_frame(&f);
        bytes[4] = 99;
        match read_frame(&mut &bytes[..]) {
            Err(ReadError::Frame(FrameError::UnsupportedVersion(99))) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn reserved_bits_rejected() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"x");
        let mut bytes = encode_frame(&f);
        bytes[6] = 1;
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ReadError::Frame(FrameError::ReservedBitsSet(1)))
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"x");
        let mut bytes = encode_frame(&f);
        bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ReadError::Frame(FrameError::PayloadTooLarge { .. }))
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let f = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 0, b"payload");
        let mut bytes = encode_frame(&f);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(ReadError::Frame(FrameError::ChecksumMismatch { .. }))
        ));
    }

    /// A sink with a native `write_vectored` (accepts every slice whole),
    /// counting how many write calls the batch path actually makes.
    struct CountingSink {
        bytes: Vec<u8>,
        writes: usize,
    }

    impl CountingSink {
        fn new() -> CountingSink {
            CountingSink { bytes: Vec::new(), writes: 0 }
        }
    }

    impl Write for CountingSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.writes += 1;
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.writes += 1;
            let mut n = 0;
            for b in bufs {
                self.bytes.extend_from_slice(b);
                n += b.len();
            }
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A sink that takes one byte per `write` call and leaves
    /// `write_vectored` at its default (forward the first nonempty slice),
    /// the worst short-write behavior `write_all_vectored` must survive.
    struct TrickleSink {
        bytes: Vec<u8>,
    }

    impl Write for TrickleSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.bytes.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A sink whose native `write_vectored` accepts at most `cap` bytes per
    /// call, cutting across slice boundaries at arbitrary offsets.
    struct PartialVectoredSink {
        bytes: Vec<u8>,
        cap: usize,
    }

    impl Write for PartialVectoredSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = self.cap.min(buf.len());
            self.bytes.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut left = self.cap;
            for b in bufs {
                let n = left.min(b.len());
                self.bytes.extend_from_slice(&b[..n]);
                left -= n;
                if left == 0 {
                    break;
                }
            }
            Ok(self.cap - left)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn batch(count: usize, payload_len: usize) -> Vec<Frame> {
        (0..count)
            .map(|i| {
                let payload: Vec<u8> = (0..payload_len).map(|j| (i * 31 + j) as u8).collect();
                frame(Addr::server(NodeId(0)), Addr::worker(NodeId(1), 0), i as u64, &payload)
            })
            .collect()
    }

    fn decode_all(mut bytes: &[u8]) -> Vec<Frame> {
        let mut out = Vec::new();
        loop {
            match read_frame(&mut bytes) {
                Ok(f) => out.push(f),
                Err(ReadError::Eof) => return out,
                Err(e) => panic!("stream failed to reframe: {e}"),
            }
        }
    }

    fn assert_same_frames(got: &[Frame], want: &[Frame]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.src, w.src);
            assert_eq!(g.dst, w.dst);
            assert_eq!(g.sent_at, w.sent_at);
            assert_eq!(&g.payload[..], &w.payload[..]);
        }
    }

    #[test]
    fn small_batch_is_one_write() {
        // 64 frames × (32 header + 32 payload) = 4 KiB, under the copy
        // threshold: the whole drain must reach the socket in ONE write.
        let frames = batch(64, 32);
        let mut sink = CountingSink::new();
        let mut scratch = Vec::new();
        write_batch(&mut sink, &frames, &mut scratch).expect("write");
        assert_eq!(sink.writes, 1, "small batches coalesce into a single write_all");
        assert_same_frames(&decode_all(&sink.bytes), &frames);
    }

    #[test]
    fn large_batch_is_one_vectored_write() {
        // 8 frames × 4 KiB ≈ 33 KiB, past COALESCE_COPY_MAX: the vectored
        // path hands the kernel 16 iovecs in ONE call.
        let frames = batch(8, 4096);
        assert!(frames.iter().map(|f| f.wire_bytes()).sum::<usize>() > COALESCE_COPY_MAX);
        let mut sink = CountingSink::new();
        let mut scratch = Vec::new();
        write_batch(&mut sink, &frames, &mut scratch).expect("write");
        assert_eq!(sink.writes, 1, "one vectored write for the whole batch");
        assert_same_frames(&decode_all(&sink.bytes), &frames);
    }

    #[test]
    fn huge_batch_stays_within_the_iovec_chunking_bound() {
        // 600 frames → 1200 slices → ⌈1200/512⌉ = 3 vectored writes, never
        // one syscall per frame.
        let frames = batch(600, 64);
        let mut sink = CountingSink::new();
        let mut scratch = Vec::new();
        write_batch(&mut sink, &frames, &mut scratch).expect("write");
        assert!(sink.writes <= 3, "600 frames took {} writes", sink.writes);
        assert_same_frames(&decode_all(&sink.bytes), &frames);
    }

    #[test]
    fn byte_at_a_time_writer_still_frames_correctly() {
        // Default write_vectored forwards one slice to `write`, which here
        // accepts a single byte: every slice boundary and every offset
        // within a slice is exercised.
        let frames = batch(8, 4096);
        let mut sink = TrickleSink { bytes: Vec::new() };
        let mut scratch = Vec::new();
        write_batch(&mut sink, &frames, &mut scratch).expect("write");
        assert_same_frames(&decode_all(&sink.bytes), &frames);
    }

    #[test]
    fn partial_vectored_writes_still_frame_correctly() {
        // 7-byte acceptances cut both headers and payloads mid-slice; the
        // resume logic must pick up exactly where the kernel stopped.
        let frames = batch(8, 4096);
        let mut sink = PartialVectoredSink { bytes: Vec::new(), cap: 7 };
        let mut scratch = Vec::new();
        write_batch(&mut sink, &frames, &mut scratch).expect("write");
        assert_same_frames(&decode_all(&sink.bytes), &frames);
    }

    #[test]
    fn pooled_scratch_reuse_does_not_alias_earlier_frames() {
        // Decode two frames through the SAME scratch buffer: the first
        // frame's payload must survive the second decode overwriting the
        // scratch bytes it was staged in.
        let a = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 1, &[0xAA; 64]);
        let b = frame(Addr::server(NodeId(0)), Addr::server(NodeId(1)), 2, &[0xBB; 64]);
        let mut wire = Vec::new();
        encode_frame_into(&a, &mut wire);
        encode_frame_into(&b, &mut wire);
        let mut r = &wire[..];
        let mut scratch = Vec::new();
        let got_a = read_frame_pooled(&mut r, &mut scratch).expect("frame a");
        let got_b = read_frame_pooled(&mut r, &mut scratch).expect("frame b");
        assert_eq!(&got_a.payload[..], &[0xAA; 64][..], "first frame must not alias scratch");
        assert_eq!(&got_b.payload[..], &[0xBB; 64][..]);
    }

    proptest! {
        #[test]
        fn pooled_decode_matches_allocating_decode(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..300), 1..8),
            junk in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            // Same wire bytes through both read paths — the pooled variant
            // starts from a dirty, arbitrarily-sized scratch and is reused
            // across every frame of the stream.
            let frames: Vec<Frame> = payloads.iter().enumerate()
                .map(|(i, p)| frame(Addr::server(NodeId(3)), Addr::worker(NodeId(0), 1), i as u64, p))
                .collect();
            let mut wire = Vec::new();
            for f in &frames {
                encode_frame_into(f, &mut wire);
            }
            let mut alloc_r = &wire[..];
            let mut pooled_r = &wire[..];
            let mut scratch = junk;
            for f in &frames {
                let a = read_frame(&mut alloc_r).expect("allocating decode");
                let p = read_frame_pooled(&mut pooled_r, &mut scratch).expect("pooled decode");
                prop_assert_eq!(&a.payload[..], &p.payload[..]);
                prop_assert_eq!(&p.payload[..], &f.payload[..]);
                prop_assert_eq!(a.src, p.src);
                prop_assert_eq!(a.dst, p.dst);
                prop_assert_eq!(a.sent_at, p.sent_at);
            }
            prop_assert!(matches!(read_frame(&mut alloc_r), Err(ReadError::Eof)));
            prop_assert!(matches!(read_frame_pooled(&mut pooled_r, &mut scratch), Err(ReadError::Eof)));
        }

        #[test]
        fn header_roundtrip_prop(
            src_node in any::<u16>(), src_port in any::<u16>(),
            dst_node in any::<u16>(), dst_port in any::<u16>(),
            sent_at in any::<u64>(),
            payload_len in 0u32..MAX_PAYLOAD,
            checksum in any::<u32>(),
        ) {
            let h = FrameHeader {
                src: Addr { node: NodeId(src_node), port: src_port },
                dst: Addr { node: NodeId(dst_node), port: dst_port },
                sent_at: SimTime(sent_at),
                payload_len,
                checksum,
            };
            let back = FrameHeader::decode(&h.encode()).expect("valid header");
            prop_assert_eq!(back, h);
        }

        #[test]
        fn frame_roundtrip_prop(
            payload in proptest::collection::vec(any::<u8>(), 0..512),
            sent_at in any::<u64>(),
        ) {
            let f = frame(Addr::server(NodeId(1)), Addr::worker(NodeId(0), 2), sent_at, &payload);
            let bytes = encode_frame(&f);
            let back = read_frame(&mut &bytes[..]).expect("valid frame");
            prop_assert_eq!(&back.payload[..], &payload[..]);
            prop_assert_eq!(back.sent_at, SimTime(sent_at));
        }

        #[test]
        fn arbitrary_header_bytes_never_panic(b in proptest::collection::vec(any::<u8>(), HEADER_BYTES..=HEADER_BYTES)) {
            let arr: [u8; HEADER_BYTES] = b.try_into().unwrap();
            let _ = FrameHeader::decode(&arr); // must not panic
        }
    }
}
