//! Pooled sample reuse (Section 4.4).
//!
//! NuPS reuses samples through *pools*: repeatedly draw `G` keys iid from
//! the target distribution to form a pool, then produce samples by
//! traversing the pool `U` times, each traversal in a fresh random order.
//! Pooling spreads the reuses of one key out in time (with `G = 1` the
//! sequence is `k₁k₁k₂k₂…`; with larger `G` reuses interleave), which
//! increases randomness at equal communication savings.
//!
//! The scheme is `BOUNDED`: samples are iid draws from π, every key is used
//! exactly `U` times, and the dependency window is at most `U·G` samples.
//!
//! Pool preparation is where the communication savings come from: when a
//! new pool is formed, its keys are localized *asynchronously*, so by the
//! time the samples are pulled the parameters are (usually) local. The
//! paper triggers preparation from an estimate of recent relocation times
//! (footnote 3 notes the heuristic affects performance, not correctness);
//! we trigger at a low-water mark of prepared-but-unused samples, which
//! plays the same role on the virtual timeline.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

use crate::key::Key;

/// Per-worker, per-distribution state for the pooled reuse schemes (both
/// with and without postponing — postponing happens at pull time and does
/// not change pool management).
#[derive(Debug)]
pub struct PoolSequence {
    pool_size: usize,
    use_frequency: usize,
    low_water: usize,
    prepared: VecDeque<Key>,
    pools_created: u64,
}

impl PoolSequence {
    /// `pool_size` = G, `use_frequency` = U (the paper's defaults are
    /// G = 250, U = 16).
    pub fn new(pool_size: usize, use_frequency: usize) -> PoolSequence {
        assert!(pool_size > 0 && use_frequency > 0);
        PoolSequence {
            pool_size,
            use_frequency,
            // Keep at least one pool's worth of samples prepared ahead so
            // async localization has time to complete.
            low_water: pool_size,
            prepared: VecDeque::new(),
            pools_created: 0,
        }
    }

    /// Take the next `n` samples, refilling pools as needed. `draw` samples
    /// one key iid from π; `on_new_pool` receives each freshly drawn pool
    /// (for asynchronous localization).
    pub fn next_batch<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        mut draw: impl FnMut(&mut R) -> Key,
        mut on_new_pool: impl FnMut(&[Key]),
    ) -> Vec<Key> {
        while self.prepared.len() < n.max(self.low_water) {
            self.add_pool(rng, &mut draw, &mut on_new_pool);
        }
        self.prepared.drain(..n).collect()
    }

    fn add_pool<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        draw: &mut impl FnMut(&mut R) -> Key,
        on_new_pool: &mut impl FnMut(&[Key]),
    ) {
        let pool: Vec<Key> = (0..self.pool_size).map(|_| draw(rng)).collect();
        on_new_pool(&pool);
        let mut traversal = pool.clone();
        for _ in 0..self.use_frequency {
            traversal.shuffle(rng);
            self.prepared.extend(traversal.iter().copied());
        }
        self.pools_created += 1;
    }

    /// Samples prepared but not yet handed out.
    pub fn prepared_len(&self) -> usize {
        self.prepared.len()
    }

    pub fn pools_created(&self) -> u64 {
        self.pools_created
    }

    /// The dependency bound `B = U·G` this state guarantees.
    pub fn dependency_bound(&self) -> usize {
        self.pool_size * self.use_frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rustc_hash::FxHashMap;

    /// Draw keys from an incrementing counter so every fresh draw is
    /// distinct and pools are identifiable.
    fn counter_draw() -> impl FnMut(&mut StdRng) -> Key {
        let mut next = 0u64;
        move |_rng| {
            next += 1;
            next - 1
        }
    }

    #[test]
    fn each_pool_key_used_exactly_u_times() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, u) = (10, 4);
        let mut seq = PoolSequence::new(g, u);
        let out = seq.next_batch(g * u, &mut rng, counter_draw(), |_| {});
        assert_eq!(out.len(), g * u);
        let mut counts: FxHashMap<Key, usize> = FxHashMap::default();
        for k in &out {
            *counts.entry(*k).or_default() += 1;
        }
        assert_eq!(counts.len(), g, "exactly one pool consumed");
        assert!(counts.values().all(|&c| c == u), "every key used exactly U times");
    }

    #[test]
    fn dependency_window_is_bounded_by_ug() {
        // All occurrences of one key lie within one pool's U·G positions.
        let mut rng = StdRng::seed_from_u64(2);
        let (g, u) = (8, 3);
        let mut seq = PoolSequence::new(g, u);
        let out = seq.next_batch(5 * g * u, &mut rng, counter_draw(), |_| {});
        let mut first: FxHashMap<Key, usize> = FxHashMap::default();
        let mut last: FxHashMap<Key, usize> = FxHashMap::default();
        for (i, k) in out.iter().enumerate() {
            first.entry(*k).or_insert(i);
            last.insert(*k, i);
        }
        for (k, f) in &first {
            let span = last[k] - f;
            assert!(span < g * u, "key {k} spans {span} >= U*G");
        }
        assert_eq!(seq.dependency_bound(), g * u);
    }

    #[test]
    fn new_pools_are_announced_for_localization() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seq = PoolSequence::new(5, 2);
        let mut announced: Vec<Vec<Key>> = Vec::new();
        let _ = seq.next_batch(30, &mut rng, counter_draw(), |pool| {
            announced.push(pool.to_vec());
        });
        // 30 samples need 3 pools of 10 samples each... plus low-water
        // keeps one pool ahead.
        assert!(announced.len() >= 3, "pools announced: {}", announced.len());
        for p in &announced {
            assert_eq!(p.len(), 5);
        }
        assert_eq!(seq.pools_created() as usize, announced.len());
    }

    #[test]
    fn low_water_keeps_samples_prepared_ahead() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seq = PoolSequence::new(10, 2);
        let _ = seq.next_batch(1, &mut rng, counter_draw(), |_| {});
        // After the first pull, at least a pool's worth remains prepared.
        assert!(seq.prepared_len() >= 10, "prepared={}", seq.prepared_len());
    }

    #[test]
    fn traversals_are_shuffled_not_repeated() {
        // With G=32, the second traversal almost surely differs from the
        // first in order (probability of identity permutation is 1/32!).
        let mut rng = StdRng::seed_from_u64(5);
        let g = 32;
        let mut seq = PoolSequence::new(g, 2);
        let out = seq.next_batch(2 * g, &mut rng, counter_draw(), |_| {});
        let (a, b) = out.split_at(g);
        assert_ne!(a, b, "traversal order must be reshuffled");
        let mut a2 = a.to_vec();
        let mut b2 = b.to_vec();
        a2.sort_unstable();
        b2.sort_unstable();
        assert_eq!(a2, b2, "same multiset of keys in both traversals");
    }

    #[test]
    fn sampled_frequencies_still_match_target() {
        // First-order inclusion must match π even with reuse (BOUNDED
        // guarantee). Pool draws are iid from π; each used exactly U times.
        let mut rng = StdRng::seed_from_u64(6);
        let weights = [1.0f64, 2.0, 7.0];
        let table = crate::sampling::alias::AliasTable::new(&weights);
        let mut seq = PoolSequence::new(25, 4);
        let n = 100_000;
        let out = seq.next_batch(n, &mut rng, |r| table.sample(r) as Key, |_| {});
        let mut counts = [0f64; 3];
        for k in out {
            counts[k as usize] += 1.0;
        }
        for i in 0..3 {
            let got = counts[i] / n as f64;
            let want = weights[i] / 10.0;
            assert!((got - want).abs() < 0.02, "outcome {i}: got {got}, want {want}");
        }
    }
}
