//! Cluster shape: nodes, workers, addresses, and the recursive-doubling
//! partner schedule used by replica synchronization.

use std::fmt;

/// Identifier of a simulated cluster node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a worker thread: the node it lives on plus a node-local
/// index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WorkerId {
    pub node: NodeId,
    pub local: u16,
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}w{}", self.node, self.local)
    }
}

/// A message destination: a node plus a port. Port 0 is the node's server
/// loop; ports `1..=workers_per_node` are per-worker reply inboxes; the port
/// after that is the replica-sync endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Addr {
    pub node: NodeId,
    pub port: u16,
}

/// Port of the per-node server loop.
pub const SERVER_PORT: u16 = 0;

impl Addr {
    #[inline]
    pub fn server(node: NodeId) -> Addr {
        Addr { node, port: SERVER_PORT }
    }

    /// Reply inbox of worker `local` on `node`.
    #[inline]
    pub fn worker(node: NodeId, local: u16) -> Addr {
        Addr { node, port: 1 + local }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// The shape of the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Topology {
    pub n_nodes: u16,
    pub workers_per_node: u16,
}

impl Topology {
    pub fn new(n_nodes: u16, workers_per_node: u16) -> Topology {
        assert!(n_nodes >= 1, "need at least one node");
        assert!(workers_per_node >= 1, "need at least one worker per node");
        Topology { n_nodes, workers_per_node }
    }

    /// A single shared-memory node (the paper's single-node baseline).
    pub fn single_node(workers: u16) -> Topology {
        Topology::new(1, workers)
    }

    #[inline]
    pub fn total_workers(&self) -> usize {
        self.n_nodes as usize * self.workers_per_node as usize
    }

    /// Ports per node: server + one per worker + sync endpoint.
    #[inline]
    pub fn ports_per_node(&self) -> u16 {
        1 + self.workers_per_node + 1
    }

    /// Port of the replica-sync endpoint on every node.
    #[inline]
    pub fn sync_port(&self) -> u16 {
        1 + self.workers_per_node
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes).map(NodeId)
    }

    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        let wpn = self.workers_per_node;
        self.nodes().flat_map(move |node| (0..wpn).map(move |local| WorkerId { node, local }))
    }

    /// Dense index of a worker in `0..total_workers()`.
    #[inline]
    pub fn worker_index(&self, w: WorkerId) -> usize {
        w.node.index() * self.workers_per_node as usize + w.local as usize
    }

    /// Number of communication rounds of a recursive-doubling all-reduce
    /// over the nodes (`ceil(log2(n_nodes))`; zero for a single node).
    pub fn sync_rounds(&self) -> u32 {
        if self.n_nodes <= 1 {
            0
        } else {
            (self.n_nodes as u32).next_power_of_two().trailing_zeros()
        }
    }

    /// Partner of `node` in round `round` of recursive doubling, or `None`
    /// when the XOR partner falls outside a non-power-of-two cluster (that
    /// node idles for the round).
    pub fn sync_partner(&self, node: NodeId, round: u32) -> Option<NodeId> {
        let p = node.0 ^ (1u16 << round);
        (p < self.n_nodes).then_some(NodeId(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_indexing_is_dense_and_unique() {
        let t = Topology::new(4, 3);
        let idx: Vec<usize> = t.workers().map(|w| t.worker_index(w)).collect();
        assert_eq!(idx, (0..12).collect::<Vec<_>>());
        assert_eq!(t.total_workers(), 12);
    }

    #[test]
    fn ports_layout() {
        let t = Topology::new(2, 4);
        assert_eq!(t.ports_per_node(), 6);
        assert_eq!(t.sync_port(), 5);
        assert_eq!(Addr::server(NodeId(1)).port, SERVER_PORT);
        assert_eq!(Addr::worker(NodeId(1), 2).port, 3);
    }

    #[test]
    fn sync_rounds_log2() {
        assert_eq!(Topology::new(1, 1).sync_rounds(), 0);
        assert_eq!(Topology::new(2, 1).sync_rounds(), 1);
        assert_eq!(Topology::new(4, 1).sync_rounds(), 2);
        assert_eq!(Topology::new(5, 1).sync_rounds(), 3);
        assert_eq!(Topology::new(8, 1).sync_rounds(), 3);
        assert_eq!(Topology::new(16, 1).sync_rounds(), 4);
    }

    #[test]
    fn sync_partners_power_of_two() {
        let t = Topology::new(4, 1);
        // Round 0: 0<->1, 2<->3. Round 1: 0<->2, 1<->3.
        assert_eq!(t.sync_partner(NodeId(0), 0), Some(NodeId(1)));
        assert_eq!(t.sync_partner(NodeId(3), 0), Some(NodeId(2)));
        assert_eq!(t.sync_partner(NodeId(0), 1), Some(NodeId(2)));
        assert_eq!(t.sync_partner(NodeId(1), 1), Some(NodeId(3)));
    }

    #[test]
    fn sync_partners_non_power_of_two_skip_missing() {
        let t = Topology::new(3, 1);
        assert_eq!(t.sync_partner(NodeId(2), 0), None); // partner 3 absent
        assert_eq!(t.sync_partner(NodeId(0), 1), Some(NodeId(2)));
        // Partnering is symmetric where defined.
        for round in 0..t.sync_rounds() {
            for n in t.nodes() {
                if let Some(p) = t.sync_partner(n, round) {
                    assert_eq!(t.sync_partner(p, round), Some(n));
                }
            }
        }
    }
}
