//! Figure 8: raw scalability — epoch-run-time speedup over the
//! shared-memory single-node baseline on 1, 2, 4, 8 (and optionally 16)
//! nodes, for Petuum SSP/ESSP, Lapse, and NuPS untuned/tuned.
//!
//! Usage: cargo run --release -p nups-bench --bin fig8_raw_scalability -- \
//!   [--task kge|wv|mf] [--workers 2] [--max-nodes 8] [--scale small]

use nups_bench::report::{fmt_speedup, print_table, raw_speedup};
use nups_bench::{build_task, run, Args, RunConfig, VariantSpec};
use nups_sim::topology::Topology;

fn main() {
    let args = Args::parse();
    let wpn = args.get_u16("workers", 2);
    let max_nodes = args.get_u16("max-nodes", 8);
    let epochs = args.epochs(1); // Fig. 8 measures one epoch per point
    let node_counts: Vec<u16> =
        [1u16, 2, 4, 8, 16].into_iter().filter(|&n| n <= max_nodes).collect();

    for kind in args.tasks() {
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);

        println!("\n##### Figure 8 — raw scalability on {} #####", kind.name());
        // The baseline: 1 node with the same per-node worker count.
        let base_cfg = RunConfig::new(Topology::new(1, wpn), epochs);
        let single = run(&factory, &VariantSpec::single_node(), &base_cfg);

        let variants = |task_name: &str| {
            vec![
                VariantSpec::petuum_ssp(10),
                VariantSpec::petuum_essp(10),
                VariantSpec::lapse(),
                VariantSpec::nups_untuned(),
                VariantSpec::nups_tuned(task_name),
            ]
        };
        let task_name = kind.name();
        let mut rows = Vec::new();
        for v in variants(task_name) {
            let mut row = vec![v.name.clone()];
            for &n in &node_counts {
                eprintln!("[fig8] {} / {} / {n} nodes", task_name, v.name);
                let cfg = RunConfig::new(Topology::new(n, wpn), epochs);
                let r = run(&factory, &v, &cfg);
                row.push(fmt_speedup(Some(raw_speedup(&single, &r))));
            }
            rows.push(row);
        }
        let mut headers = vec!["system"];
        let hdr_nodes: Vec<String> = node_counts.iter().map(|n| format!("{n} nodes")).collect();
        headers.extend(hdr_nodes.iter().map(|s| s.as_str()));
        print_table(
            &format!("Figure 8 — raw speedup over single node ({task_name})"),
            &headers,
            &rows,
        );
    }
}
