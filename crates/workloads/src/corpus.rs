//! Synthetic text corpus (the One-Billion-Word-Benchmark substitute; see
//! DESIGN.md).
//!
//! What Word2Vec training exposes to the parameter server is (i) direct
//! access skewed by word frequency (Zipf, as in real text) and (ii)
//! sampling access from the unigram^0.75 noise distribution. This
//! generator reproduces both and plants *semantic clusters*: each sentence
//! is about one topic, and most of its words are drawn from that topic's
//! vocabulary. Skip-gram training then pulls same-topic embeddings
//! together, so the quality metric — cluster coherence, the synthetic
//! analogue of the paper's analogy accuracy — improves with training.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    pub vocab_size: usize,
    pub n_sentences: usize,
    pub sentence_len: usize,
    /// Planted topics.
    pub n_topics: usize,
    /// Zipf exponent of word frequencies (English text ≈ 1.0).
    pub zipf_alpha: f64,
    /// Probability a word ignores the sentence topic.
    pub noise: f64,
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            vocab_size: 10_000,
            n_sentences: 20_000,
            sentence_len: 12,
            n_topics: 20,
            zipf_alpha: 1.0,
            noise: 0.1,
            seed: 11,
        }
    }
}

/// A generated corpus.
#[derive(Debug)]
pub struct Corpus {
    pub config: CorpusConfig,
    pub sentences: Vec<Vec<u32>>,
    /// Corpus frequency of every word.
    pub word_counts: Vec<u64>,
    /// Planted topic of every word (evaluation only).
    pub word_topic: Vec<u16>,
}

impl Corpus {
    pub fn generate(config: CorpusConfig) -> Corpus {
        assert!(config.vocab_size >= config.n_topics && config.n_topics > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Word w has global popularity rank w and topic w % n_topics, so
        // popularity and topics are independent.
        let word_topic: Vec<u16> =
            (0..config.vocab_size).map(|w| (w % config.n_topics) as u16).collect();
        let mut topic_words: Vec<Vec<u32>> = vec![Vec::new(); config.n_topics];
        for (w, &t) in word_topic.iter().enumerate() {
            topic_words[t as usize].push(w as u32);
        }
        let global = Zipf::new(config.vocab_size, config.zipf_alpha);
        // Per-topic samplers that preserve the global popularity shape
        // within the topic.
        let per_topic: Vec<Zipf> = topic_words
            .iter()
            .map(|words| {
                Zipf::from_weights(words.iter().map(|&w| global.weights()[w as usize]).collect())
            })
            .collect();

        let mut word_counts = vec![0u64; config.vocab_size];
        let sentences: Vec<Vec<u32>> = (0..config.n_sentences)
            .map(|_| {
                let topic = rng.gen_range(0..config.n_topics);
                (0..config.sentence_len)
                    .map(|_| {
                        let w = if rng.gen::<f64>() < config.noise {
                            global.sample(&mut rng) as u32
                        } else {
                            topic_words[topic][per_topic[topic].sample(&mut rng)]
                        };
                        word_counts[w as usize] += 1;
                        w
                    })
                    .collect()
            })
            .collect();

        Corpus { config, sentences, word_counts, word_topic }
    }

    /// Total tokens in the corpus.
    pub fn n_tokens(&self) -> u64 {
        self.word_counts.iter().sum()
    }

    /// The noise distribution for negative sampling: unigram counts raised
    /// to 0.75, as in Mikolov et al. (the paper's WV task).
    pub fn noise_weights(&self) -> Vec<f64> {
        self.word_counts.iter().map(|&c| (c as f64).powf(0.75)).collect()
    }

    /// Word frequencies as direct-access statistics for the technique
    /// heuristic (input + output layer access are both frequency-driven).
    pub fn word_frequencies(&self) -> &[u64] {
        &self.word_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig {
            vocab_size: 500,
            n_sentences: 2000,
            sentence_len: 10,
            n_topics: 10,
            zipf_alpha: 1.0,
            noise: 0.1,
            seed: 3,
        })
    }

    #[test]
    fn shape_and_determinism() {
        let c = small();
        assert_eq!(c.sentences.len(), 2000);
        assert!(c.sentences.iter().all(|s| s.len() == 10));
        assert_eq!(c.n_tokens(), 20_000);
        let d = small();
        assert_eq!(c.sentences, d.sentences);
    }

    #[test]
    fn word_frequencies_are_zipf_skewed() {
        let c = small();
        let mut sorted = c.word_counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().sum();
        let top1pct: u64 = sorted[..5].iter().sum();
        assert!(
            top1pct as f64 > 0.10 * total as f64,
            "top-1% share {:.3}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn sentences_are_topically_coherent() {
        let c = small();
        // In most sentences, a plurality of words share one topic.
        let coherent = c
            .sentences
            .iter()
            .filter(|s| {
                let mut counts = vec![0u32; c.config.n_topics];
                for &w in s.iter() {
                    counts[c.word_topic[w as usize] as usize] += 1;
                }
                let max = *counts.iter().max().unwrap();
                max as usize * 2 > s.len()
            })
            .count();
        assert!(
            coherent as f64 > 0.8 * c.sentences.len() as f64,
            "coherent share {:.3}",
            coherent as f64 / c.sentences.len() as f64
        );
    }

    #[test]
    fn noise_weights_flatten_the_distribution() {
        let c = small();
        let w = c.noise_weights();
        let f = &c.word_counts;
        // unigram^0.75 compresses the ratio between hot and cold words.
        let (hot, cold) = (0usize, 400usize);
        if f[cold] > 0 {
            let raw_ratio = f[hot] as f64 / f[cold] as f64;
            let noise_ratio = w[hot] / w[cold];
            assert!(noise_ratio < raw_ratio);
        }
    }
}
