//! Table 3: share of replicated keys, replica size, and share of accesses
//! to replicas for every replication factor (0, 1/64 … 256 of the untuned
//! heuristic's key count), for all three tasks.
//!
//! Static columns (key share, replica MB) are computed from the dataset
//! statistics; the access-share column runs one epoch per (task, factor)
//! unless `--static-only` is set. Figure 11's timing/quality view of the
//! same sweep lives in `fig11_technique_choice`.
//!
//! Usage: cargo run --release -p nups-bench --bin table3_replication -- \
//!   [--task kge|wv|mf] [--nodes 4] [--workers 2] [--scale small] [--static-only]

use nups_bench::report::print_table;
use nups_bench::runner::replicated_keys_for;
use nups_bench::variant::VariantKind;
use nups_bench::{build_task, run, Args, RunConfig, VariantSpec};

const FACTORS: [f64; 9] = [0.0, 1.0 / 64.0, 1.0 / 16.0, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0];

fn main() {
    let args = Args::parse();
    let topology = args.topology();
    let static_only = args.get_flag("static-only");

    for kind in args.tasks() {
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);
        let task = factory(topology);
        let cfg = RunConfig::new(topology, 1);

        let mut rows = Vec::new();
        for factor in FACTORS {
            let spec = VariantSpec::nups_replication_factor(factor);
            let VariantKind::Nups(v) = &spec.kind else { unreachable!() };
            let keys = replicated_keys_for(task.as_ref(), v);
            let key_share = 100.0 * keys.len() as f64 / task.n_keys() as f64;
            let replica_mb = keys.len() as f64 * task.value_len() as f64 * 4.0 / 1e6;
            let access_share = if static_only || keys.is_empty() {
                if keys.is_empty() {
                    Some(0.0)
                } else {
                    None
                }
            } else {
                eprintln!("[table3] {} / factor {factor}", kind.name());
                let r = run(&factory, &spec, &cfg);
                let total = r.metrics.local_pulls
                    + r.metrics.remote_pulls
                    + r.metrics.local_pushes
                    + r.metrics.remote_pushes;
                let repl = r.metrics.replica_pulls + r.metrics.replica_pushes;
                (total > 0).then(|| 100.0 * repl as f64 / total as f64)
            };
            rows.push(vec![
                format!("{factor}x"),
                format!("{}", keys.len()),
                format!("{key_share:.4}"),
                format!("{replica_mb:.2}"),
                access_share.map(|a| format!("{a:.0}%")).unwrap_or_else(|| "—".into()),
            ]);
        }
        print_table(
            &format!("Table 3 — {}", task.name()),
            &["factor", "replicated keys", "keys (%)", "replica MB", "accesses to replicas"],
            &rows,
        );
    }
}
