//! Vendored stand-in for the `bytes` crate (the build environment has no
//! network access to crates.io). Provides cheaply-cloneable immutable
//! [`Bytes`], growable [`BytesMut`], and the little-endian subset of the
//! [`Buf`]/[`BufMut`] traits this workspace's codec uses.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable byte buffer: a reference-counted
/// backing allocation plus a view window. Reads consume from the front by
/// advancing the window.
///
/// The backing store is an `Arc<Vec<u8>>` rather than an `Arc<[u8]>` so
/// that [`Bytes::from`]`(Vec<u8>)` — and therefore [`BytesMut::freeze`],
/// which every encoded message goes through — adopts the existing heap
/// allocation instead of copying it (`Arc<[u8]>::from` must re-allocate
/// to place the refcount header inline).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }

    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes { data: Arc::new(s.to_vec()), start: 0, end: s.len() }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer; `range` is relative to the current window.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    #[inline]
    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "advance past end of buffer");
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopts the Vec's allocation; no bytes are copied.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer; writes append at the back.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn clear(&mut self) {
        self.vec.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.vec).fmt(f)
    }
}

/// Read access to a byte buffer, consumed from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_f32_le(&mut self) -> f32;
    fn get_f64_le(&mut self) -> f64;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

macro_rules! get_le {
    ($self:ident, $ty:ty) => {{
        let n = std::mem::size_of::<$ty>();
        <$ty>::from_le_bytes($self.take_front(n).try_into().unwrap())
    }};
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        self.take_front(cnt);
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        get_le!(self, u16)
    }

    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }

    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }

    #[inline]
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let src = self.take_front(dst.len());
        dst.copy_from_slice(src);
    }
}

/// Write access to a byte buffer, appended at the back.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f32_le(&mut self, v: f32);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f32_le(1.5);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_is_a_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[1, 2]);
    }

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![9; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.len(), 1024);
    }
}
