//! Micro-benchmarks of the PS primitives: per-technique pull/push, the
//! sampling primitives, alias tables, the store, and the replica
//! all-reduce. These calibrate the cost model and catch performance
//! regressions in the hot paths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use nups_core::api::PsWorker;
use nups_core::config::NupsConfig;
use nups_core::replication::{ReplicaSet, ReplicaSync};
use nups_core::sampling::alias::AliasTable;
use nups_core::sampling::scheme::{ReuseParams, SamplingScheme};
use nups_core::sampling::DistributionKind;
use nups_core::store::Store;
use nups_core::system::ParameterServer;
use nups_core::value::ClipPolicy;
use nups_sim::cost::CostModel;
use nups_sim::metrics::ClusterMetrics;
use nups_sim::topology::{NodeId, Topology, WorkerId};
use nups_workloads::zipf::Zipf;

const VALUE_LEN: usize = 32;

fn bench_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("access");

    // Local relocated key (shared-memory fast path).
    {
        let cfg = NupsConfig::single_node(1, 1000, VALUE_LEN).with_cost(CostModel::zero());
        let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0f32; VALUE_LEN];
        g.bench_function("pull_local_relocated", |b| b.iter(|| w.pull(black_box(7), &mut buf)));
        g.bench_function("push_local_relocated", |b| {
            b.iter(|| w.push(black_box(7), black_box(&buf)))
        });
        drop(w);
        ps.shutdown();
    }

    // Replicated key.
    {
        let cfg = NupsConfig::nups(Topology::new(1, 1), 1000, VALUE_LEN)
            .with_cost(CostModel::zero())
            .with_replicated_keys(vec![7]);
        let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0f32; VALUE_LEN];
        g.bench_function("pull_replicated", |b| b.iter(|| w.pull(black_box(7), &mut buf)));
        g.bench_function("push_replicated", |b| b.iter(|| w.push(black_box(7), black_box(&buf))));
        drop(w);
        ps.shutdown();
    }

    // Remote key over the message protocol (classic PS, 2 nodes).
    {
        let cfg =
            NupsConfig::classic(Topology::new(2, 1), 1000, VALUE_LEN).with_cost(CostModel::zero());
        let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0f32; VALUE_LEN];
        // Key 900 is homed at node 1.
        g.bench_function("pull_remote_roundtrip", |b| b.iter(|| w.pull(black_box(900), &mut buf)));
        drop(w);
        ps.shutdown();
    }
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    let schemes: Vec<(&str, SamplingScheme)> = vec![
        ("independent", SamplingScheme::Independent),
        ("reuse_u16", SamplingScheme::Reuse(ReuseParams { pool_size: 250, use_frequency: 16 })),
        (
            "postponing_u16",
            SamplingScheme::ReuseWithPostponing(ReuseParams { pool_size: 250, use_frequency: 16 }),
        ),
        ("local", SamplingScheme::Local),
    ];
    for (name, scheme) in schemes {
        let cfg = NupsConfig::single_node(1, 10_000, VALUE_LEN).with_cost(CostModel::zero());
        let ps = ParameterServer::new(cfg, |_, v| v.fill(1.0));
        let dist =
            ps.register_distribution_with_scheme(0, 10_000, DistributionKind::Uniform, scheme);
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        g.bench_function(BenchmarkId::new("prepare_pull_100", name), |b| {
            b.iter(|| {
                let mut h = w.prepare_sample(dist, 100);
                black_box(w.pull_sample(&mut h, 100))
            })
        });
        drop(w);
        ps.shutdown();
    }
    g.finish();
}

fn bench_alias(c: &mut Criterion) {
    let mut g = c.benchmark_group("alias");
    let weights: Vec<f64> = (1..=100_000).map(|i| 1.0 / i as f64).collect();
    let alias = AliasTable::new(&weights);
    let cdf = Zipf::from_weights(weights.clone());
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_function("alias_sample", |b| b.iter(|| black_box(alias.sample(&mut rng))));
    g.bench_function("cdf_binary_search_sample", |b| b.iter(|| black_box(cdf.sample(&mut rng))));
    g.bench_function("alias_build_100k", |b| {
        b.iter(|| black_box(AliasTable::new(black_box(&weights.clone()))))
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    let store = Store::new(64);
    for k in 0..10_000u64 {
        store.seed(k, vec![0.0; VALUE_LEN]);
    }
    let mut i = 0u64;
    g.bench_function("with_local_update", |b| {
        b.iter(|| {
            i = (i + 7919) % 10_000;
            store.with_local(black_box(i), |v| v[0] += 1.0)
        })
    });
    g.bench_function("is_local", |b| {
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(store.is_local(black_box(i)))
        })
    });
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce");
    for n_nodes in [2u16, 4, 8] {
        let topo = Topology::new(n_nodes, 1);
        let init: Vec<(u64, Vec<f32>)> = (0..512).map(|k| (k, vec![0.0; VALUE_LEN])).collect();
        let sets: Vec<Arc<ReplicaSet>> =
            (0..n_nodes).map(|_| Arc::new(ReplicaSet::new(&init, ClipPolicy::None))).collect();
        let sync = ReplicaSync::new(sets.clone(), topo, CostModel::zero(), VALUE_LEN);
        let metrics = ClusterMetrics::new(n_nodes as usize);
        let delta = vec![0.1f32; VALUE_LEN];
        g.bench_function(BenchmarkId::new("sync_512_dirty", n_nodes), |b| {
            b.iter(|| {
                for s in &sets {
                    for slot in 0..512u32 {
                        assert!(s.push(slot, slot as u64, &delta));
                    }
                }
                black_box(sync.sync_once(&metrics))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_access, bench_sampling, bench_alias, bench_store, bench_allreduce);
criterion_main!(benches);
