//! Vendored stand-in for the `proptest` crate (the build environment has no
//! network access to crates.io). Implements the subset this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`/`prop_filter`,
//! strategies for primitive `any`, numeric ranges, tuples, and
//! [`collection::vec`], plus the `proptest!`, `prop_oneof!`, and
//! `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case prints its
//! inputs instead), and rejection sampling is bounded rather than tracked
//! globally. Case count comes from `PROPTEST_CASES` (default 64); seeds are
//! derived deterministically from the test name so failures reproduce.

use std::fmt::Debug;

pub use rand;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of test inputs. `generate` returns `None` when a filter
/// rejected the candidate; the runner retries.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred, reason }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    #[allow(dead_code)]
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Bounded local retry; the runner retries the whole case on None.
        for _ in 0..100 {
            if let Some(v) = self.inner.generate(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`] and
/// [`prop_oneof!`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.generate(rng)
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between strategies of a common value type; the engine
/// behind [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<V>(pub V);

impl<V: Clone + Debug> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> Option<V> {
        Some(self.0.clone())
    }
}

/// `any::<T>()` — the full value space of a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

#[derive(Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Primitive types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    /// Any bit pattern, NaN and infinities included (filter if unwanted).
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Sizes acceptable to [`vec`]: a fixed `usize`, `lo..hi`, or `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// `Vec`s of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Deterministic per-test seed so failures reproduce across runs.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cases = $crate::case_count();
            let mut rng = <$crate::TestRng as $crate::rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            let mut done: u32 = 0;
            let mut attempts: u32 = 0;
            while done < cases {
                attempts += 1;
                assert!(
                    attempts < cases.saturating_mul(20) + 1000,
                    "proptest {}: too many rejected samples",
                    stringify!($name)
                );
                $(
                    let $arg = match $crate::Strategy::generate(&$strat, &mut rng) {
                        Some(v) => v,
                        None => continue,
                    };
                )+
                done += 1;
                let case_desc =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {} failed on case {}: {}",
                        stringify!($name),
                        done,
                        case_desc
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tagged() -> impl Strategy<Value = (bool, u8)> {
        prop_oneof![(0u8..10).prop_map(|v| (false, v)), (100u8..110).prop_map(|v| (true, v)),]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn filters_apply(f in any::<f32>().prop_filter("finite", |f| f.is_finite())) {
            prop_assert!(f.is_finite());
        }

        #[test]
        fn oneof_arms_consistent(t in tagged()) {
            let (hi, v) = t;
            if hi {
                prop_assert!((100..110).contains(&v));
            } else {
                prop_assert!(v < 10);
            }
        }

        #[test]
        fn tuples_and_exact_size(pair in (0u8..4, 0u8..4), v in collection::vec(0u64..9, 6)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert_eq!(v.len(), 6);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }
}
