//! The virtual-time cost model.
//!
//! Every action in the simulated cluster is priced here: sending a message,
//! touching a key through shared memory, executing floating-point work, and
//! running one round of a recursive-doubling all-reduce. The defaults are
//! calibrated to the paper's hardware (Lenovo SR630 nodes, 100 Gbit
//! InfiniBand, ZeroMQ + protocol-buffer software stack); see DESIGN.md for
//! the calibration rationale. Experiments report *ratios* (speedups,
//! who-wins-where), which are insensitive to moderate miscalibration.

use crate::time::SimDuration;

/// Per-message framing overhead we charge on the wire, in bytes. Models the
/// ZeroMQ frame plus protobuf envelope of the original implementation.
pub const WIRE_HEADER_BYTES: usize = 32;

/// Prices for every simulated action.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// One-way network latency for a message, regardless of size.
    pub one_way_latency: SimDuration,
    /// Network bandwidth in bytes per second of virtual time.
    pub network_bandwidth: f64,
    /// Fixed cost of one key access through shared memory (latch + lookup).
    pub local_access: SimDuration,
    /// Memory bandwidth for copying values in and out of the store.
    pub memory_bandwidth: f64,
    /// Seconds of virtual time per floating-point operation.
    pub seconds_per_flop: f64,
    /// Cost of an intra-process message between co-located workers and
    /// servers. Petuum routes even node-local accesses through such
    /// messages, which is why it loses to shared-memory PSs on a single
    /// node (Section 5.4).
    pub intra_process_msg: SimDuration,
}

impl CostModel {
    /// Calibrated to the paper's cluster (see module docs).
    pub fn cluster_default() -> CostModel {
        CostModel {
            one_way_latency: SimDuration::from_micros(25),
            network_bandwidth: 10e9, // ~100 Gbit effective
            local_access: SimDuration::from_nanos(300),
            memory_bandwidth: 20e9,
            seconds_per_flop: 0.5e-9, // ~2 GFLOP/s scalar per worker
            intra_process_msg: SimDuration::from_micros(2),
        }
    }

    /// A slower commodity network (10 Gbit Ethernet class). Used by
    /// sensitivity tests.
    pub fn lan_slow() -> CostModel {
        CostModel {
            one_way_latency: SimDuration::from_micros(100),
            network_bandwidth: 1.2e9,
            ..CostModel::cluster_default()
        }
    }

    /// All costs zero; protocol tests use this so they assert on counters,
    /// not on timing.
    pub fn zero() -> CostModel {
        CostModel {
            one_way_latency: SimDuration::ZERO,
            network_bandwidth: f64::INFINITY,
            local_access: SimDuration::ZERO,
            memory_bandwidth: f64::INFINITY,
            seconds_per_flop: 0.0,
            intra_process_msg: SimDuration::ZERO,
        }
    }

    /// Time for `bytes` to cross the network, excluding latency.
    #[inline]
    pub fn transfer(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.network_bandwidth)
    }

    /// Full cost of one message of `payload_bytes` (latency + wire transfer,
    /// including framing overhead).
    #[inline]
    pub fn message(&self, payload_bytes: usize) -> SimDuration {
        self.one_way_latency + self.transfer(payload_bytes + WIRE_HEADER_BYTES)
    }

    /// Cost of a synchronous remote round trip: request out, response back.
    #[inline]
    pub fn round_trip(&self, request_bytes: usize, response_bytes: usize) -> SimDuration {
        self.message(request_bytes) + self.message(response_bytes)
    }

    /// Cost of reading or writing `bytes` of value data through shared
    /// memory (latch + copy).
    #[inline]
    pub fn shared_memory_access(&self, bytes: usize) -> SimDuration {
        self.local_access + SimDuration::from_secs_f64(bytes as f64 / self.memory_bandwidth)
    }

    /// Cost of `flops` floating-point operations on one worker.
    #[inline]
    pub fn compute(&self, flops: u64) -> SimDuration {
        SimDuration::from_secs_f64(flops as f64 * self.seconds_per_flop)
    }

    /// Duration of a one-to-many broadcast of one `payload_bytes` message to
    /// `peers` receivers. The sender serializes its sends onto the wire (the
    /// bandwidth term repeats per peer) but latency overlaps, so the charge
    /// is `peers` message costs — the pricing used for technique-migration
    /// promote broadcasts and demote notices.
    #[inline]
    pub fn broadcast(&self, peers: u16, payload_bytes: usize) -> SimDuration {
        self.message(payload_bytes) * peers as u64
    }

    /// Duration of one sparse all-reduce over `rounds` recursive-doubling
    /// rounds in which each node exchanges ~`bytes_per_round` with its
    /// partner. Rounds are sequential; sends within a round overlap.
    #[inline]
    pub fn allreduce(&self, rounds: u32, bytes_per_round: usize) -> SimDuration {
        self.message(bytes_per_round) * rounds as u64
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::cluster_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_prices_nothing() {
        let c = CostModel::zero();
        assert_eq!(c.message(1 << 20), SimDuration::ZERO);
        assert_eq!(c.round_trip(100, 100), SimDuration::ZERO);
        assert_eq!(c.shared_memory_access(4096), SimDuration::ZERO);
        assert_eq!(c.compute(1 << 30), SimDuration::ZERO);
        assert_eq!(c.allreduce(4, 1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn message_includes_latency_and_framing() {
        let c = CostModel::cluster_default();
        let small = c.message(0);
        assert!(small >= c.one_way_latency);
        // A 1 MiB payload at 10 GB/s adds ~105 us of transfer.
        let big = c.message(1 << 20);
        let extra = big - small;
        let expect = (1u64 << 20) as f64 / c.network_bandwidth;
        assert!((extra.as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn round_trip_is_two_messages() {
        let c = CostModel::cluster_default();
        assert_eq!(c.round_trip(64, 256), c.message(64) + c.message(256));
    }

    #[test]
    fn remote_access_dwarfs_local_access() {
        // The premise of the paper's analysis (Section 3.1): network access
        // is orders of magnitude more expensive than shared memory.
        let c = CostModel::cluster_default();
        let value_bytes = 500 * 4; // dim-500 embedding
        let local = c.shared_memory_access(value_bytes);
        let remote = c.round_trip(16, value_bytes);
        assert!(remote.as_nanos() > 20 * local.as_nanos());
    }

    #[test]
    fn framing_amortizes_across_batch_entries() {
        // The pricing lever behind the batched wire protocol: one message
        // carrying n entries pays the per-message latency and framing
        // overhead once, n single-entry messages pay them n times.
        let c = CostModel::cluster_default();
        let n = 32;
        let entry = 8 + 4 + 4 * 64; // key + length prefix + dim-64 value
        let batched = c.message(4 + n * entry);
        let singles = c.message(entry) * n as u64;
        assert!(batched < singles, "batched {batched:?} vs singles {singles:?}");
        let saved = singles - batched;
        let floor = (c.one_way_latency + c.transfer(WIRE_HEADER_BYTES)) * (n as u64 - 1);
        assert!(
            saved.as_nanos() + 1000 >= floor.as_nanos(),
            "must save ~(n-1) latencies + headers: saved {saved:?}, floor {floor:?}"
        );
    }

    #[test]
    fn broadcast_prices_one_message_per_peer() {
        let c = CostModel::cluster_default();
        assert_eq!(c.broadcast(3, 128), c.message(128) * 3);
        assert_eq!(c.broadcast(0, 128), SimDuration::ZERO);
    }

    #[test]
    fn allreduce_scales_with_rounds() {
        let c = CostModel::cluster_default();
        assert_eq!(c.allreduce(3, 1000), c.message(1000) * 3);
        assert_eq!(c.allreduce(0, 1000), SimDuration::ZERO);
    }
}
