//! One OS process per NuPS node, connected over real TCP sockets.
//!
//! Two modes:
//!
//! * **Node mode** (`--node-id K`): join the cluster. The process binds a
//!   data listener, rendezvouses on the coordinator address, runs the
//!   drift workload on its own node's workers, and participates in the
//!   distributed finalize protocol. Node 0 doubles as the coordinator and
//!   writes the assembled final model (`--model-out`) plus a JSON report
//!   (`--json`).
//! * **Launcher mode** (`--launch`): spawn the whole local process group
//!   for a loopback run — one child per node, all flags forwarded — and
//!   wait for every child to exit cleanly.
//!
//! Usage:
//!
//! ```text
//! # whole cluster on loopback, one process per node
//! nups-node --launch --nodes 2 --workers 2 --scale tiny --model-out model.txt
//!
//! # or each node by hand (e.g. across machines)
//! nups-node --node-id 0 --nodes 2 --workers 2 --scale tiny \
//!           --coordinator 127.0.0.1:4800 --model-out model.txt
//! nups-node --node-id 1 --nodes 2 --workers 2 --scale tiny \
//!           --coordinator 127.0.0.1:4800
//! ```
//!
//! Every process derives the identical workload, technique assignment and
//! initial model from (scale, topology) alone, so nothing but protocol
//! traffic ever crosses the wire. The final model node 0 writes is
//! bit-identical to an in-process run of the same scale and topology —
//! `throughput --fabric tcp --check` gates on exactly that.

use std::net::{SocketAddr, TcpListener};
use std::process::{Command, Stdio};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use nups_bench::drift_bench::{
    self, adaptive_ps_config, init_value, model_bits, ps_config, render_model, total_accesses,
    workload_for,
};
use nups_bench::json::Json;
use nups_bench::report::hists_json;
use nups_bench::Args;
use nups_core::runtime::Backend;
use nups_core::system::FinalizeOutcome;
use nups_core::{Deployment, ParameterServer};
use nups_net::{connect_cluster, ClusterOptions};
use nups_sim::metrics::ClusterMetrics;
use nups_sim::topology::NodeId;
use nups_sim::trace::Observability;

const FINALIZE_TIMEOUT: Duration = Duration::from_secs(60);

/// This process's observability bundle, reachable from the panic hook.
static OBS: OnceLock<Arc<Observability>> = OnceLock::new();

/// Install a panic hook that dumps the flight record (last events +
/// histogram snapshot) before the default hook prints the panic itself —
/// a crashed node leaves its last moments on stderr.
fn install_flight_recorder_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(obs) = OBS.get() {
            eprintln!("{}", obs.flight_record("panic"));
        }
        default(info);
    }));
}

fn main() {
    let args = Args::parse();
    install_flight_recorder_hook();
    let code = if args.get_flag("launch") { launch(&args) } else { run_node(&args) };
    std::process::exit(code);
}

/// Spawn one child process per node on loopback and await them all.
fn launch(args: &Args) -> i32 {
    let topo = args.topology();
    // Reserve an ephemeral rendezvous port. Binding and dropping has a
    // tiny reuse race, acceptable for loopback runs; explicit
    // `--coordinator` avoids it entirely.
    let coordinator = match args.get("coordinator") {
        Some(a) => a.to_string(),
        None => {
            let l = TcpListener::bind("127.0.0.1:0").expect("reserve rendezvous port");
            l.local_addr().expect("local addr").to_string()
        }
    };
    let exe = std::env::current_exe().expect("own executable path");
    let mut children = Vec::new();
    for node in topo.nodes() {
        let mut cmd = Command::new(&exe);
        cmd.arg("--node-id")
            .arg(node.0.to_string())
            .arg("--nodes")
            .arg(topo.n_nodes.to_string())
            .arg("--workers")
            .arg(topo.workers_per_node.to_string())
            .arg("--scale")
            .arg(args.scale().name())
            .arg("--coordinator")
            .arg(&coordinator)
            .stdin(Stdio::null());
        if args.get_flag("adaptive") {
            cmd.arg("--adaptive");
        }
        // Every node journals its own timeline; suffix the trace path so
        // the processes never race on one file.
        if let Some(path) = args.get("trace") {
            cmd.arg("--trace").arg(format!("{path}.node{}", node.0));
        }
        if node == NodeId(0) {
            if let Some(path) = args.get("model-out") {
                cmd.arg("--model-out").arg(path);
            }
            if let Some(path) = args.get("json") {
                cmd.arg("--json").arg(path);
            }
        }
        match cmd.spawn() {
            Ok(child) => children.push((node, child)),
            Err(e) => {
                eprintln!("[nups-node] failed to spawn node {node}: {e}");
                for (_, mut c) in children {
                    let _ = c.kill();
                }
                return 1;
            }
        }
    }

    // Babysit the group: if any child fails or the deadline passes, kill
    // the rest so a wedged cluster cannot outlive the launcher.
    let deadline = Instant::now() + Duration::from_secs(args.get_usize("timeout-secs", 300) as u64);
    let mut failed = false;
    while !children.is_empty() {
        let mut still_running = Vec::new();
        for (node, mut child) in children {
            match child.try_wait() {
                Ok(Some(status)) if status.success() => {}
                Ok(Some(status)) => {
                    eprintln!("[nups-node] node {node} exited with {status}");
                    failed = true;
                }
                Ok(None) => still_running.push((node, child)),
                Err(e) => {
                    eprintln!("[nups-node] wait for node {node} failed: {e}");
                    failed = true;
                }
            }
        }
        children = still_running;
        if (failed || Instant::now() >= deadline) && !children.is_empty() {
            if !failed {
                eprintln!("[nups-node] launch timed out; killing the process group");
            }
            for (_, child) in children.iter_mut() {
                let _ = child.kill();
            }
            for (_, mut child) in children {
                let _ = child.wait();
            }
            return 1;
        }
        if !children.is_empty() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    if failed {
        1
    } else {
        0
    }
}

/// Run one node of the cluster to completion.
fn run_node(args: &Args) -> i32 {
    let topo = args.topology();
    let scale = args.scale();
    let me = NodeId(args.get_u16("node-id", u16::MAX));
    if me.0 >= topo.n_nodes {
        eprintln!("[nups-node] --node-id must be in 0..{} (got {})", topo.n_nodes, me.0);
        return 2;
    }
    let coordinator: SocketAddr = match args.get("coordinator").map(str::parse) {
        Some(Ok(a)) => a,
        _ => {
            eprintln!("[nups-node] --coordinator HOST:PORT is required in node mode");
            return 2;
        }
    };

    let workload = workload_for(scale);
    let adaptive = args.get_flag("adaptive");
    let cfg =
        if adaptive { adaptive_ps_config(topo, &workload) } else { ps_config(topo, &workload) }
            .with_backend(Backend::WallClock);
    let metrics = Arc::new(ClusterMetrics::new(topo.n_nodes as usize));
    // One observability bundle for the whole process: the fabric's wire
    // histograms, the server's event journal, and the panic hook all
    // share it.
    let obs = Arc::new(Observability::new());
    let _ = OBS.set(Arc::clone(&obs));

    eprintln!(
        "[nups-node {me}] joining {}x{} cluster via {coordinator}",
        topo.n_nodes, topo.workers_per_node
    );
    let fabric = match connect_cluster(
        &ClusterOptions::new(me, topo, coordinator),
        Arc::clone(&metrics),
        Arc::clone(&obs),
    ) {
        Ok(f) => Arc::new(f),
        Err(e) => {
            eprintln!("[nups-node {me}] bootstrap failed: {e}");
            eprintln!("{}", obs.flight_record(&format!("bootstrap failed: {e}")));
            return 1;
        }
    };
    let ps = ParameterServer::deploy(
        cfg,
        fabric,
        metrics,
        Arc::clone(&obs),
        Deployment::SingleNode(me),
        init_value,
    );

    let start = Instant::now();
    let run = drift_bench::run_phases_timed(&ps, &workload);
    let epoch_times = &run.epoch_times;
    let elapsed = start.elapsed();
    eprintln!("[nups-node {me}] workload done in {elapsed:?}; finalizing");

    let outcome = ps.finalize_distributed(FINALIZE_TIMEOUT);
    if let Some(path) = args.get("trace") {
        std::fs::write(path, ps.observability().chrome_trace()).expect("write trace");
        eprintln!("[nups-node {me}] wrote trace to {path}");
    }
    let code = match outcome {
        FinalizeOutcome::Model(model) => {
            let bits = model_bits(model);
            if let Some(path) = args.get("model-out") {
                std::fs::write(path, render_model(&bits)).expect("write model");
                eprintln!("[nups-node {me}] wrote final model to {path}");
            }
            if let Some(path) = args.get("json") {
                let accesses = total_accesses(&workload, topo);
                let m = ps.metrics_of(me);
                let mean_epoch_us = epoch_times.iter().map(|d| d.as_nanos() / 1_000).sum::<u64>()
                    / epoch_times.len().max(1) as u64;
                let report = Json::obj()
                    .set("bench", "nups-node")
                    .set("scale", scale.name())
                    .set("topology", format!("{}x{}", topo.n_nodes, topo.workers_per_node).as_str())
                    .set("fabric", "tcp")
                    .set("elapsed_us", elapsed.as_micros() as u64)
                    .set("mean_epoch_us", mean_epoch_us)
                    .set("accesses", accesses)
                    .set("keys_per_sec", accesses as f64 / elapsed.as_secs_f64().max(1e-9))
                    // Wall latency of this node's pull_many/push_many calls.
                    .set("p50_op_us", run.op_percentile_us(50.0))
                    .set("p99_op_us", run.op_percentile_us(99.0))
                    // Wire-path counters (this process's writers/readers):
                    // how well the send path coalesced and how often the
                    // buffer pool served I/O scratch without allocating.
                    .set("fabric_writes_node0", m.fabric_writes)
                    .set("fabric_frames_node0", m.fabric_frames)
                    .set("writer_wakeups_node0", m.writer_wakeups)
                    .set("pool_hits_node0", m.pool_hits)
                    .set("pool_misses_node0", m.pool_misses)
                    .set("frames_per_write_1", m.frames_per_write_1)
                    .set("frames_per_write_2_3", m.frames_per_write_2_3)
                    .set("frames_per_write_4_7", m.frames_per_write_4_7)
                    .set("frames_per_write_8_15", m.frames_per_write_8_15)
                    .set("frames_per_write_16_plus", m.frames_per_write_16_plus)
                    // Coordinator-process traffic (per-node view; the other
                    // nodes' counters live in their own processes).
                    .set("msgs_node0", m.msgs_sent)
                    .set("bytes_node0", m.bytes_sent)
                    .set("relocations_node0", m.relocations)
                    .set("sync_rounds_node0", m.sync_rounds)
                    .set("remote_accesses_node0", m.remote_pulls + m.remote_pushes)
                    .set("promotions_node0", m.promotions)
                    .set("demotions_node0", m.demotions)
                    .set("adaptation_rounds", m.adaptation_rounds)
                    // Per-op latency histograms (this process's lanes).
                    .set("hists", hists_json(&ps.observability().hists.snapshot()));
                std::fs::write(path, report.render()).expect("write json report");
                eprintln!("[nups-node {me}] wrote {path}");
            }
            0
        }
        FinalizeOutcome::Released => 0,
        FinalizeOutcome::TimedOut => {
            eprintln!("[nups-node {me}] finalize timed out");
            1
        }
    };
    ps.shutdown();
    eprintln!("[nups-node {me}] done");
    code
}
