//! # nups-workloads — synthetic workloads with the paper's characteristics
//!
//! The NuPS paper evaluates on Wikidata5M, the One Billion Word Benchmark
//! and a synthetic zipf-1.1 matrix. The first two are large external
//! datasets; this crate substitutes synthetic generators that reproduce
//! exactly the properties the parameter server is sensitive to — skewed
//! direct access, the sampling distributions, dataset-derived frequency
//! statistics — while planting recoverable structure so model-quality
//! curves remain meaningful. See `DESIGN.md` for the substitution
//! rationale, and [`trace`] for the skew statistics of Figure 3 / Table 2.

pub mod corpus;
pub mod drift;
pub mod kg;
pub mod matrix;
pub mod partition;
pub mod trace;
pub mod zipf;

pub use corpus::{Corpus, CorpusConfig};
pub use drift::{DriftConfig, DriftingHotspots};
pub use kg::{KgConfig, KnowledgeGraph, Triple};
pub use matrix::{Cell, MatrixConfig, MatrixData};
pub use trace::AccessTrace;
pub use zipf::{zipf_weights, Zipf};
