//! Cross-crate consistency tests: the guarantees Section 3 claims for each
//! management technique, exercised under real thread concurrency.

use nups::core::system::run_epoch;
use nups::core::{NupsConfig, ParameterServer, PsWorker};
use nups::sim::cost::CostModel;
use nups::sim::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn zero_cost(cfg: NupsConfig) -> NupsConfig {
    cfg.with_cost(CostModel::zero())
}

/// Relocated keys provide per-key sequential consistency: concurrent
/// additive pushes from every worker on every node must all be applied
/// exactly once, while localize storms bounce ownership around.
#[test]
fn relocation_under_churn_loses_no_updates() {
    let topo = Topology::new(4, 2);
    let n_keys = 16u64;
    let rounds = 200u64;
    let cfg = zero_cost(NupsConfig::lapse(topo, n_keys, 1));
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    let mut workers = ps.workers();
    run_epoch(&mut workers, |i, w| {
        let mut rng = SmallRng::seed_from_u64(i as u64);
        for round in 0..rounds {
            let key = rng.gen_range(0..n_keys);
            // Aggressive churn: one in four operations first relocates.
            if round % 4 == 0 {
                w.localize(&[key]);
            }
            w.push(key, &[1.0]);
        }
    });
    drop(workers);
    let total: f32 = (0..n_keys).map(|k| ps.read_value(k)[0]).sum();
    assert_eq!(total, (topo.total_workers() as u64 * rounds) as f32);
    ps.shutdown();
}

/// Replicated keys converge to the exact sum of all pushed deltas after a
/// final synchronization, including under concurrent pushes from all
/// nodes.
#[test]
fn replication_converges_to_exact_sum() {
    let topo = Topology::new(4, 2);
    let cfg = zero_cost(NupsConfig::nups(topo, 8, 2).with_replicated_keys(vec![0, 1, 2]));
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    let mut workers = ps.workers();
    run_epoch(&mut workers, |_, w| {
        for _ in 0..500 {
            w.push(0, &[1.0, -1.0]);
            w.push(2, &[0.5, 0.5]);
        }
    });
    drop(workers);
    ps.flush_replicas();
    let n = topo.total_workers() as f32;
    assert_eq!(ps.read_value(0), vec![500.0 * n, -500.0 * n]);
    assert_eq!(ps.read_value(1), vec![0.0, 0.0]);
    assert_eq!(ps.read_value(2), vec![250.0 * n, 250.0 * n]);
    ps.shutdown();
}

/// Classic mode (relocation disabled) must produce the same final model as
/// relocation mode for the same sequential workload: management technique
/// changes performance, not semantics.
#[test]
fn classic_and_lapse_agree_on_sequential_workload() {
    let run = |relocation: bool| -> Vec<Vec<f32>> {
        let mut cfg = zero_cost(NupsConfig::lapse(Topology::new(2, 1), 10, 2));
        cfg.relocation_enabled = relocation;
        let ps = ParameterServer::new(cfg, |k, v| v.fill(k as f32));
        let mut workers = ps.workers();
        run_epoch(&mut workers, |i, w| {
            // Worker i touches a disjoint key slice: fully deterministic.
            let base = i as u64 * 5;
            for round in 0..50 {
                for k in base..base + 5 {
                    if round % 10 == 0 {
                        w.localize(&[k]);
                    }
                    w.push(k, &[1.0, 2.0]);
                }
            }
        });
        drop(workers);
        let all = ps.read_all();
        ps.shutdown();
        all
    };
    assert_eq!(run(true), run(false));
}

/// Mixed techniques coexist: replicated and relocated keys interleaved in
/// one workload, both exact after the final flush.
#[test]
fn mixed_technique_workload_is_exact() {
    let topo = Topology::new(2, 2);
    let cfg = zero_cost(NupsConfig::nups(topo, 20, 1).with_replicated_keys(vec![0, 10]));
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    let mut workers = ps.workers();
    run_epoch(&mut workers, |i, w| {
        let mut rng = SmallRng::seed_from_u64(42 + i as u64);
        for _ in 0..300 {
            let replicated_key = if rng.gen() { 0 } else { 10 };
            w.push(replicated_key, &[1.0]);
            let relocated_key = rng.gen_range(1..10u64);
            if rng.gen_ratio(1, 8) {
                w.localize(&[relocated_key]);
            }
            w.push(relocated_key, &[1.0]);
        }
    });
    drop(workers);
    ps.flush_replicas();
    let total: f32 = (0..20).map(|k| ps.read_value(k)[0]).sum();
    // 300 replicated + 300 relocated pushes per worker.
    assert_eq!(total, (topo.total_workers() * 600) as f32);
    ps.shutdown();
}

/// Workers blocked on in-flight transfers (relocation conflicts) must not
/// deadlock even when every worker fights over a single key.
#[test]
fn single_hot_key_contention_terminates() {
    let topo = Topology::new(4, 2);
    let cfg = zero_cost(NupsConfig::lapse(topo, 1, 4));
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    let mut workers = ps.workers();
    run_epoch(&mut workers, |_, w| {
        let mut buf = vec![0.0; 4];
        for _ in 0..100 {
            w.localize(&[0]);
            w.pull(0, &mut buf);
            w.push(0, &[1.0; 4]);
        }
    });
    drop(workers);
    assert_eq!(ps.read_value(0), vec![800.0; 4]);
    let m = ps.metrics();
    assert!(m.relocations > 0, "hot key never moved");
    ps.shutdown();
}
