//! Walker/Vose alias tables: O(1) draws from an arbitrary discrete
//! distribution.
//!
//! Sampling managers draw millions of keys per second, so the per-draw cost
//! must be constant. The alias method preprocesses a weight vector into two
//! arrays (`prob`, `alias`) in O(n); each draw costs one uniform index, one
//! uniform float and one comparison.

use rand::Rng;

/// A preprocessed discrete distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (they need not sum to 1). Panics on
    /// an empty table, all-zero weights, or non-finite weights.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one outcome");
        assert!(weights.len() <= u32::MAX as usize, "alias table outcome space exceeds u32");
        let n = weights.len();
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        // Scaled probabilities; mean = 1.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        // Vose's stack-based construction.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Large donor gives away the deficit of the small slot.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining is (within rounding)
        // exactly 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Uniform distribution over `0..n` (fast path: no table scan needed,
    /// but keeping one type simplifies callers).
    pub fn uniform(n: usize) -> AliasTable {
        assert!(n > 0);
        AliasTable { prob: vec![1.0; n], alias: (0..n as u32).collect() }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chi_square_ok(weights: &[f64], draws: usize, seed: u64) -> bool {
        let table = AliasTable::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        let mut chi2 = 0.0;
        let mut dof = 0usize;
        for (c, w) in counts.iter().zip(weights) {
            let expect = w / total * draws as f64;
            if expect >= 5.0 {
                chi2 += (*c as f64 - expect).powi(2) / expect;
                dof += 1;
            }
        }
        // Loose bound: chi2 should be near dof; 2x + slack is a ~always-pass
        // threshold for a correct sampler and a ~always-fail one for a
        // substantially wrong sampler.
        chi2 < 2.0 * dof as f64 + 20.0
    }

    #[test]
    fn uniform_frequencies_match() {
        assert!(chi_square_ok(&[1.0; 16], 160_000, 1));
    }

    #[test]
    fn skewed_frequencies_match() {
        let w: Vec<f64> = (1..=32).map(|i| 1.0 / i as f64).collect();
        assert!(chi_square_ok(&w, 320_000, 2));
    }

    #[test]
    fn two_point_extreme_skew() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = AliasTable::new(&[0.999, 0.001]);
        let hits = (0..100_000).filter(|_| t.sample(&mut rng) == 1).count();
        // Expect ~100.
        assert!(hits > 40 && hits < 250, "hits={hits}");
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = AliasTable::new(&[1.0, 0.0, 1.0, 0.0]);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 0 || s == 2);
        }
    }

    #[test]
    fn single_outcome() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = AliasTable::new(&[42.0]);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn uniform_constructor_matches_weighted_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = AliasTable::uniform(8);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 800, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_panics() {
        AliasTable::new(&[1.0, f64::NAN]);
    }
}
