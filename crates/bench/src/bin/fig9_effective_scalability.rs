//! Figure 9: effective scalability — speedup w.r.t. reaching 90% of the
//! best single-node model quality, for NuPS untuned and tuned on 1, 2, 4,
//! 8 (and optionally 16) nodes.
//!
//! Usage: cargo run --release -p nups-bench --bin fig9_effective_scalability -- \
//!   [--task kge|wv|mf] [--workers 2] [--max-nodes 8] [--epochs 8] [--scale small]

use nups_bench::report::{effective_speedup, fmt_speedup, print_table};
use nups_bench::{build_task, run, Args, RunConfig, VariantSpec};
use nups_sim::topology::Topology;

fn main() {
    let args = Args::parse();
    let wpn = args.get_u16("workers", 2);
    let max_nodes = args.get_u16("max-nodes", 8);
    let epochs = args.epochs(8);
    let node_counts: Vec<u16> =
        [1u16, 2, 4, 8, 16].into_iter().filter(|&n| n <= max_nodes).collect();

    for kind in args.tasks() {
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);
        let task = factory(Topology::new(1, wpn));
        let dir = task.quality_direction();

        println!("\n##### Figure 9 — effective scalability on {} #####", kind.name());
        let base_cfg = RunConfig::new(Topology::new(1, wpn), epochs);
        let single = run(&factory, &VariantSpec::single_node(), &base_cfg);

        let mut rows = Vec::new();
        for v in [VariantSpec::nups_untuned(), VariantSpec::nups_tuned(kind.name())] {
            let mut row = vec![v.name.clone()];
            for &n in &node_counts {
                eprintln!("[fig9] {} / {} / {n} nodes", kind.name(), v.name);
                let cfg = RunConfig::new(Topology::new(n, wpn), epochs);
                let r = run(&factory, &v, &cfg);
                row.push(fmt_speedup(effective_speedup(&single, &r, dir)));
            }
            rows.push(row);
        }
        let mut headers = vec!["system"];
        let hdr_nodes: Vec<String> = node_counts.iter().map(|n| format!("{n} nodes")).collect();
        headers.extend(hdr_nodes.iter().map(|s| s.as_str()));
        print_table(
            &format!("Figure 9 — effective speedup over single node ({})", kind.name()),
            &headers,
            &rows,
        );
    }
}
