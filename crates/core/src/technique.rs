//! Per-key management-technique assignment (Section 3.2).
//!
//! NuPS manages each key with one of two techniques: *replication* for hot
//! spots, *relocation* for the long tail. The assignment is decided before
//! training from dataset access statistics and is immutable at run time; the
//! technique check on the hot path is therefore a plain array read with no
//! synchronization.

use crate::key::Key;

/// The management technique for one key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Technique {
    /// Lapse-style dynamic allocation: one owner at a time, asynchronous
    /// relocation, per-key sequential consistency.
    Relocated = 0,
    /// Eager replication on every node with time-based staleness bounds.
    Replicated = 1,
}

/// Immutable key → technique table, plus a dense index for replicated keys.
#[derive(Debug, Clone)]
pub struct TechniqueMap {
    techniques: Vec<u8>,
    /// Replica slot of each key (`u32::MAX` when not replicated).
    replica_slot: Vec<u32>,
    /// Keys in replica-slot order.
    replicated_keys: Vec<Key>,
}

impl TechniqueMap {
    /// All keys relocated (a pure relocation PS; with relocation disabled at
    /// the server, a classic PS).
    pub fn all_relocated(n_keys: u64) -> TechniqueMap {
        Self::from_replicated_keys(n_keys, &[])
    }

    /// All keys replicated (a pure replication PS).
    pub fn all_replicated(n_keys: u64) -> TechniqueMap {
        let keys: Vec<Key> = (0..n_keys).collect();
        Self::from_replicated_keys(n_keys, &keys)
    }

    /// Replicate exactly `replicated` (deduplicated), relocate the rest.
    pub fn from_replicated_keys(n_keys: u64, replicated: &[Key]) -> TechniqueMap {
        let mut techniques = vec![Technique::Relocated as u8; n_keys as usize];
        let mut replica_slot = vec![u32::MAX; n_keys as usize];
        let mut replicated_keys = Vec::with_capacity(replicated.len());
        for &k in replicated {
            assert!(k < n_keys, "replicated key {k} outside key space");
            if replica_slot[k as usize] == u32::MAX {
                replica_slot[k as usize] = replicated_keys.len() as u32;
                techniques[k as usize] = Technique::Replicated as u8;
                replicated_keys.push(k);
            }
        }
        TechniqueMap { techniques, replica_slot, replicated_keys }
    }

    #[inline]
    pub fn technique(&self, key: Key) -> Technique {
        if self.techniques[key as usize] == Technique::Replicated as u8 {
            Technique::Replicated
        } else {
            Technique::Relocated
        }
    }

    /// Dense replica slot of a replicated key.
    #[inline]
    pub fn replica_slot(&self, key: Key) -> Option<u32> {
        let s = self.replica_slot[key as usize];
        (s != u32::MAX).then_some(s)
    }

    #[inline]
    pub fn is_replicated(&self, key: Key) -> bool {
        self.techniques[key as usize] == Technique::Replicated as u8
    }

    /// Keys in replica-slot order.
    pub fn replicated_keys(&self) -> &[Key] {
        &self.replicated_keys
    }

    pub fn n_replicated(&self) -> usize {
        self.replicated_keys.len()
    }

    pub fn n_keys(&self) -> u64 {
        self.techniques.len() as u64
    }
}

/// Decide which keys to replicate from access-frequency statistics.
///
/// The paper's *untuned heuristic* (Section 5.1): replicate a key if its
/// access frequency exceeds `100 ×` the mean access frequency. The
/// experiments of Section 5.6 additionally sweep the *number* of replicated
/// keys by factors of the heuristic's choice, implemented here as
/// [`top_k_by_frequency`].
pub fn heuristic_replicated_keys(frequencies: &[u64]) -> Vec<Key> {
    let n = frequencies.len();
    if n == 0 {
        return Vec::new();
    }
    let total: u128 = frequencies.iter().map(|&f| f as u128).sum();
    let threshold = 100.0 * (total as f64 / n as f64);
    let mut keys: Vec<Key> = frequencies
        .iter()
        .enumerate()
        .filter(|(_, &f)| f as f64 > threshold)
        .map(|(k, _)| k as Key)
        .collect();
    // Deterministic order: hottest first.
    keys.sort_by_key(|&k| std::cmp::Reverse(frequencies[k as usize]));
    keys
}

/// The `k` most frequently accessed keys (hottest first). Ties break by key
/// for determinism.
pub fn top_k_by_frequency(frequencies: &[u64], k: usize) -> Vec<Key> {
    let mut keys: Vec<Key> = (0..frequencies.len() as u64).collect();
    keys.sort_by_key(|&key| (std::cmp::Reverse(frequencies[key as usize]), key));
    keys.truncate(k);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_replicated_keys_builds_dense_slots() {
        let tm = TechniqueMap::from_replicated_keys(10, &[7, 2, 7]);
        assert_eq!(tm.n_replicated(), 2);
        assert_eq!(tm.technique(7), Technique::Replicated);
        assert_eq!(tm.technique(2), Technique::Replicated);
        assert_eq!(tm.technique(0), Technique::Relocated);
        assert_eq!(tm.replica_slot(7), Some(0));
        assert_eq!(tm.replica_slot(2), Some(1));
        assert_eq!(tm.replica_slot(0), None);
        assert_eq!(tm.replicated_keys(), &[7, 2]);
    }

    #[test]
    fn all_relocated_and_all_replicated() {
        let a = TechniqueMap::all_relocated(5);
        assert_eq!(a.n_replicated(), 0);
        let b = TechniqueMap::all_replicated(5);
        assert_eq!(b.n_replicated(), 5);
        assert!(b.is_replicated(4));
    }

    #[test]
    fn heuristic_picks_hot_spots_only() {
        // 1000 cold keys at frequency 1, two hot keys far above 100x mean.
        let mut freqs = vec![1u64; 1000];
        freqs[3] = 100_000;
        freqs[500] = 50_000;
        // Mean ~ 151; threshold ~ 15_100.
        let hot = heuristic_replicated_keys(&freqs);
        assert_eq!(hot, vec![3, 500]);
    }

    #[test]
    fn heuristic_no_hot_spots_on_uniform_access() {
        let freqs = vec![10u64; 100];
        assert!(heuristic_replicated_keys(&freqs).is_empty());
    }

    #[test]
    fn top_k_orders_by_frequency_then_key() {
        let freqs = vec![5, 9, 9, 1, 7];
        assert_eq!(top_k_by_frequency(&freqs, 3), vec![1, 2, 4]);
        assert_eq!(top_k_by_frequency(&freqs, 0), Vec::<Key>::new());
        assert_eq!(top_k_by_frequency(&freqs, 99).len(), 5);
    }

    #[test]
    fn heuristic_empty_input() {
        assert!(heuristic_replicated_keys(&[]).is_empty());
    }
}
