//! Adaptive technique management, end to end: online hot-key detection,
//! live replication ↔ relocation migration at synchronization rendezvous,
//! exactness under migration races, determinism, and the headline claim —
//! on a drifting-hotspot workload the adaptive assignment beats the
//! paper's static pre-training assignment.

use nups::core::adaptive::AdaptiveConfig;
use nups::core::system::run_epoch;
use nups::core::technique::heuristic_replicated_keys;
use nups::core::{NupsConfig, ParameterServer, PsWorker};
use nups::sim::metrics::MetricsSnapshot;
use nups::sim::time::{SimDuration, SimTime};
use nups::sim::topology::Topology;
use nups::workloads::drift::{DriftConfig, DriftingHotspots};

const N_KEYS: u64 = 1024;
const VALUE_LEN: usize = 4;
const N_NODES: u16 = 4;

fn drift_workload() -> DriftingHotspots {
    DriftingHotspots::new(DriftConfig {
        n_keys: N_KEYS,
        hot_keys: 4,
        hot_share: 0.9,
        phases: 3,
        batches_per_phase: 80,
        batch: 8,
        seed: 7,
    })
}

/// The test-scale adaptation config: adapt every other merge, with
/// thresholds low enough that both the drifting hot keys (~230× the mean
/// frequency) and the per-worker private keys (~30×) of the determinism
/// run cross them; 20×/5× keeps the paper-like 4:1 hysteresis.
fn adaptive_cfg() -> AdaptiveConfig {
    AdaptiveConfig {
        adapt_every: 2,
        promote_factor: 20.0,
        demote_factor: 5.0,
        sketch_bits: 12,
        ..AdaptiveConfig::default()
    }
}

/// Run the drifting workload on a static or adaptive NuPS and report
/// everything the comparisons need. Both variants start from the same
/// static assignment: the heuristic applied to phase-0 statistics —
/// exactly the paper's "decide before training" choice, which the drift
/// invalidates from phase 1 on.
///
/// With `localize`, each worker additionally hammers (and periodically
/// localizes) one *private* key outside the drift range. Private keys are
/// touched by exactly one worker, so their relocation chains — including
/// the ones an adaptation boundary must wait out before promoting them —
/// are deterministic. (Localizing a *shared* key is real-time racy by
/// design, adaptive or not: a concurrent reader lands local or remote
/// depending on when the handover is processed. That race's exactness is
/// covered by `migration_racing_pushes_and_localizes_is_exact`.)
fn run_drift(
    adaptive: Option<AdaptiveConfig>,
    localize: bool,
) -> (SimTime, MetricsSnapshot, Vec<Vec<u32>>, u64) {
    let drift = drift_workload();
    let topo = Topology::new(N_NODES, 1);
    let freqs = drift.phase_frequencies(0, topo.total_workers());
    let initial = heuristic_replicated_keys(&freqs);
    assert!(!initial.is_empty(), "phase-0 hot keys must trip the static heuristic");
    let mut cfg = NupsConfig::nups(topo, N_KEYS + N_NODES as u64, VALUE_LEN)
        .with_replicated_keys(initial)
        .with_sync_period(SimDuration::from_micros(500));
    if let Some(a) = adaptive {
        cfg = cfg.with_adaptive(a);
    }
    let ps = ParameterServer::new(cfg, |k, v| v.fill(k as f32));
    let mut workers = ps.workers();
    for phase in 0..drift.config().phases {
        run_epoch(&mut workers, |i, w| {
            let private = N_KEYS + i as u64;
            for (b, batch) in drift.worker_batches(phase, i).into_iter().enumerate() {
                if localize {
                    if b % 8 == 0 {
                        w.localize(&[private]);
                    }
                    // Hammer the private key so it crosses the promotion
                    // threshold: localize chains then race — and must be
                    // waited out by — the promotion of the same key.
                    let mut out = vec![0.0f32; VALUE_LEN];
                    w.pull(private, &mut out);
                    w.push(private, &[0.01f32; VALUE_LEN]);
                }
                let mut out = vec![0.0f32; batch.len() * VALUE_LEN];
                w.pull_many(&batch, &mut out);
                let deltas = vec![0.01f32; batch.len() * VALUE_LEN];
                w.push_many(&batch, &deltas);
                w.charge_compute(2_000);
            }
        });
    }
    drop(workers);
    ps.flush_replicas();
    let model: Vec<Vec<u32>> =
        ps.read_all().into_iter().map(|v| v.into_iter().map(f32::to_bits).collect()).collect();
    let time = ps.virtual_time();
    let metrics = ps.metrics();
    let epoch = ps.technique_epoch();
    ps.shutdown();
    (time, metrics, model, epoch)
}

#[test]
fn adaptive_migrates_keys_as_the_hot_set_drifts() {
    let (_, m, _, epoch) = run_drift(Some(adaptive_cfg()), false);
    assert!(epoch > 0, "no adaptation round migrated anything");
    assert!(m.adaptation_rounds > 0);
    assert!(m.promotions > 0, "drifted hot keys must be promoted");
    assert!(m.demotions > 0, "stale hot keys must be demoted");
    assert!(m.migration_msgs > 0 && m.migration_bytes > 0, "migrations must be priced");
}

#[test]
fn static_assignment_never_migrates() {
    let (_, m, _, epoch) = run_drift(None, false);
    assert_eq!(epoch, 0);
    assert_eq!(m.promotions + m.demotions, 0);
    assert_eq!(m.adaptation_rounds, 0);
    assert_eq!(m.migration_msgs, 0);
}

#[test]
fn adaptive_beats_static_on_drifting_hotspots() {
    let (t_static, m_static, _, _) = run_drift(None, false);
    let (t_adaptive, m_adaptive, _, _) = run_drift(Some(adaptive_cfg()), false);
    // Count the priced migration traffic against the adaptive variant: the
    // win must survive its own overhead.
    let static_msgs = m_static.msgs_sent + m_static.migration_msgs;
    let adaptive_msgs = m_adaptive.msgs_sent + m_adaptive.migration_msgs;
    assert!(
        adaptive_msgs < static_msgs,
        "adaptive must need fewer messages: {adaptive_msgs} vs {static_msgs}"
    );
    assert!(t_adaptive < t_static, "adaptive must finish sooner: {t_adaptive:?} vs {t_static:?}");
    // And the remote traffic specifically should collapse: drifted hot
    // keys are served from replicas instead of remote round trips.
    assert!(
        m_adaptive.remote_pulls + m_adaptive.remote_pushes
            < (m_static.remote_pulls + m_static.remote_pushes) / 2,
        "remote accesses: adaptive {} vs static {}",
        m_adaptive.remote_pulls + m_adaptive.remote_pushes,
        m_static.remote_pulls + m_static.remote_pushes,
    );
}

#[test]
fn adaptive_runs_are_byte_identical() {
    let (t1, m1, s1, e1) = run_drift(Some(adaptive_cfg()), true);
    let (t2, m2, s2, e2) = run_drift(Some(adaptive_cfg()), true);
    assert_eq!(t1, t2, "virtual makespan must be deterministic under adaptation");
    assert_eq!(e1, e2, "adaptation epochs must be deterministic");
    assert_eq!(s1, s2, "model state must be bit-identical");
    let render = |m: &MetricsSnapshot| format!("{m:#?}");
    assert_eq!(render(&m1), render(&m2), "metrics must be byte-identical");
    assert!(m1.promotions > 0, "run too trivial to guard determinism of migration");
    assert!(m1.relocations > 0, "localize chains must actually race the adaptation boundaries");
}

/// Exactness under migration races: workers on every node hammer additive
/// pushes (plus relocation intents) onto keys that get promoted and later
/// demoted mid-run, with batched pushes in flight across the technique
/// flips. Every delta must land exactly once — a value lost at the
/// promotion take, double-applied via a replica, or stranded in a dropped
/// relocation would break the exact totals.
#[test]
fn migration_racing_pushes_and_localizes_is_exact() {
    let topo = Topology::new(2, 2);
    let cfg = NupsConfig::nups(topo, 16, 1)
        .with_sync_period(SimDuration::from_micros(200))
        .with_adaptive(AdaptiveConfig {
            adapt_every: 1,
            promote_factor: 4.0,
            demote_factor: 2.0,
            sketch_bits: 10,
            ..AdaptiveConfig::default()
        });
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    let mut workers = ps.workers();
    const ROUNDS: usize = 120;
    // Phase A hammers keys {0, 1}; phase B drifts to {2, 3} while still
    // occasionally batch-pushing the old hot keys (stragglers racing their
    // demotion). Localizes on the current hot keys keep relocation chains
    // in flight across promotion takes.
    for (hot, old) in [([0u64, 1], None), ([2, 3], Some([0u64, 1]))] {
        run_epoch(&mut workers, |i, w| {
            for round in 0..ROUNDS {
                if round % 20 == i {
                    w.localize(&hot);
                }
                w.push_many(&[hot[0], hot[1]], &[1.0, 1.0]);
                if let Some(old) = old {
                    if round % 10 == 0 {
                        w.push_many(&[old[0], old[1]], &[1.0, 1.0]);
                    }
                }
                w.charge_compute(50_000);
            }
        });
    }
    drop(workers);
    ps.flush_replicas();
    let m = ps.metrics();
    assert!(m.promotions > 0, "hot keys must have been promoted");
    assert!(m.demotions > 0, "drifted-away keys must have been demoted");
    let n_workers = 4.0;
    let expect_old = ROUNDS as f32 * n_workers + (ROUNDS as f32 / 10.0) * n_workers;
    let expect_new = ROUNDS as f32 * n_workers;
    assert_eq!(ps.read_value(0), vec![expect_old], "key 0 total");
    assert_eq!(ps.read_value(1), vec![expect_old], "key 1 total");
    assert_eq!(ps.read_value(2), vec![expect_new], "key 2 total");
    assert_eq!(ps.read_value(3), vec![expect_new], "key 3 total");
    ps.shutdown();
}
