//! # nups-sim — simulated-cluster substrate for NuPS
//!
//! The NuPS paper (SIGMOD 2022) evaluates on an 8–16 node InfiniBand
//! cluster. This crate substitutes that hardware with a deterministic
//! in-process simulation (see the repository's `DESIGN.md` for the full
//! substitution argument):
//!
//! * [`topology`] — cluster shape: nodes, workers, addresses, and the
//!   recursive-doubling schedule used by replica synchronization.
//! * [`net`] — a message fabric between (node, port) endpoints with exact
//!   per-node byte accounting. Protocol messages really are encoded to
//!   bytes ([`codec`]) before they cross it.
//! * [`time`] / [`cost`] / [`clock`] — the virtual-time machinery: every
//!   action is priced by a [`cost::CostModel`] and charged to per-worker
//!   [`clock::WorkerClock`]s; experiment "run time" is the virtual
//!   makespan.
//! * [`metrics`] — the counter registry every experiment reports from.
//! * [`hist`] / [`trace`] — the observability layer: log-linear latency
//!   histograms, the bounded event journal with deterministic Chrome
//!   trace export, and the flight recorder.
//!
//! The parameter-server protocols themselves live in `nups-core`; this
//! crate knows nothing about keys or parameters.

pub mod clock;
pub mod codec;
pub mod cost;
pub mod hist;
pub mod metrics;
pub mod net;
pub mod time;
pub mod topology;
pub mod trace;

pub use clock::{ClusterClocks, WorkerClock};
pub use codec::{CodecError, WireEncode};
pub use cost::CostModel;
pub use hist::{Hist, HistSnapshot, OpHists, OpHistsSnapshot};
pub use metrics::{ClusterMetrics, FreqSketch, Metrics, MetricsSnapshot};
pub use net::{Endpoint, Frame, Network};
pub use time::{SimDuration, SimTime};
pub use topology::{Addr, NodeId, Topology, WorkerId};
pub use trace::{Observability, TraceBuffer, TraceEvent};
