//! # NuPS — a parameter server for ML with non-uniform parameter access
//!
//! Rust reproduction of *NuPS: A Parameter Server for Machine Learning with
//! Non-Uniform Parameter Access* (Renz-Wieland, Gemulla, Kaoudi, Markl —
//! SIGMOD 2022). This facade crate re-exports the workspace:
//!
//! * [`sim`] — simulated-cluster substrate (virtual time, cost model,
//!   network fabric, metrics).
//! * [`core`] — the parameter server: multi-technique parameter management
//!   (replication + relocation), baseline PSs (Classic, SSP, ESSP, Lapse),
//!   and the sampling manager with its conformity levels.
//! * [`ml`] — the paper's ML tasks: ComplEx knowledge-graph embeddings,
//!   Word2Vec skip-gram with negative sampling, and matrix factorization.
//! * [`workloads`] — synthetic datasets with the paper's skew
//!   characteristics, plus access-trace tooling.
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for the
//! reproduction methodology.

pub use nups_core as core;
pub use nups_ml as ml;
pub use nups_sim as sim;
pub use nups_workloads as workloads;
