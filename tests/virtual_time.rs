//! Properties of the virtual-time performance model: determinism,
//! ordering between techniques, and the cost asymmetries the paper's
//! analysis in Section 3.1 relies on.

use nups::core::system::run_epoch;
use nups::core::{NupsConfig, ParameterServer, PsWorker};
use nups::sim::cost::CostModel;
use nups::sim::time::SimTime;
use nups::sim::topology::{NodeId, Topology, WorkerId};

/// A deterministic single-worker workload yields bit-identical virtual
/// time and model state across runs.
#[test]
fn single_worker_run_is_deterministic() {
    let run = || -> (SimTime, Vec<Vec<f32>>) {
        let cfg = NupsConfig::lapse(Topology::new(2, 1), 20, 2);
        let ps = ParameterServer::new(cfg, |k, v| v.fill(k as f32));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        let mut buf = vec![0.0f32; 2];
        for round in 0..30 {
            for k in 0..20u64 {
                if round % 5 == 0 {
                    w.localize(&[k]);
                }
                w.pull(k, &mut buf);
                w.push(k, &[0.5, 0.5]);
                w.charge_compute(1000);
            }
        }
        let t = w.now();
        drop(w);
        let model = ps.read_all();
        ps.shutdown();
        (t, model)
    };
    let (t1, m1) = run();
    let (t2, m2) = run();
    assert_eq!(t1, t2, "virtual time must be deterministic");
    assert_eq!(m1, m2, "model must be deterministic");
    assert!(t1 > SimTime::ZERO);
}

/// Section 3.1's cost ordering for a *remote* key: classic pays a round
/// trip per access; relocation pays once and then accesses locally;
/// replication pays nothing at access time.
#[test]
fn technique_cost_ordering_for_repeated_access() {
    let accesses = 100;
    let workload = |cfg: NupsConfig, localize_first: bool| -> u64 {
        let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
        let mut w = ps.worker(WorkerId { node: NodeId(0), local: 0 });
        // Key 9 is homed at node 1 of 2.
        if localize_first {
            w.localize(&[9]);
        }
        let mut buf = vec![0.0f32; 4];
        for _ in 0..accesses {
            w.pull(9, &mut buf);
            w.push(9, &[1.0; 4]);
        }
        let t = w.now().as_nanos();
        drop(w);
        ps.shutdown();
        t
    };
    let topo = Topology::new(2, 1);
    let classic = workload(NupsConfig::classic(topo, 10, 4), false);
    let lapse = workload(NupsConfig::lapse(topo, 10, 4), true);
    let nups_repl = workload(NupsConfig::nups(topo, 10, 4).with_replicated_keys(vec![9]), false);

    assert!(
        classic > 10 * lapse,
        "classic ({classic}ns) must dwarf relocation ({lapse}ns) on repeated access"
    );
    assert!(
        lapse > nups_repl,
        "relocation ({lapse}ns) must cost more than replication ({nups_repl}ns) here"
    );
    // Classic pays ~2 messages per access.
    let per_access = classic / accesses;
    let round_trip = CostModel::cluster_default().round_trip(50, 50).as_nanos();
    assert!(
        per_access as f64 > 0.8 * round_trip as f64,
        "classic per-access cost {per_access} vs round trip {round_trip}"
    );
}

/// More workers make the virtual epoch shorter when work is
/// embarrassingly parallel — the basis of every scalability figure.
#[test]
fn virtual_makespan_scales_with_workers() {
    let epoch_time = |workers: u16| -> u64 {
        let cfg = NupsConfig::single_node(workers, 64, 2);
        let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
        let mut ws = ps.workers();
        let total_points = 9600usize;
        let per_worker = total_points / workers as usize;
        run_epoch(&mut ws, |_, w| {
            let mut buf = vec![0.0f32; 2];
            for i in 0..per_worker {
                w.pull((i % 64) as u64, &mut buf);
                w.charge_compute(10_000);
            }
        });
        drop(ws);
        let t = ps.virtual_time().as_nanos();
        ps.shutdown();
        t
    };
    let t1 = epoch_time(1);
    let t4 = epoch_time(4);
    let speedup = t1 as f64 / t4 as f64;
    assert!(
        (3.5..=4.5).contains(&speedup),
        "expected ~4x virtual speedup from 4 workers, got {speedup:.2}"
    );
}

/// The congestion model: remote accesses get more expensive while replica
/// sync saturates the network (Section 5.6's bandwidth competition).
#[test]
fn sync_congestion_inflates_remote_access_cost() {
    // Run with an absurdly slow network so sync dominates the window and
    // the gate's busy fraction (the congestion multiplier input) engages.
    let topo = Topology::new(2, 1);
    let slow = CostModel { network_bandwidth: 1e4, ..CostModel::cluster_default() };
    let keys: Vec<u64> = (0..32).collect();
    let cfg = NupsConfig::nups(topo, 64, 8)
        .with_cost(slow)
        .with_replicated_keys(keys)
        .with_sync_period(nups::sim::time::SimDuration::from_micros(100));
    let ps = ParameterServer::new(cfg, |_, v| v.fill(0.0));
    let mut ws = ps.workers();
    run_epoch(&mut ws, |_, w| {
        for round in 0..50 {
            for k in 0..32u64 {
                w.push(k, &[1.0; 8]);
            }
            w.charge_compute(1_000_000);
            let _ = round;
        }
    });
    drop(ws);
    let stats = ps.sync_stats();
    assert!(stats.syncs_done > 0, "sync never ran");
    assert!(
        stats.total_sync_time.as_nanos() > 0,
        "sync must accumulate modelled time on a slow network"
    );
    ps.shutdown();
}
