//! The worker-facing parameter-server API.
//!
//! NuPS keeps the classic `pull`/`push` primitives, adds `localize` (from
//! relocation PSs like Lapse), keeps `advance_clock` (from replication PSs
//! like Petuum; a no-op on NuPS itself), and extends the API with the
//! sampling primitives of Section 4.3. `pull_many`/`push_many` expose
//! multi-key access so the PS can coalesce a minibatch's remote keys into
//! one request per destination node. ML tasks are written against this
//! trait so the same task code runs on every system variant the paper
//! compares.

use nups_sim::time::SimTime;

use crate::key::Key;
use crate::sampling::{DistId, SampleHandle};

/// One worker thread's handle onto a parameter server.
pub trait PsWorker: Send {
    /// Length of every parameter value on this server.
    fn value_len(&self) -> usize;

    /// Read the current value of `key` into `out`.
    fn pull(&mut self, key: Key, out: &mut [f32]);

    /// Additively apply `delta` to `key`.
    fn push(&mut self, key: Key, delta: &[f32]);

    /// Read the values of all of `keys` into `out` (concatenated:
    /// `keys.len() * value_len()` floats, request order). Batching
    /// implementations coalesce the remote subset into one request per
    /// destination node; the default falls back to per-key pulls.
    fn pull_many(&mut self, keys: &[Key], out: &mut [f32]) {
        let vl = self.value_len();
        for (i, &key) in keys.iter().enumerate() {
            self.pull(key, &mut out[i * vl..(i + 1) * vl]);
        }
    }

    /// Additively apply one delta per key (`deltas` concatenated as in
    /// [`PsWorker::pull_many`]). Duplicate keys apply once per occurrence.
    fn push_many(&mut self, keys: &[Key], deltas: &[f32]) {
        let vl = self.value_len();
        for (i, &key) in keys.iter().enumerate() {
            self.push(key, &deltas[i * vl..(i + 1) * vl]);
        }
    }

    /// Hint that this node is about to work on `keys` (asynchronous
    /// relocation; no-op on non-relocation servers).
    fn localize(&mut self, keys: &[Key]);

    /// Replication-PS clock advance (flushes buffered updates on SSP/ESSP;
    /// no-op on NuPS, which uses time-based staleness).
    fn advance_clock(&mut self);

    /// Charge `flops` of model computation to this worker's virtual clock.
    /// Tasks call this once per data point; it is also the hook where
    /// time-based replica synchronization happens.
    fn charge_compute(&mut self, flops: u64);

    /// `PrepareSample`: request `n` samples from a registered distribution.
    /// Returns instantly; preparatory work (drawing, pre-localization) is
    /// asynchronous or amortized.
    fn prepare_sample(&mut self, dist: DistId, n: usize) -> SampleHandle;

    /// `PullSample`: obtain up to `n` of the prepared samples with their
    /// current values. Partial pulls (`n` < remaining) give the server
    /// room to optimize (postponing, Section 4.4).
    fn pull_sample(&mut self, handle: &mut SampleHandle, n: usize) -> Vec<(Key, Vec<f32>)>;

    /// Begin an epoch: register with background machinery.
    fn begin_epoch(&mut self);

    /// End an epoch: deregister and flush.
    fn end_epoch(&mut self);

    /// This worker's position on the runtime's timeline: virtual time on
    /// the simulator backend, real elapsed time on the wall-clock backend.
    fn now(&self) -> SimTime;
}

impl<P: PsWorker + ?Sized> PsWorker for Box<P> {
    fn value_len(&self) -> usize {
        (**self).value_len()
    }
    fn pull(&mut self, key: Key, out: &mut [f32]) {
        (**self).pull(key, out)
    }
    fn push(&mut self, key: Key, delta: &[f32]) {
        (**self).push(key, delta)
    }
    fn pull_many(&mut self, keys: &[Key], out: &mut [f32]) {
        (**self).pull_many(keys, out)
    }
    fn push_many(&mut self, keys: &[Key], deltas: &[f32]) {
        (**self).push_many(keys, deltas)
    }
    fn localize(&mut self, keys: &[Key]) {
        (**self).localize(keys)
    }
    fn advance_clock(&mut self) {
        (**self).advance_clock()
    }
    fn charge_compute(&mut self, flops: u64) {
        (**self).charge_compute(flops)
    }
    fn prepare_sample(&mut self, dist: DistId, n: usize) -> SampleHandle {
        (**self).prepare_sample(dist, n)
    }
    fn pull_sample(&mut self, handle: &mut SampleHandle, n: usize) -> Vec<(Key, Vec<f32>)> {
        (**self).pull_sample(handle, n)
    }
    fn begin_epoch(&mut self) {
        (**self).begin_epoch()
    }
    fn end_epoch(&mut self) {
        (**self).end_epoch()
    }
    fn now(&self) -> SimTime {
        (**self).now()
    }
}
