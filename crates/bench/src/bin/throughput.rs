//! Throughput across execution modes: the same skewed minibatch workload
//! on the deterministic virtual-time simulator, on the in-process
//! wall-clock backend, and (with `--fabric tcp`) across real OS processes
//! connected by loopback TCP sockets.
//!
//! All modes must also *agree*: with integer-valued deltas every partial
//! sum is exact, so the final model is identical bit-for-bit no matter how
//! real scheduling interleaved the updates or which fabric carried them.
//! `--check` gates on that equivalence (the CI wall-clock and tcp-loopback
//! smoke jobs run it).
//!
//! Usage: cargo run --release -p nups-bench --bin throughput -- \
//!   [--scale tiny|small|medium] [--nodes 4] [--workers 2] \
//!   [--backend sim|wall|both] [--fabric tcp] [--adaptive] \
//!   [--json PATH] [--gate-json PATH] [--trace PATH] [--check]
//!
//! `--trace` exports each mode's event journal as Chrome trace-event JSON
//! (`PATH.sim`, `PATH.wall`, and `PATH.tcp.node<K>` per tcp process) —
//! load them in Perfetto / `chrome://tracing`. The sim-backend export is
//! deterministic: byte-identical across runs of the same scale/topology.
//!
//! `--adaptive` turns on the adaptive technique manager in every mode:
//! in-process runs adapt at the merge gate, the multi-process run uses the
//! leader-driven epoch protocol over the sockets. The `--check` contract
//! is unchanged — adaptation moves keys, it never loses deltas, so the
//! final models still agree bit for bit.
//!
//! `--json` writes a report in the standard bench shape. The wall-backend
//! and tcp numbers are real measurements and vary run to run, so this
//! report is uploaded as a CI artifact but not gated against a baseline.
//! `--gate-json` additionally writes a minimal socket-path report (keys/s
//! and the coalescing ratio) whose gated numeric leaves exactly match
//! `ci/bench-baseline-throughput-tcp.json`. p99 latency swings too wide
//! between quiet and contended hosts for a symmetric band, so it rides
//! along under `report_only` (with histogram-bucket metadata), which the
//! checker skips.
//!
//! `--fabric tcp` spawns the `nups-node` binary in launcher mode (one OS
//! process per node, rendezvous + full-mesh handshake on loopback) and
//! folds the multi-process run into the table, the report, and the check.

use std::time::Instant;

use nups_bench::drift_bench::{
    adaptive_ps_config, init_value, model_bits, parse_model, ps_config, run_phases_timed,
    total_accesses, workload_for,
};
use nups_bench::json::Json;
use nups_bench::report::print_table;
use nups_bench::{Args, Scale};
use nups_core::runtime::Backend;
use nups_core::ParameterServer;
use nups_sim::metrics::MetricsSnapshot;
use nups_sim::time::SimDuration;
use nups_sim::topology::Topology;
use nups_workloads::drift::DriftingHotspots;

struct ModeRun {
    /// Row label: backend name, or "tcp" for the multi-process run.
    mode: &'static str,
    /// Total run time on the mode's timeline (virtual or wall-clock).
    elapsed: SimDuration,
    /// Per-epoch times, when the mode reports them (empty for tcp: the
    /// launcher only observes whole-process time).
    epoch_times: Vec<SimDuration>,
    /// Key accesses performed (pulls + pushes).
    accesses: u64,
    /// Cluster-wide counters for in-process modes; the coordinator
    /// process's view for tcp.
    metrics: MetricsSnapshot,
    /// Wall-clock p50/p99 of individual pull/push calls (node 0's workers
    /// for tcp; all workers in-process). Microseconds.
    p50_op_us: u64,
    p99_op_us: u64,
    /// Bit patterns of the final model, for the cross-mode check.
    model: Vec<Vec<u32>>,
}

impl ModeRun {
    fn keys_per_sec(&self) -> f64 {
        self.accesses as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn mean_epoch(&self) -> Option<SimDuration> {
        if self.epoch_times.is_empty() {
            return None;
        }
        let n = self.epoch_times.len() as u64;
        Some(self.epoch_times.iter().copied().sum::<SimDuration>() / n)
    }
}

fn run_backend(
    workload: &DriftingHotspots,
    topology: Topology,
    backend: Backend,
    adaptive: bool,
    trace: Option<&str>,
) -> ModeRun {
    let ps_cfg = if adaptive {
        adaptive_ps_config(topology, workload)
    } else {
        ps_config(topology, workload)
    }
    .with_backend(backend);
    let ps = ParameterServer::new(ps_cfg, init_value);
    let timed = run_phases_timed(&ps, workload);
    ps.flush_replicas();
    let model = model_bits(ps.read_all());
    if let Some(path) = trace {
        // One file per mode; under the virtual backend the export is a
        // pure function of (scale, topology) — byte-identical across runs.
        let path = format!("{path}.{}", backend.name());
        std::fs::write(&path, ps.observability().chrome_trace()).expect("write trace");
        eprintln!("[throughput] wrote {path}");
    }
    let run = ModeRun {
        mode: backend.name(),
        elapsed: timed.epoch_times.iter().copied().sum(),
        accesses: total_accesses(workload, topology),
        metrics: ps.metrics(),
        p50_op_us: timed.op_percentile_us(50.0),
        p99_op_us: timed.op_percentile_us(99.0),
        epoch_times: timed.epoch_times,
        model,
    };
    ps.shutdown();
    run
}

/// Run the workload across real OS processes: spawn `nups-node` in
/// launcher mode, then read back the model node 0 assembled.
fn run_tcp(
    workload: &DriftingHotspots,
    topology: Topology,
    scale: Scale,
    adaptive: bool,
    trace: Option<&str>,
) -> ModeRun {
    let exe = std::env::current_exe().expect("own executable path");
    let node_bin = exe.with_file_name(if cfg!(windows) { "nups-node.exe" } else { "nups-node" });
    if !node_bin.exists() {
        eprintln!(
            "FAIL: {} not found — build it first (cargo build -p nups-bench --bin nups-node)",
            node_bin.display()
        );
        std::process::exit(1);
    }
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let model_path = dir.join(format!("nups-throughput-{pid}-model.txt"));
    let report_path = dir.join(format!("nups-throughput-{pid}-report.json"));

    let start = Instant::now();
    let mut cmd = std::process::Command::new(&node_bin);
    if adaptive {
        cmd.arg("--adaptive");
    }
    if let Some(path) = trace {
        // The launcher suffixes per node: {path}.tcp.node0, .node1, ...
        cmd.arg("--trace").arg(format!("{path}.tcp"));
    }
    let status = cmd
        .arg("--launch")
        .arg("--nodes")
        .arg(topology.n_nodes.to_string())
        .arg("--workers")
        .arg(topology.workers_per_node.to_string())
        .arg("--scale")
        .arg(scale.name())
        .arg("--model-out")
        .arg(&model_path)
        .arg("--json")
        .arg(&report_path)
        .status()
        .expect("spawn nups-node launcher");
    let elapsed = start.elapsed();
    if !status.success() {
        eprintln!("FAIL: nups-node launcher exited with {status}");
        std::process::exit(1);
    }
    let model = std::fs::read_to_string(&model_path)
        .ok()
        .and_then(|s| parse_model(&s))
        .unwrap_or_else(|| {
            eprintln!("FAIL: could not read the model from {}", model_path.display());
            std::process::exit(1);
        });
    // Pull the coordinator's counters out of its report; the cross-process
    // totals live in the other processes.
    let report = std::fs::read_to_string(&report_path).unwrap_or_default();
    // Prefer the coordinator's workload-only time (keys/sec over the
    // sockets, excluding process spawn and handshake); fall back to the
    // launcher's wall time if the report is missing.
    let elapsed = match json_u64(&report, "elapsed_us") {
        0 => SimDuration(elapsed.as_nanos() as u64),
        us => SimDuration(us * 1_000),
    };
    let metrics = MetricsSnapshot {
        msgs_sent: json_u64(&report, "msgs_node0"),
        bytes_sent: json_u64(&report, "bytes_node0"),
        relocations: json_u64(&report, "relocations_node0"),
        sync_rounds: json_u64(&report, "sync_rounds_node0"),
        fabric_writes: json_u64(&report, "fabric_writes_node0"),
        fabric_frames: json_u64(&report, "fabric_frames_node0"),
        writer_wakeups: json_u64(&report, "writer_wakeups_node0"),
        pool_hits: json_u64(&report, "pool_hits_node0"),
        pool_misses: json_u64(&report, "pool_misses_node0"),
        frames_per_write_1: json_u64(&report, "frames_per_write_1"),
        frames_per_write_2_3: json_u64(&report, "frames_per_write_2_3"),
        frames_per_write_4_7: json_u64(&report, "frames_per_write_4_7"),
        frames_per_write_8_15: json_u64(&report, "frames_per_write_8_15"),
        frames_per_write_16_plus: json_u64(&report, "frames_per_write_16_plus"),
        ..MetricsSnapshot::default()
    };
    let _ = std::fs::remove_file(&model_path);
    let _ = std::fs::remove_file(&report_path);
    ModeRun {
        mode: "tcp",
        elapsed,
        epoch_times: Vec::new(),
        accesses: total_accesses(workload, topology),
        metrics,
        p50_op_us: json_u64(&report, "p50_op_us"),
        p99_op_us: json_u64(&report, "p99_op_us"),
        model,
    }
}

/// Minimal field extraction from our own flat JSON reports.
fn json_u64(report: &str, key: &str) -> u64 {
    nups_bench::json::field_u64(report, key)
}

fn mode_json(r: &ModeRun) -> Json {
    let mut j = Json::obj()
        .set("elapsed_us", r.elapsed.as_nanos() / 1_000)
        .set("mean_epoch_us", r.mean_epoch().map(|d| d.as_nanos() / 1_000).unwrap_or(0))
        .set("accesses", r.accesses)
        .set("keys_per_sec", r.keys_per_sec())
        .set("p50_op_us", r.p50_op_us)
        .set("p99_op_us", r.p99_op_us)
        .set("msgs", r.metrics.msgs_sent)
        .set("bytes", r.metrics.bytes_sent)
        .set("relocations", r.metrics.relocations)
        .set("sync_rounds", r.metrics.sync_rounds);
    if r.mode == "tcp" {
        // Wire-path counters (coordinator process): how well the send path
        // coalesced, and whether pooled buffers served I/O scratch.
        j = j.set(
            "fabric",
            Json::obj()
                .set("writes", r.metrics.fabric_writes)
                .set("frames", r.metrics.fabric_frames)
                .set("mean_frames_per_write", mean_frames_per_write(&r.metrics))
                .set("writer_wakeups", r.metrics.writer_wakeups)
                .set("pool_hits", r.metrics.pool_hits)
                .set("pool_misses", r.metrics.pool_misses)
                .set("frames_per_write_1", r.metrics.frames_per_write_1)
                .set("frames_per_write_2_3", r.metrics.frames_per_write_2_3)
                .set("frames_per_write_4_7", r.metrics.frames_per_write_4_7)
                .set("frames_per_write_8_15", r.metrics.frames_per_write_8_15)
                .set("frames_per_write_16_plus", r.metrics.frames_per_write_16_plus),
        );
    }
    j
}

fn mean_frames_per_write(m: &MetricsSnapshot) -> f64 {
    m.fabric_frames as f64 / (m.fabric_writes as f64).max(1.0)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let topology = args.topology();
    let workload = workload_for(scale);

    let backends: Vec<Backend> = match args.get("backend") {
        None => vec![Backend::Virtual, Backend::WallClock],
        Some("both") => vec![Backend::Virtual, Backend::WallClock],
        Some(s) => match Backend::parse(s) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown --backend {s:?} (expected sim, wall or both)");
                std::process::exit(2);
            }
        },
    };
    let with_tcp = match args.get("fabric") {
        None | Some("channel") | Some("sim") => false,
        Some("tcp") => true,
        Some(other) => {
            eprintln!("unknown --fabric {other:?} (expected tcp)");
            std::process::exit(2);
        }
    };

    let adaptive = args.get_flag("adaptive");
    let trace = args.get("trace");

    let mut runs: Vec<ModeRun> = backends
        .iter()
        .map(|&b| {
            eprintln!(
                "[throughput] running {} backend{}",
                b.name(),
                if adaptive { " (adaptive)" } else { "" }
            );
            run_backend(&workload, topology, b, adaptive, trace)
        })
        .collect();
    if with_tcp {
        eprintln!(
            "[throughput] running tcp multi-process deployment ({} processes on loopback{})",
            topology.n_nodes,
            if adaptive { ", adaptive" } else { "" }
        );
        runs.push(run_tcp(&workload, topology, scale, adaptive, trace));
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.elapsed.to_string(),
                r.mean_epoch().map(|d| d.to_string()).unwrap_or_else(|| "-".to_string()),
                format!("{}", r.accesses),
                format!("{:.0}", r.keys_per_sec()),
                format!("{}/{}", r.p50_op_us, r.p99_op_us),
                // The tcp row only sees the coordinator process's
                // counters; the other nodes' totals live in their own
                // processes. Label it so the column is not misread as a
                // cluster-wide comparison.
                if r.mode == "tcp" {
                    format!("{} (node 0 only)", r.metrics.msgs_sent)
                } else {
                    format!("{}", r.metrics.msgs_sent)
                },
            ]
        })
        .collect();
    print_table(
        &format!(
            "Throughput — same workload per execution mode ({} epochs, {} keys)",
            workload.config().phases,
            workload.config().n_keys
        ),
        &["mode", "run time", "mean epoch", "accesses", "keys/sec", "p50/p99 op µs", "messages"],
        &rows,
    );

    if let Some(path) = args.get("json") {
        let mut report = Json::obj().set("bench", "throughput").set("scale", scale.name()).set(
            "topology",
            format!("{}x{}", topology.n_nodes, topology.workers_per_node).as_str(),
        );
        for r in &runs {
            report = report.set(r.mode, mode_json(r));
        }
        std::fs::write(path, report.render()).expect("write json report");
        eprintln!("[throughput] wrote {path}");
    }

    // A minimal report for the regression gate: exactly the numeric leaves
    // the committed baseline carries (`ci/check_bench_regression.py`
    // demands numeric-leaf sets match bidirectionally, so the full report
    // above — with its run-to-run-varying extras — cannot be gated).
    if let Some(path) = args.get("gate-json") {
        let Some(tcp) = runs.iter().find(|r| r.mode == "tcp") else {
            eprintln!("FAIL: --gate-json needs the tcp run (add --fabric tcp)");
            std::process::exit(1);
        };
        let gate = Json::obj()
            .set("bench", "throughput-tcp-gate")
            .set("scale", scale.name())
            .set("keys_per_sec", tcp.keys_per_sec())
            .set("mean_frames_per_write", mean_frames_per_write(&tcp.metrics))
            // Informational only: the checker skips every `report_only.*`
            // leaf, so p99 rides along in the gate artifact (with the
            // histogram-bucket metadata needed to interpret it) without
            // being held to a symmetric band.
            .set(
                "report_only",
                Json::obj()
                    .set("p50_op_us", tcp.p50_op_us)
                    .set("p99_op_us", tcp.p99_op_us)
                    .set("hist_n_buckets", nups_sim::hist::N_BUCKETS as u64)
                    .set("hist_max_quantization_error_pct", 12.5),
            );
        std::fs::write(path, gate.render()).expect("write gate report");
        eprintln!("[throughput] wrote {path}");
    }

    if args.get_flag("check") {
        let Some(reference) = runs.iter().find(|r| r.mode == Backend::Virtual.name()) else {
            eprintln!("FAIL: --check needs the sim backend as reference (drop --backend)");
            std::process::exit(1);
        };
        let mut ok = true;
        for r in runs.iter().filter(|r| r.mode != reference.mode) {
            if r.model == reference.model {
                eprintln!("[throughput] OK: {} model identical to sim", r.mode);
            } else if r.model.len() != reference.model.len() {
                eprintln!(
                    "FAIL: {} model has {} keys, sim has {}",
                    r.mode,
                    r.model.len(),
                    reference.model.len()
                );
                ok = false;
            } else {
                let diverged = reference.model.iter().zip(&r.model).filter(|(a, b)| a != b).count();
                eprintln!("FAIL: {diverged} parameter(s) differ between sim and {}", r.mode);
                ok = false;
            }
        }
        if runs.len() < 2 {
            eprintln!("FAIL: --check needs at least two modes (drop --backend)");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
    }
}
