//! Matrix factorization on NuPS: rows pinned to their home nodes, hot
//! column factors replicated, the rest relocated along the column-major
//! visiting order. Shows the bold-driver learning-rate heuristic at work.
//!
//! Run with: cargo run --release --example matrix_factorization

use std::sync::Arc;

use nups::core::system::run_epoch;
use nups::core::{heuristic_replicated_keys, NupsConfig, ParameterServer};
use nups::ml::mf::{MfConfig, MfTask};
use nups::ml::task::TrainTask;
use nups::sim::topology::Topology;
use nups::workloads::matrix::{MatrixConfig, MatrixData};

fn main() {
    let data = Arc::new(MatrixData::generate(MatrixConfig {
        n_rows: 3_000,
        n_cols: 300,
        n_train: 60_000,
        n_test: 2_000,
        rank_gt: 8,
        zipf_alpha: 1.1,
        noise_std: 0.1,
        seed: 13,
    }));
    println!(
        "synthetic matrix: {}x{}, {} revealed cells (zipf 1.1), noise floor RMSE ~{}",
        data.config.n_rows,
        data.config.n_cols,
        data.train.len(),
        data.config.noise_std
    );

    let topology = Topology::new(4, 2);
    let task = MfTask::new(
        Arc::clone(&data),
        MfConfig { rank: 8, ..MfConfig::default() },
        topology.n_nodes,
        topology.workers_per_node,
    );

    let replicated = heuristic_replicated_keys(&task.direct_frequencies());
    println!("replicating {} hot (column) keys\n", replicated.len());
    let cfg = NupsConfig::nups(topology, task.n_keys(), task.value_len())
        .with_replicated_keys(replicated)
        .with_clip(task.clip_policy());
    let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));

    let mut workers = ps.workers();
    for epoch in 0..6 {
        let loss = std::sync::Mutex::new(0.0f64);
        run_epoch(&mut workers, |i, w| {
            let l = task.run_epoch(w, i, epoch);
            *loss.lock().unwrap() += l;
        });
        let total_loss = *loss.lock().unwrap();
        task.end_of_epoch(epoch, total_loss); // bold driver adjusts the rate
        ps.flush_replicas();
        let rmse = task.evaluate(&ps.read_all());
        println!(
            "epoch {:>2}  virtual time {:>12}  train loss {:>12.1}  test RMSE {:.4}  lr {:.4}",
            epoch + 1,
            ps.virtual_time(),
            total_loss,
            rmse,
            task.current_lr(),
        );
    }
    drop(workers);
    ps.shutdown();
}
