//! The ComplEx knowledge-graph embedding model (Trouillon et al., ICML'16),
//! the model the paper trains in its KGE task.
//!
//! Each entity and relation has a complex embedding of dimension `dc`,
//! stored as `[re; dc | im; dc]` (so the real vector length is `2·dc`).
//! The triple score is `Re(⟨s, r, conj(o)⟩)`; training minimizes logistic
//! loss with negative sampling.

/// Real vector length of a complex embedding of dimension `dc`.
#[inline]
pub fn embedding_len(dc: usize) -> usize {
    2 * dc
}

/// ComplEx triple score: `Re(Σ_i s_i · r_i · conj(o_i))`.
pub fn score(s: &[f32], r: &[f32], o: &[f32]) -> f32 {
    let dc = s.len() / 2;
    debug_assert!(s.len() == 2 * dc && r.len() >= 2 * dc && o.len() >= 2 * dc);
    let (sr, si) = s.split_at(dc);
    let (rr, ri) = r.split_at(dc);
    let (or_, oi) = (&o[..dc], &o[dc..2 * dc]);
    let mut acc = 0.0;
    for i in 0..dc {
        acc += sr[i] * rr[i] * or_[i] + si[i] * rr[i] * oi[i] + sr[i] * ri[i] * oi[i]
            - si[i] * ri[i] * or_[i];
    }
    acc
}

/// Gradients of the score w.r.t. s, r and o, scaled by `g` (the logistic
/// loss factor `σ(score) - label`) and *added* into the output buffers.
pub fn add_score_gradients(
    s: &[f32],
    r: &[f32],
    o: &[f32],
    g: f32,
    gs: &mut [f32],
    gr: &mut [f32],
    go: &mut [f32],
) {
    let dc = s.len() / 2;
    for i in 0..dc {
        let (sr, si) = (s[i], s[dc + i]);
        let (rr, ri) = (r[i], r[dc + i]);
        let (or_, oi) = (o[i], o[dc + i]);
        // ∂score/∂s
        gs[i] += g * (rr * or_ + ri * oi);
        gs[dc + i] += g * (rr * oi - ri * or_);
        // ∂score/∂r
        gr[i] += g * (sr * or_ + si * oi);
        gr[dc + i] += g * (sr * oi - si * or_);
        // ∂score/∂o
        go[i] += g * (sr * rr - si * ri);
        go[dc + i] += g * (si * rr + sr * ri);
    }
}

/// Numerically stable `σ(x)`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Logistic loss `-log σ(x)` for label 1, `-log σ(-x)` for label 0,
/// numerically stable.
#[inline]
pub fn logistic_loss(score: f32, label: f32) -> f32 {
    // softplus(-x) for label 1, softplus(x) for label 0.
    let z = if label > 0.5 { -score } else { score };
    if z > 30.0 {
        z
    } else {
        (1.0 + z.exp()).ln()
    }
}

/// Approximate floating-point operations for one scored triple (score +
/// three gradients); used for virtual-time compute pricing.
pub fn flops_per_scored_triple(dc: usize) -> u64 {
    // score: ~8 flops per complex dim; gradients: ~18.
    26 * dc as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(dc: usize) {
        // Gradients must match finite differences of the score.
        let n = 2 * dc;
        let base: Vec<f32> = (0..3 * n).map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.1).collect();
        let (s, rest) = base.split_at(n);
        let (r, o) = rest.split_at(n);
        let mut gs = vec![0.0; n];
        let mut gr = vec![0.0; n];
        let mut go = vec![0.0; n];
        add_score_gradients(s, r, o, 1.0, &mut gs, &mut gr, &mut go);
        let eps = 1e-3f32;
        for i in 0..n {
            let mut sp = s.to_vec();
            sp[i] += eps;
            let num = (score(&sp, r, o) - score(s, r, o)) / eps;
            assert!((num - gs[i]).abs() < 1e-2, "ds[{i}]: num {num} vs {}", gs[i]);
            let mut rp = r.to_vec();
            rp[i] += eps;
            let num = (score(s, &rp, o) - score(s, r, o)) / eps;
            assert!((num - gr[i]).abs() < 1e-2, "dr[{i}]: num {num} vs {}", gr[i]);
            let mut op = o.to_vec();
            op[i] += eps;
            let num = (score(s, r, &op) - score(s, r, o)) / eps;
            assert!((num - go[i]).abs() < 1e-2, "do[{i}]: num {num} vs {}", go[i]);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(1);
        finite_diff_check(4);
    }

    #[test]
    fn score_of_identity_relation_is_similarity() {
        // With r = (1 + 0i, ...), score(s, r, o) = Re(⟨s, conj(o)⟩):
        // maximal when s == o.
        let dc = 4;
        let mut r = vec![0.0; 8];
        r[..dc].iter_mut().for_each(|x| *x = 1.0);
        let s = vec![0.3, -0.1, 0.2, 0.5, 0.1, 0.0, -0.2, 0.4];
        let self_score = score(&s, &r, &s);
        let other = vec![-0.3, 0.1, -0.2, -0.5, -0.1, 0.0, 0.2, -0.4];
        assert!(self_score > score(&s, &r, &other));
    }

    #[test]
    fn sigmoid_and_loss_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 1e-4);
        assert!(logistic_loss(100.0, 1.0) < 1e-4);
        assert!(logistic_loss(-100.0, 1.0) > 99.0);
        assert!(logistic_loss(100.0, 0.0) > 99.0);
        assert!(logistic_loss(f32::MAX / 2.0, 0.0).is_finite());
    }

    #[test]
    fn training_step_reduces_loss() {
        // One SGD step on a single triple must reduce its logistic loss.
        let dc = 4;
        let n = 2 * dc;
        let mut s: Vec<f32> = (0..n).map(|i| 0.05 * ((i as f32) - 3.0)).collect();
        let mut r: Vec<f32> = (0..n).map(|i| 0.04 * ((i as f32) - 2.0)).collect();
        let mut o: Vec<f32> = (0..n).map(|i| -0.03 * ((i as f32) - 4.0)).collect();
        let before = logistic_loss(score(&s, &r, &o), 1.0);
        let g = sigmoid(score(&s, &r, &o)) - 1.0;
        let mut gs = vec![0.0; n];
        let mut gr = vec![0.0; n];
        let mut go = vec![0.0; n];
        add_score_gradients(&s, &r, &o, g, &mut gs, &mut gr, &mut go);
        let lr = 0.5;
        for i in 0..n {
            s[i] -= lr * gs[i];
            r[i] -= lr * gr[i];
            o[i] -= lr * go[i];
        }
        let after = logistic_loss(score(&s, &r, &o), 1.0);
        assert!(after < before, "loss {before} → {after}");
    }
}
