//! Minimal `--key value` argument parsing for the experiment binaries
//! (kept dependency-free on purpose; see DESIGN.md).

use nups_sim::topology::Topology;

use crate::tasks::{Scale, TaskKind};

/// Parsed command-line flags.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    pub fn parse_from(iter: impl IntoIterator<Item = String>) -> Args {
        let mut pairs = Vec::new();
        let mut it = iter.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap(),
                    _ => "true".to_string(),
                };
                pairs.push((key.to_string(), value));
            }
        }
        Args { pairs }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    pub fn get_u16(&self, key: &str, default: u16) -> u16 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    pub fn get_flag(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v != "false")
    }

    /// Experiment topology: `--nodes N --workers W` (defaults mirror the
    /// paper's 8×8 shape at a simulation-friendly 4×2).
    pub fn topology(&self) -> Topology {
        Topology::new(self.get_u16("nodes", 4), self.get_u16("workers", 2))
    }

    pub fn scale(&self) -> Scale {
        self.get("scale").and_then(Scale::parse).unwrap_or(Scale::Small)
    }

    pub fn task(&self) -> Option<TaskKind> {
        self.get("task").and_then(TaskKind::parse)
    }

    pub fn tasks(&self) -> Vec<TaskKind> {
        match self.task() {
            Some(t) => vec![t],
            None => TaskKind::all().to_vec(),
        }
    }

    pub fn epochs(&self, default: usize) -> usize {
        self.get_usize("epochs", default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = args("--nodes 8 --workers 4 --verbose --scale tiny");
        assert_eq!(a.get("nodes"), Some("8"));
        assert_eq!(a.topology(), Topology::new(8, 4));
        assert!(a.get_flag("verbose"));
        assert!(!a.get_flag("quiet"));
        assert_eq!(a.scale(), Scale::Tiny);
    }

    #[test]
    fn defaults_apply() {
        let a = args("");
        assert_eq!(a.topology(), Topology::new(4, 2));
        assert_eq!(a.scale(), Scale::Small);
        assert_eq!(a.epochs(5), 5);
        assert_eq!(a.tasks().len(), 3);
    }

    #[test]
    fn task_selection() {
        let a = args("--task wv");
        assert_eq!(a.task(), Some(TaskKind::Wv));
        assert_eq!(a.tasks(), vec![TaskKind::Wv]);
        assert_eq!(args("--task bogus").task(), None);
    }

    #[test]
    fn last_occurrence_wins() {
        let a = args("--epochs 3 --epochs 9");
        assert_eq!(a.epochs(1), 9);
    }
}
