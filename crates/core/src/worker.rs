//! The NuPS worker: multi-technique access paths plus the sampling manager
//! front-end.
//!
//! A worker resolves each access with one technique check (a lock-free
//! array read) followed by a single latch acquisition (Section 3.2):
//!
//! * replicated key → the node's replica set, through shared memory;
//! * relocated key, owned locally → the store, through shared memory;
//! * relocated key, in flight to this node → block until the transfer
//!   installs (a *relocation conflict*, priced as the residual transfer
//!   wait);
//! * relocated key, elsewhere → a synchronous remote round trip.
//!
//! All remote waiting is charged to the worker's virtual clock, scaled by
//! the congestion multiplier when replica synchronization is saturating the
//! network (Section 5.6).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use nups_sim::codec::WireEncode;
use nups_sim::metrics::Metrics;
use nups_sim::net::Endpoint;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::{Addr, NodeId, WorkerId};
use nups_sim::WorkerClock;

use crate::api::PsWorker;
use crate::key::Key;
use crate::messages::Msg;
use crate::node::{NodeState, Shared};
use crate::sampling::reuse::PoolSequence;
use crate::sampling::scheme::SamplingScheme;
use crate::sampling::{DistId, Distribution, SampleHandle};
use crate::store::LocalAccess;
use crate::technique::Technique;
use crate::value::add_assign;

/// Per-distribution sampler state held by one worker.
enum SamplerState {
    Independent,
    Pool(PoolSequence),
    Local,
}

pub struct NupsWorker {
    id: WorkerId,
    shared: Arc<Shared>,
    node: Arc<NodeState>,
    endpoint: Endpoint,
    clock: WorkerClock,
    rng: SmallRng,
    dists: Vec<Arc<(Distribution, SamplingScheme)>>,
    samplers: Vec<SamplerState>,
}

impl NupsWorker {
    pub(crate) fn new(
        id: WorkerId,
        shared: Arc<Shared>,
        endpoint: Endpoint,
        clock: WorkerClock,
        seed: u64,
    ) -> NupsWorker {
        let node = Arc::clone(&shared.nodes[id.node.index()]);
        let dists: Vec<_> = shared.dists.lock().clone();
        let samplers = dists
            .iter()
            .map(|d| match d.1 {
                SamplingScheme::Independent | SamplingScheme::Manual => SamplerState::Independent,
                SamplingScheme::Reuse(p) | SamplingScheme::ReuseWithPostponing(p) => {
                    SamplerState::Pool(PoolSequence::new(p.pool_size, p.use_frequency))
                }
                SamplingScheme::Local => SamplerState::Local,
            })
            .collect();
        NupsWorker {
            id,
            shared,
            node,
            endpoint,
            clock,
            rng: SmallRng::seed_from_u64(seed),
            dists,
            samplers,
        }
    }

    pub fn id(&self) -> WorkerId {
        self.id
    }

    #[inline]
    fn metrics(&self) -> &Metrics {
        self.shared.metrics.node(self.id.node)
    }

    /// Congestion multiplier on remote traffic: relocation messages compete
    /// with replica synchronization for the network (Section 5.6).
    #[inline]
    fn congestion(&self) -> f64 {
        1.0 + self.shared.gate.busy_fraction()
    }

    #[inline]
    fn charge_shared_memory(&mut self) {
        let c = self.shared.cost.shared_memory_access(4 * self.shared.value_len);
        self.clock.advance(c);
    }

    fn charge_remote(&mut self, request_bytes: usize, response_bytes: usize, hops: u8) {
        // `hops` counts all messages in the chain including the response;
        // intermediate forwards carry the request payload.
        let hops = hops.max(2) as u64;
        let cost = self.shared.cost.message(request_bytes) * (hops - 1)
            + self.shared.cost.message(response_bytes);
        self.clock.advance(cost * self.congestion());
    }

    /// Charge the residual wait for a value that arrived by relocation:
    /// advance to its virtual availability, with each access's wait capped
    /// at one full relocation on our own timeline (the stamp comes from
    /// the *initiator's* clock, which may be far ahead). An access that
    /// waited is counted as a relocation conflict — the *virtual* notion
    /// (the access happened before the transfer's virtual completion),
    /// which is identical on both sides of the real-time install race and
    /// therefore reproducible.
    fn charge_install_wait(&mut self, available_at: SimTime) {
        if available_at > self.clock.now() {
            let cap = self.relocation_estimate();
            self.clock.advance_to(available_at.min(cap));
            self.metrics().inc(|m| &m.relocation_conflicts);
        }
    }

    /// Estimated completion of a relocation initiated now: the 3-message
    /// Lapse protocol, two small messages plus the value transfer.
    fn relocation_estimate(&self) -> SimTime {
        let c = &self.shared.cost;
        let d = c.message(16) + c.message(16) + c.message(self.shared.value_bytes());
        self.clock.now() + d * self.congestion()
    }

    /// Send a request and block for its reply, pricing the round trip.
    fn remote_roundtrip(&mut self, dst: NodeId, msg: &Msg) -> Msg {
        let request_bytes = msg.encoded_len();
        self.endpoint.send(Addr::server(dst), self.clock.now(), msg.to_bytes());
        let frame = self.endpoint.recv().expect("server disappeared during round trip");
        let wire_bytes = frame.wire_bytes();
        let mut payload = frame.payload;
        let resp = Msg::decode(&mut payload).expect("undecodable reply");
        let (response_bytes, hops) = match &resp {
            Msg::PullResp { hops, .. } | Msg::PushAck { hops, .. } => (wire_bytes, *hops),
            other => panic!("unexpected reply to worker: {other:?}"),
        };
        self.charge_remote(request_bytes, response_bytes, hops);
        resp
    }

    fn pull_relocated(&mut self, key: Key, out: &mut [f32]) {
        match self.node.store.with_local(key, |v| out.copy_from_slice(v)) {
            LocalAccess::Done((), available_at) => {
                self.metrics().inc(|m| &m.local_pulls);
                self.charge_install_wait(available_at);
                self.charge_shared_memory();
            }
            LocalAccess::InFlight(_) => {
                // Charge the *installed* entry's stamp, not the one seen
                // before blocking: the key may have been re-relocated
                // while this worker waited.
                match self.node.store.wait_local(key, |v| out.copy_from_slice(v)) {
                    Some(((), available_at)) => {
                        self.metrics().inc(|m| &m.local_pulls);
                        self.charge_install_wait(available_at);
                        self.charge_shared_memory();
                    }
                    None => self.remote_pull(key, out, None),
                }
            }
            LocalAccess::Remote(hint) => self.remote_pull(key, out, hint),
        }
    }

    fn remote_pull(&mut self, key: Key, out: &mut [f32], hint: Option<NodeId>) {
        self.metrics().inc(|m| &m.remote_pulls);
        let dst = hint.unwrap_or_else(|| self.shared.keyspace.home(key));
        let req =
            Msg::PullReq { key, reply_to: Addr::worker(self.id.node, self.id.local), hops: 1 };
        match self.remote_roundtrip(dst, &req) {
            Msg::PullResp { key: k, value, .. } => {
                debug_assert_eq!(k, key);
                out.copy_from_slice(&value);
            }
            other => panic!("expected PullResp, got {other:?}"),
        }
    }

    fn push_relocated(&mut self, key: Key, delta: &[f32]) {
        match self.node.store.with_local(key, |v| add_assign(v, delta)) {
            LocalAccess::Done((), available_at) => {
                self.metrics().inc(|m| &m.local_pushes);
                self.charge_install_wait(available_at);
                self.charge_shared_memory();
            }
            LocalAccess::InFlight(_) => {
                match self.node.store.wait_local(key, |v| add_assign(v, delta)) {
                    Some(((), available_at)) => {
                        self.metrics().inc(|m| &m.local_pushes);
                        self.charge_install_wait(available_at);
                        self.charge_shared_memory();
                    }
                    None => self.remote_push(key, delta, None),
                }
            }
            LocalAccess::Remote(hint) => self.remote_push(key, delta, hint),
        }
    }

    fn remote_push(&mut self, key: Key, delta: &[f32], hint: Option<NodeId>) {
        self.metrics().inc(|m| &m.remote_pushes);
        let dst = hint.unwrap_or_else(|| self.shared.keyspace.home(key));
        let req = Msg::PushReq {
            key,
            delta: delta.to_vec(),
            reply_to: Addr::worker(self.id.node, self.id.local),
            hops: 1,
        };
        match self.remote_roundtrip(dst, &req) {
            Msg::PushAck { key: k, .. } => debug_assert_eq!(k, key),
            other => panic!("expected PushAck, got {other:?}"),
        }
    }

    /// Whether a sampled key can be served without the network right now.
    fn locally_available(&self, key: Key) -> bool {
        match self.shared.technique.technique(key) {
            Technique::Replicated => true,
            Technique::Relocated => self.node.store.is_local(key),
        }
    }

    /// Issue async localizes for freshly drawn sample pools / samples.
    fn localize_for_sampling(&mut self, keys: &[Key]) {
        self.localize(keys);
    }

    /// Local sampling (NON-CONFORM): draw from the locally available part
    /// of π via rejection; hot keys are replicated (always local) so
    /// acceptance is high. Falls back to a bounded linear probe, then to
    /// accepting a non-local draw (which the pull path serves remotely).
    fn draw_local(&mut self, dist_idx: usize) -> Key {
        const REJECTION_TRIES: usize = 64;
        const PROBE_LIMIT: u64 = 4096;
        let dist = Arc::clone(&self.dists[dist_idx]);
        let d = &dist.0;
        for _ in 0..REJECTION_TRIES {
            let k = d.sample(&mut self.rng);
            if self.locally_available(k) {
                return k;
            }
        }
        let range = d.key_range();
        let span = range.end - range.start;
        let start = range.start + self.rng.gen_range(0..span);
        for off in 0..span.min(PROBE_LIMIT) {
            let k = range.start + (start - range.start + off) % span;
            if self.locally_available(k) {
                return k;
            }
        }
        d.sample(&mut self.rng)
    }

    fn pull_sampled_key(&mut self, key: Key) -> (Key, Vec<f32>) {
        if !self.locally_available(key) {
            self.metrics().inc(|m| &m.samples_remote);
        }
        let mut value = vec![0.0; self.shared.value_len];
        self.pull(key, &mut value);
        self.metrics().inc(|m| &m.samples_drawn);
        (key, value)
    }
}

impl PsWorker for NupsWorker {
    fn value_len(&self) -> usize {
        self.shared.value_len
    }

    fn pull(&mut self, key: Key, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.shared.value_len);
        match self.shared.technique.technique(key) {
            Technique::Replicated => {
                let slot = self.shared.technique.replica_slot(key).expect("slot");
                self.node.replicas.pull(slot, out);
                let m = self.metrics();
                m.inc(|m| &m.replica_pulls);
                m.inc(|m| &m.local_pulls);
                self.charge_shared_memory();
            }
            Technique::Relocated => self.pull_relocated(key, out),
        }
    }

    fn push(&mut self, key: Key, delta: &[f32]) {
        debug_assert_eq!(delta.len(), self.shared.value_len);
        match self.shared.technique.technique(key) {
            Technique::Replicated => {
                let slot = self.shared.technique.replica_slot(key).expect("slot");
                self.node.replicas.push(slot, delta);
                let m = self.metrics();
                m.inc(|m| &m.replica_pushes);
                m.inc(|m| &m.local_pushes);
                self.charge_shared_memory();
            }
            Technique::Relocated => self.push_relocated(key, delta),
        }
    }

    fn localize(&mut self, keys: &[Key]) {
        if !self.shared.relocation_enabled {
            return;
        }
        for &key in keys {
            if self.shared.technique.is_replicated(key) {
                continue;
            }
            let expected = self.relocation_estimate();
            if self.node.store.mark_inflight(key, expected) {
                let msg = Msg::LocalizeReq { key, requester: self.id.node };
                let home = self.shared.keyspace.home(key);
                self.endpoint.send(Addr::server(home), self.clock.now(), msg.to_bytes());
                // Issuing is asynchronous: only the (tiny) issue cost is
                // charged to the worker.
                self.clock.advance(self.shared.cost.local_access);
            }
        }
    }

    fn advance_clock(&mut self) {
        // NuPS uses time-based staleness: nothing to do (Section 3.2).
    }

    fn charge_compute(&mut self, flops: u64) {
        let c = self.shared.cost.compute(flops);
        self.clock.advance(c);
        let shared = Arc::clone(&self.shared);
        self.shared.gate.poll(self.clock.now(), || shared.sync.sync_once(&shared.metrics));
    }

    fn prepare_sample(&mut self, dist: DistId, n: usize) -> SampleHandle {
        let idx = dist.0;
        let dist_arc = Arc::clone(&self.dists[idx]);
        match &mut self.samplers[idx] {
            SamplerState::Independent => {
                let keys: Vec<Key> = (0..n).map(|_| dist_arc.0.sample(&mut self.rng)).collect();
                // The manual baseline draws in "application code" and gets
                // no preparatory localization from the PS.
                if dist_arc.1 != SamplingScheme::Manual {
                    self.localize_for_sampling(&keys);
                }
                SampleHandle::new(dist, keys)
            }
            SamplerState::Pool(_) => {
                // Split borrows: draw the batch with a detached RNG, then
                // issue localizes for the announced pools.
                let mut new_pools: Vec<Vec<Key>> = Vec::new();
                let keys = {
                    let SamplerState::Pool(pool) = &mut self.samplers[idx] else { unreachable!() };
                    let mut rng = self.rng.clone();
                    let out = pool.next_batch(
                        n,
                        &mut rng,
                        |r| dist_arc.0.sample(r),
                        |p| new_pools.push(p.to_vec()),
                    );
                    self.rng = rng;
                    out
                };
                let pools_prepared = new_pools.len() as u64;
                for p in &new_pools {
                    self.localize_for_sampling(p);
                }
                self.metrics().add(|m| &m.pools_prepared, pools_prepared);
                SampleHandle::new(dist, keys)
            }
            SamplerState::Local => SampleHandle::lazy(dist, n),
        }
    }

    fn pull_sample(&mut self, handle: &mut SampleHandle, n: usize) -> Vec<(Key, Vec<f32>)> {
        let idx = handle.dist.0;
        let scheme = self.dists[idx].1;
        let mut out = Vec::with_capacity(n);
        match scheme {
            SamplingScheme::Manual | SamplingScheme::Independent | SamplingScheme::Reuse(_) => {
                for _ in 0..n {
                    let Some((key, _)) = handle.queue.pop_front() else { break };
                    out.push(self.pull_sampled_key(key));
                }
            }
            SamplingScheme::ReuseWithPostponing(_) => {
                while out.len() < n {
                    let Some((key, postponed)) = handle.queue.pop_front() else { break };
                    if postponed || self.locally_available(key) {
                        out.push(self.pull_sampled_key(key));
                    } else {
                        // Postpone: re-localize, move to the end of this
                        // handle, use something else now. Each sample is
                        // postponed at most once so none is starved
                        // (required for LONG-TERM, Section 4.4).
                        self.metrics().inc(|m| &m.samples_postponed);
                        self.localize(&[key]);
                        handle.queue.push_back((key, true));
                    }
                }
            }
            SamplingScheme::Local => {
                let take = n.min(handle.lazy_remaining);
                for _ in 0..take {
                    let key = self.draw_local(idx);
                    out.push(self.pull_sampled_key(key));
                }
                handle.lazy_remaining -= take;
            }
        }
        out
    }

    fn begin_epoch(&mut self) {
        self.clock.refresh();
        self.shared.gate.enter();
    }

    fn end_epoch(&mut self) {
        let shared = Arc::clone(&self.shared);
        self.shared.gate.leave(|| shared.sync.sync_once(&shared.metrics));
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }
}

impl NupsWorker {
    /// Advance this worker's clock by an explicit duration (tests and
    /// calibration harnesses).
    pub fn advance_clock_by(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }
}
