//! Extending NuPS with your own training task: a skewed multi-class
//! logistic regression implemented against the `TrainTask` trait, runnable
//! on any system variant. Demonstrates the full integration surface —
//! key layout, deterministic initialization, direct + sampling access,
//! compute charging, and evaluation.
//!
//! Run with: cargo run --release --example custom_task

use nups::core::system::run_epoch;
use nups::core::{
    heuristic_replicated_keys, ConformityLevel, DistributionKind, NupsConfig, ParameterServer,
    PsWorker,
};
use nups::ml::task::{DistSpec, QualityDirection, TrainTask};
use nups::ml::util::init_embedding;
use nups::sim::topology::Topology;
use nups::workloads::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Multi-class classification with a per-class weight vector. Class
/// occurrence is Zipf-skewed (hot classes = hot parameters), and training
/// uses negative sampling over classes — non-uniform access in both of
/// the paper's senses.
struct SkewedClassifier {
    n_classes: u64,
    dim: usize,
    /// (feature vector, class) pairs, partitioned by worker.
    partitions: Vec<Vec<(Vec<f32>, u64)>>,
    test: Vec<(Vec<f32>, u64)>,
    class_freq: Vec<u64>,
}

impl SkewedClassifier {
    fn generate(n_classes: u64, dim: usize, n_train: usize, n_workers: usize) -> SkewedClassifier {
        let mut rng = StdRng::seed_from_u64(99);
        let zipf = Zipf::new(n_classes as usize, 1.0);
        // Planted class prototypes; samples = prototype + noise.
        let prototypes: Vec<Vec<f32>> = (0..n_classes)
            .map(|c| {
                (0..dim).map(|i| ((c as usize * 31 + i * 7) % 13) as f32 / 13.0 - 0.5).collect()
            })
            .collect();
        let sample = |rng: &mut StdRng| {
            let class = zipf.sample(rng) as u64;
            let x: Vec<f32> = prototypes[class as usize]
                .iter()
                .map(|p| p + 0.2 * (rng.gen::<f32>() - 0.5))
                .collect();
            (x, class)
        };
        let mut class_freq = vec![0u64; n_classes as usize];
        let mut partitions = vec![Vec::new(); n_workers];
        for i in 0..n_train {
            let (x, c) = sample(&mut rng);
            class_freq[c as usize] += 1;
            partitions[i % n_workers].push((x, c));
        }
        let test = (0..500).map(|_| sample(&mut rng)).collect();
        SkewedClassifier { n_classes, dim, partitions, test, class_freq }
    }

    fn score(w: &[f32], x: &[f32]) -> f32 {
        w.iter().zip(x).map(|(a, b)| a * b).sum()
    }
}

impl TrainTask for SkewedClassifier {
    fn name(&self) -> &'static str {
        "skewed-classifier"
    }

    fn n_keys(&self) -> u64 {
        self.n_classes
    }

    fn value_len(&self) -> usize {
        self.dim
    }

    fn init_value(&self, key: u64, out: &mut [f32]) {
        init_embedding(key, 0xC0FFEE, self.dim, 0.05, out);
    }

    fn distributions(&self) -> Vec<DistSpec> {
        // Negative classes drawn uniformly, BOUNDED conformity suffices.
        vec![DistSpec {
            base_key: 0,
            n: self.n_classes,
            kind: DistributionKind::Uniform,
            level: ConformityLevel::Bounded,
        }]
    }

    fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn run_epoch(&self, worker: &mut dyn PsWorker, part: usize, _epoch: usize) -> f64 {
        let lr = 0.5;
        let mut w_pos = vec![0.0f32; self.dim];
        let mut delta = vec![0.0f32; self.dim];
        let mut loss = 0.0f64;
        for (x, class) in &self.partitions[part] {
            // Positive class update...
            worker.pull(*class, &mut w_pos);
            let p = 1.0 / (1.0 + (-Self::score(&w_pos, x)).exp());
            loss -= (p.max(1e-6) as f64).ln();
            for i in 0..self.dim {
                delta[i] = lr * (1.0 - p) * x[i];
            }
            worker.push(*class, &delta);
            // ...one sampled negative class.
            let mut h = worker.prepare_sample(nups::core::DistId(0), 1);
            for (neg_key, w_neg) in worker.pull_sample(&mut h, 1) {
                let p = 1.0 / (1.0 + (-Self::score(&w_neg, x)).exp());
                for i in 0..self.dim {
                    delta[i] = -lr * p * x[i];
                }
                worker.push(neg_key, &delta);
            }
            worker.charge_compute(6 * self.dim as u64);
            worker.advance_clock();
        }
        loss
    }

    fn evaluate(&self, model: &[Vec<f32>]) -> f64 {
        // Top-1 accuracy over the held-out set.
        let correct = self
            .test
            .iter()
            .filter(|(x, class)| {
                let best = (0..self.n_classes)
                    .max_by(|&a, &b| {
                        Self::score(&model[a as usize], x)
                            .total_cmp(&Self::score(&model[b as usize], x))
                    })
                    .unwrap();
                best == *class
            })
            .count();
        correct as f64 / self.test.len() as f64
    }

    fn quality_direction(&self) -> QualityDirection {
        QualityDirection::HigherIsBetter
    }

    fn direct_frequencies(&self) -> Vec<u64> {
        self.class_freq.clone()
    }
}

fn main() {
    let topology = Topology::new(2, 2);
    let task = SkewedClassifier::generate(200, 16, 20_000, topology.total_workers());
    let replicated = heuristic_replicated_keys(&task.direct_frequencies());
    println!("custom task: 200 classes, replicating {} hot classes", replicated.len());

    let cfg = NupsConfig::nups(topology, task.n_keys(), task.value_len())
        .with_replicated_keys(replicated);
    let ps = ParameterServer::new(cfg, |k, v| task.init_value(k, v));
    for d in task.distributions() {
        ps.register_distribution(d.base_key, d.n, d.kind, d.level);
    }

    let mut workers = ps.workers();
    for epoch in 0..4 {
        run_epoch(&mut workers, |i, w| {
            task.run_epoch(w, i, epoch);
        });
        ps.flush_replicas();
        println!(
            "epoch {}  virtual time {:>12}  test accuracy {:.3}",
            epoch + 1,
            ps.virtual_time(),
            task.evaluate(&ps.read_all())
        );
    }
    drop(workers);
    ps.shutdown();
}
