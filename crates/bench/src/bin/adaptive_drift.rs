//! Static vs adaptive technique assignment on a drifting-hotspot workload
//! (a Figure 11-style comparison the paper could not run: its assignment
//! is fixed before training).
//!
//! Both variants start from the paper's untuned heuristic applied to
//! phase-0 statistics. The hot set then rotates each phase, so the static
//! assignment is wrong from phase 1 on, while the adaptive manager
//! promotes the new hot keys and demotes the stale ones at
//! synchronization rendezvous.
//!
//! Usage: cargo run --release -p nups-bench --bin adaptive_drift -- \
//!   [--scale tiny|small|medium] [--nodes 4] [--workers 2] \
//!   [--fabric tcp] [--json PATH] [--check]
//!
//! `--json` writes the counters the CI `bench-regression` job gates on;
//! `--check` exits non-zero unless the adaptive variant beats the static
//! one on both total messages and virtual runtime.
//!
//! `--fabric tcp` compares the variants across real OS processes instead:
//! two `nups-node` launcher runs (static, then `--adaptive`) over loopback
//! sockets, judged on the coordinator process's counters. Wall-clock
//! traffic varies run to run, so the gated report carries the
//! adaptive/static *ratios* (common-mode timing noise cancels) and
//! `--check` requires the adaptive cluster to win on messages outright.

use nups_bench::json::{field_u64, Json};
use nups_bench::report::{fmt_time, print_table};
use nups_bench::{Args, Scale};
use nups_core::adaptive::AdaptiveConfig;
use nups_core::system::run_epoch;
use nups_core::technique::heuristic_replicated_keys;
use nups_core::{NupsConfig, ParameterServer, PsWorker};
use nups_sim::metrics::MetricsSnapshot;
use nups_sim::time::{SimDuration, SimTime};
use nups_sim::topology::Topology;
use nups_workloads::drift::{DriftConfig, DriftingHotspots};

const VALUE_LEN: usize = 8;

fn drift_for(scale: Scale) -> DriftingHotspots {
    let (n_keys, hot_keys, phases, batches_per_phase) = match scale {
        Scale::Tiny => (1024, 4, 3, 40),
        Scale::Small => (4096, 8, 3, 150),
        Scale::Medium => (16384, 16, 4, 300),
    };
    DriftingHotspots::new(DriftConfig {
        n_keys,
        hot_keys,
        hot_share: 0.9,
        phases,
        batches_per_phase,
        batch: 8,
        seed: 0xD81F7,
    })
}

struct DriftRun {
    time: SimTime,
    metrics: MetricsSnapshot,
}

fn run_variant(drift: &DriftingHotspots, topology: Topology, adaptive: bool) -> DriftRun {
    let cfg = drift.config();
    let freqs = drift.phase_frequencies(0, topology.total_workers());
    let initial = heuristic_replicated_keys(&freqs);
    // The sync period scales with the scaled-down workload the same way
    // the paper's 40 ms scales with hours-long epochs.
    let mut ps_cfg = NupsConfig::nups(topology, cfg.n_keys, VALUE_LEN)
        .with_replicated_keys(initial)
        .with_sync_period(SimDuration::from_micros(500));
    if adaptive {
        ps_cfg = ps_cfg.with_adaptive(AdaptiveConfig {
            adapt_every: 2,
            sketch_bits: 14,
            ..AdaptiveConfig::default()
        });
    }
    let ps = ParameterServer::new(ps_cfg, |k, v| v.fill((k % 97) as f32 * 0.01));
    let mut workers = ps.workers();
    let batch = cfg.batch;
    for phase in 0..cfg.phases {
        run_epoch(&mut workers, |i, w| {
            for keys in drift.worker_batches(phase, i) {
                let mut out = vec![0.0f32; keys.len() * VALUE_LEN];
                w.pull_many(&keys, &mut out);
                let deltas = vec![0.01f32; keys.len() * VALUE_LEN];
                w.push_many(&keys, &deltas);
                w.charge_compute(500 * batch as u64);
            }
        });
    }
    drop(workers);
    ps.flush_replicas();
    let run = DriftRun { time: ps.virtual_time(), metrics: ps.metrics() };
    ps.shutdown();
    run
}

fn variant_json(r: &DriftRun) -> Json {
    let m = &r.metrics;
    Json::obj()
        .set("msgs", m.msgs_sent + m.migration_msgs)
        .set("bytes", m.bytes_sent + m.migration_bytes)
        .set("remote_accesses", m.remote_pulls + m.remote_pushes)
        .set("relocations", m.relocations)
        .set("sync_rounds", m.sync_rounds)
        .set("promotions", m.promotions)
        .set("demotions", m.demotions)
        .set("virtual_time_us", r.time.as_nanos() / 1_000)
}

/// The coordinator-process counters of one multi-process run.
struct TcpRun {
    msgs: u64,
    remote: u64,
    promotions: u64,
    demotions: u64,
    rounds: u64,
    elapsed_us: u64,
}

/// Run the drift workload across real OS processes via the `nups-node`
/// launcher and read back node 0's counters.
fn run_tcp_variant(scale: Scale, topology: Topology, adaptive: bool) -> TcpRun {
    let exe = std::env::current_exe().expect("own executable path");
    let node_bin = exe.with_file_name(if cfg!(windows) { "nups-node.exe" } else { "nups-node" });
    if !node_bin.exists() {
        eprintln!(
            "FAIL: {} not found — build it first (cargo build -p nups-bench --bin nups-node)",
            node_bin.display()
        );
        std::process::exit(1);
    }
    let report_path = std::env::temp_dir().join(format!(
        "nups-adaptive-drift-{}-{}.json",
        std::process::id(),
        if adaptive { "adaptive" } else { "static" }
    ));
    let mut cmd = std::process::Command::new(&node_bin);
    if adaptive {
        cmd.arg("--adaptive");
    }
    let status = cmd
        .arg("--launch")
        .arg("--nodes")
        .arg(topology.n_nodes.to_string())
        .arg("--workers")
        .arg(topology.workers_per_node.to_string())
        .arg("--scale")
        .arg(scale.name())
        .arg("--json")
        .arg(&report_path)
        .status()
        .expect("spawn nups-node launcher");
    if !status.success() {
        eprintln!("FAIL: nups-node launcher exited with {status}");
        std::process::exit(1);
    }
    let report = std::fs::read_to_string(&report_path).unwrap_or_else(|e| {
        eprintln!("FAIL: could not read {}: {e}", report_path.display());
        std::process::exit(1);
    });
    let _ = std::fs::remove_file(&report_path);
    TcpRun {
        msgs: field_u64(&report, "msgs_node0"),
        remote: field_u64(&report, "remote_accesses_node0"),
        promotions: field_u64(&report, "promotions_node0"),
        demotions: field_u64(&report, "demotions_node0"),
        rounds: field_u64(&report, "adaptation_rounds"),
        elapsed_us: field_u64(&report, "elapsed_us"),
    }
}

/// The `--fabric tcp` comparison: static vs adaptive, each across one
/// multi-process loopback cluster.
fn main_tcp(args: &Args) -> ! {
    let scale = args.scale();
    let topology = args.topology();
    eprintln!("[adaptive_drift] tcp static assignment (phase-0 heuristic, frozen)");
    let stat = run_tcp_variant(scale, topology, false);
    eprintln!("[adaptive_drift] tcp adaptive assignment (leader-driven epoch protocol)");
    let adap = run_tcp_variant(scale, topology, true);

    let row = |name: &str, r: &TcpRun| {
        vec![
            name.to_string(),
            format!("{} us", r.elapsed_us),
            format!("{}", r.msgs),
            format!("{}", r.remote),
            format!("{}/{}", r.promotions, r.demotions),
        ]
    };
    print_table(
        "Static vs adaptive over TCP — node 0 counters, one process per node",
        &["variant", "workload time", "messages", "remote acc.", "promo/demo"],
        &[row("Static (NuPS heuristic)", &stat), row("Adaptive", &adap)],
    );
    let msgs_ratio = 100.0 * adap.msgs as f64 / stat.msgs.max(1) as f64;
    let remote_ratio = 100.0 * adap.remote as f64 / stat.remote.max(1) as f64;
    println!(
        "\nadaptive vs static over tcp: {msgs_ratio:.1}% of the messages, \
         {remote_ratio:.1}% of the remote accesses"
    );

    if let Some(path) = args.get("json") {
        // Only the ratios are gated: absolute wall-clock counters vary run
        // to run, but both variants ride the same machine and the same
        // moment, so their quotient is stable enough for a wide band.
        let report = Json::obj()
            .set("bench", "adaptive_drift_tcp")
            .set("scale", scale.name())
            .set("topology", format!("{}x{}", topology.n_nodes, topology.workers_per_node).as_str())
            .set("msgs_ratio_pct", msgs_ratio)
            .set("remote_ratio_pct", remote_ratio);
        std::fs::write(path, report.render()).expect("write json report");
        eprintln!("[adaptive_drift] wrote {path}");
    }

    if args.get_flag("check") {
        if adap.msgs >= stat.msgs {
            eprintln!(
                "FAIL: adaptive cluster did not beat static on messages ({} vs {})",
                adap.msgs, stat.msgs
            );
            std::process::exit(1);
        }
        if adap.rounds == 0 {
            eprintln!("FAIL: the adaptive cluster never ran an adaptation round");
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

fn main() {
    let args = Args::parse();
    match args.get("fabric") {
        Some("tcp") => main_tcp(&args),
        None | Some("channel") | Some("sim") => {}
        Some(other) => {
            eprintln!("unknown --fabric {other:?} (expected tcp)");
            std::process::exit(2);
        }
    }
    let scale = args.scale();
    let topology = args.topology();
    let drift = drift_for(scale);

    eprintln!("[adaptive_drift] static assignment (phase-0 heuristic, frozen)");
    let stat = run_variant(&drift, topology, false);
    eprintln!("[adaptive_drift] adaptive assignment (online migration)");
    let adap = run_variant(&drift, topology, true);

    let row = |name: &str, r: &DriftRun| {
        let m = &r.metrics;
        vec![
            name.to_string(),
            fmt_time(r.time),
            format!("{}", m.msgs_sent + m.migration_msgs),
            format!("{}", m.remote_pulls + m.remote_pushes),
            format!("{}", m.relocations),
            format!("{}", m.sync_rounds),
            format!("{}/{}", m.promotions, m.demotions),
        ]
    };
    print_table(
        &format!(
            "Static vs adaptive technique assignment — drifting hot set ({} phases)",
            drift.config().phases
        ),
        &[
            "variant",
            "virtual time",
            "messages",
            "remote acc.",
            "relocations",
            "sync",
            "promo/demo",
        ],
        &[row("Static (NuPS heuristic)", &stat), row("Adaptive", &adap)],
    );
    let msgs_s = stat.metrics.msgs_sent + stat.metrics.migration_msgs;
    let msgs_a = adap.metrics.msgs_sent + adap.metrics.migration_msgs;
    let speedup = stat.time.as_nanos() as f64 / adap.time.as_nanos().max(1) as f64;
    println!(
        "\nadaptive vs static: {:.2}x runtime, {:.1}% of the messages",
        speedup,
        100.0 * msgs_a as f64 / msgs_s.max(1) as f64
    );

    if let Some(path) = args.get("json") {
        let report = Json::obj()
            .set("bench", "adaptive_drift")
            .set("scale", scale.name())
            .set("topology", format!("{}x{}", topology.n_nodes, topology.workers_per_node).as_str())
            .set("static", variant_json(&stat))
            .set("adaptive", variant_json(&adap));
        std::fs::write(path, report.render()).expect("write json report");
        eprintln!("[adaptive_drift] wrote {path}");
    }

    if args.get_flag("check") && (msgs_a >= msgs_s || adap.time >= stat.time) {
        eprintln!(
            "FAIL: adaptive did not beat static (messages {msgs_a} vs {msgs_s}, \
             time {} vs {})",
            fmt_time(adap.time),
            fmt_time(stat.time)
        );
        std::process::exit(1);
    }
}
