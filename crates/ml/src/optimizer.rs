//! Optimizers that cooperate with a parameter server.
//!
//! A PS applies *additive deltas*, so optimizers here compute the delta to
//! push rather than mutating parameters in place. AdaGrad keeps its
//! accumulators *inside the parameter value* (value layout:
//! `[weights | accumulators]`), exactly as the paper's KGE implementation
//! does — accumulator updates are additive (`+g²`) and therefore merge
//! correctly under replication.

/// How gradients turn into pushed deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain SGD: `Δw = -lr · g`. Value layout: `[w; dim]`.
    Sgd { lr: f32 },
    /// AdaGrad: `Δacc = g²`, `Δw = -lr · g / sqrt(acc + g² + eps)`.
    /// Value layout: `[w; dim | acc; dim]`.
    AdaGrad { lr: f32, eps: f32 },
}

impl Optimizer {
    /// Parameter-server value length for a `dim`-dimensional weight.
    pub fn value_len(&self, dim: usize) -> usize {
        match self {
            Optimizer::Sgd { .. } => dim,
            Optimizer::AdaGrad { .. } => 2 * dim,
        }
    }

    /// Compute the delta to push for gradient `grad`, given the currently
    /// pulled `value`. `delta` must be zero-filled by the caller and have
    /// the full value length.
    pub fn delta(&self, value: &[f32], grad: &[f32], delta: &mut [f32]) {
        match *self {
            Optimizer::Sgd { lr } => {
                debug_assert!(value.len() >= grad.len() && delta.len() >= grad.len());
                for (d, g) in delta.iter_mut().zip(grad) {
                    *d = -lr * g;
                }
            }
            Optimizer::AdaGrad { lr, eps } => {
                let dim = grad.len();
                debug_assert!(value.len() >= 2 * dim && delta.len() >= 2 * dim);
                let (dw, dacc) = delta.split_at_mut(dim);
                let acc = &value[dim..2 * dim];
                for i in 0..dim {
                    let g = grad[i];
                    let g2 = g * g;
                    dacc[i] = g2;
                    dw[i] = -lr * g / (acc[i] + g2 + eps).sqrt();
                }
            }
        }
    }

    pub fn learning_rate(&self) -> f32 {
        match *self {
            Optimizer::Sgd { lr } | Optimizer::AdaGrad { lr, .. } => lr,
        }
    }
}

/// The bold-driver learning-rate heuristic used by the paper's MF task
/// (after Battiti '89): grow the rate while the epoch loss falls, halve it
/// when the loss rises. This produces the step pattern visible in the
/// paper's MF curves (Figure 6c).
#[derive(Debug, Clone, Copy)]
pub struct BoldDriver {
    lr: f32,
    prev_loss: Option<f64>,
    grow: f32,
    shrink: f32,
}

impl BoldDriver {
    pub fn new(lr: f32) -> BoldDriver {
        BoldDriver { lr, prev_loss: None, grow: 1.05, shrink: 0.5 }
    }

    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Report the epoch's training loss; returns the rate for the next
    /// epoch.
    pub fn observe(&mut self, epoch_loss: f64) -> f32 {
        if let Some(prev) = self.prev_loss {
            if epoch_loss <= prev {
                self.lr *= self.grow;
            } else {
                self.lr *= self.shrink;
            }
        }
        self.prev_loss = Some(epoch_loss);
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_delta_is_scaled_negative_gradient() {
        let opt = Optimizer::Sgd { lr: 0.1 };
        let mut delta = vec![0.0; 3];
        opt.delta(&[0.0; 3], &[1.0, -2.0, 0.5], &mut delta);
        assert_eq!(delta, vec![-0.1, 0.2, -0.05]);
        assert_eq!(opt.value_len(3), 3);
    }

    #[test]
    fn adagrad_scales_by_accumulated_squares() {
        let opt = Optimizer::AdaGrad { lr: 1.0, eps: 0.0 };
        assert_eq!(opt.value_len(2), 4);
        // Accumulator already holds 3.0 for dim 0; gradient 1.0 →
        // step = -1/sqrt(3+1) = -0.5. Fresh dim 1: step = -g/|g| = -1.
        let value = vec![0.0, 0.0, 3.0, 0.0];
        let mut delta = vec![0.0; 4];
        opt.delta(&value, &[1.0, 2.0], &mut delta);
        assert!((delta[0] + 0.5).abs() < 1e-6);
        assert!((delta[1] + 1.0).abs() < 1e-6);
        assert_eq!(delta[2], 1.0); // +g²
        assert_eq!(delta[3], 4.0);
    }

    #[test]
    fn adagrad_steps_shrink_over_time() {
        let opt = Optimizer::AdaGrad { lr: 0.1, eps: 1e-8 };
        let mut value = vec![0.0, 0.0]; // dim 1
        let mut last_step = f32::INFINITY;
        for _ in 0..5 {
            let mut delta = vec![0.0; 2];
            opt.delta(&value, &[1.0], &mut delta);
            let step = delta[0].abs();
            assert!(step < last_step, "steps must shrink: {step} vs {last_step}");
            last_step = step;
            value[0] += delta[0];
            value[1] += delta[1];
        }
    }

    #[test]
    fn bold_driver_grows_then_halves() {
        let mut bd = BoldDriver::new(0.1);
        assert_eq!(bd.observe(10.0), 0.1); // first epoch: no change
        let up = bd.observe(9.0);
        assert!((up - 0.105).abs() < 1e-6);
        let down = bd.observe(11.0);
        assert!((down - 0.0525).abs() < 1e-6);
    }
}
