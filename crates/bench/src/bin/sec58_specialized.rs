//! Section 5.8: comparison to task-specific implementations — the same
//! training math on a bare shared-memory array (no PS machinery, no
//! working copies, no sampling manager) vs NuPS on a single node and on
//! the cluster. The paper found NuPS competitive with specialized
//! single-node implementations and the distributed cluster faster.
//!
//! Usage: cargo run --release -p nups-bench --bin sec58_specialized -- \
//!   [--task kge|wv|mf] [--nodes 4] [--workers 2] [--epochs 2] [--scale small]

use nups_bench::baremetal::BareMetal;
use nups_bench::report::{fmt_duration, fmt_quality, print_table};
use nups_bench::{build_task, run, Args, RunConfig, VariantSpec};
use nups_core::system::run_epoch;
use nups_sim::cost::CostModel;
use nups_sim::time::SimDuration;
use nups_sim::topology::Topology;

fn main() {
    let args = Args::parse();
    let topology = args.topology();
    let epochs = args.epochs(2);
    let cost = CostModel::cluster_default();

    for kind in args.tasks() {
        let scale = args.scale();
        let factory = move |topo| build_task(kind, scale, topo);

        println!("\n##### Section 5.8 — vs task-specific implementation ({}) #####", kind.name());

        // Specialized single-node implementation.
        let wpn = topology.workers_per_node;
        let task = factory(Topology::single_node(wpn));
        let bare = BareMetal::new(task.as_ref(), wpn, cost);
        let mut workers = bare.workers();
        for epoch in 0..epochs {
            run_epoch(&mut workers, |i, w| {
                task.run_epoch(w, i, epoch);
            });
        }
        let bare_time = bare.virtual_time();
        let bare_quality = task.evaluate(&bare.read_all());
        let bare_epoch = SimDuration(bare_time.as_nanos() / epochs as u64);

        // NuPS on a single node and on the cluster.
        let single = run(&factory, &VariantSpec::single_node(), &RunConfig::new(topology, epochs));
        let nups =
            run(&factory, &VariantSpec::nups_tuned(kind.name()), &RunConfig::new(topology, epochs));

        let rows = vec![
            vec![
                format!("specialized (1 node x {wpn})"),
                fmt_duration(bare_epoch),
                format!("{bare_quality:.4}"),
            ],
            vec![
                format!("NuPS single node (1 x {wpn})"),
                fmt_duration(single.epoch_time()),
                fmt_quality(single.final_quality()),
            ],
            vec![
                format!("NuPS ({} x {})", topology.n_nodes, topology.workers_per_node),
                fmt_duration(nups.epoch_time()),
                fmt_quality(nups.final_quality()),
            ],
        ];
        print_table(
            &format!("Section 5.8 — {}", kind.name()),
            &["implementation", "epoch time", "quality"],
            &rows,
        );
    }
}
